//! The shipped `.tpal` corpus stays loadable and correct.

use tpal::core::asm::parse_program;
use tpal::core::machine::{Machine, MachineConfig};
use tpal::sim::{Sim, SimConfig};

fn load(name: &str) -> tpal::core::program::Program {
    let src = std::fs::read_to_string(format!("programs/{name}.tpal"))
        .unwrap_or_else(|e| panic!("programs/{name}.tpal: {e}"));
    parse_program(&src).unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn prod_corpus() {
    let p = load("prod");
    let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(64));
    m.set_reg("a", 1_000).unwrap();
    m.set_reg("b", 11).unwrap();
    assert_eq!(m.run().unwrap().read_reg("c"), Some(11_000));
}

#[test]
fn fib_corpus_simulated() {
    let p = load("fib");
    let mut sim = Sim::new(&p, SimConfig::nautilus(4, 1000));
    sim.set_reg("n", 20).unwrap();
    assert_eq!(sim.run().unwrap().read_reg("f"), Some(6_765));
}

#[test]
fn pow_corpus() {
    let p = load("pow");
    let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(50));
    m.set_reg("d", 7).unwrap();
    m.set_reg("e", 8).unwrap();
    assert_eq!(m.run().unwrap().read_reg("f"), Some(5_764_801));
}

#[test]
fn sum_corpus_simulated() {
    let p = load("sum");
    let n = 5_000i64;
    let expected: i64 = (0..n).map(|i| i * 3 + 1).sum();
    let mut sim = Sim::new(&p, SimConfig::nautilus(4, 3_000));
    sim.set_reg("main.n", n).unwrap();
    assert_eq!(sim.run().unwrap().read_reg("result"), Some(expected));
}

/// Every file under `programs/` must be assemblable TPAL (`.tpal`): a
/// bad example — or a stray file in another language — can never land
/// silently.
#[test]
fn every_shipped_program_assembles() {
    let mut checked = 0;
    for entry in std::fs::read_dir("programs").unwrap() {
        let path = entry.unwrap().path();
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("tpal"),
            "{}: non-assembly file in programs/",
            path.display()
        );
        let src = std::fs::read_to_string(&path).unwrap();
        parse_program(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        checked += 1;
    }
    assert!(checked >= 4, "expected the full corpus, found {checked}");
}

/// The source-language original of `programs/sum.tpal` (the assembly is
/// its heartbeat lowering) must keep meaning the same thing under every
/// lowering mode.
#[test]
fn sum_source_corpus_through_frontend() {
    let src = "\
        fn main(n) {\n\
            a = alloc(n);\n\
            parfor i in 0..n { a[i] = i * 3 + 1; }\n\
            s = 0;\n\
            parfor i in 0..n reduce(s: +, 0) { s = s + a[i]; }\n\
            return s;\n\
        }\n";
    let ir = tpal::ir::parse_ir(src).unwrap_or_else(|e| panic!("{e}"));
    let n = 5_000i64;
    let expected: i64 = (0..n).map(|i| i * 3 + 1).sum();
    for mode in [
        tpal::ir::Mode::Serial,
        tpal::ir::Mode::Heartbeat,
        tpal::ir::Mode::HeartbeatExpanded,
        tpal::ir::Mode::Eager { workers: 4 },
    ] {
        let lowered = tpal::ir::lower(&ir, mode).unwrap();
        let mut m = Machine::new(
            &lowered.program,
            MachineConfig::default().with_heartbeat(120),
        );
        m.set_reg(&lowered.param_reg("n"), n).unwrap();
        assert_eq!(
            m.run().unwrap().read_reg(&lowered.result_reg),
            Some(expected),
            "{mode:?}"
        );
    }
}
