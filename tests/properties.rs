//! Property-based whole-pipeline tests: randomly generated task-parallel
//! IR programs must produce identical results under every lowering mode,
//! schedule, heartbeat setting, and executor — the compiler/runtime
//! analogue of the paper's claim that annotations never change a
//! program's meaning.

use proptest::prelude::*;

use tpal::core::isa::BinOp;
use tpal::core::machine::{Machine, MachineConfig, PromotionOrder, SchedulePolicy};
use tpal::ir::ast::{CallSpec, Expr, Function, IrProgram, ParFor, ParForNested, Reducer, Stmt};
use tpal::ir::lower::{lower, Mode};
use tpal::sim::{Sim, SimConfig};

const VARS: [&str; 4] = ["v0", "v1", "v2", "v3"];
/// Loop-local temporaries: the only variables a ParFor body may assign
/// (beyond its reducer), per the documented discipline — they are
/// re-initialised unconditionally at the top of every iteration, so no
/// value flows between iterations.
const LOOP_VARS: [&str; 2] = ["t0", "t1"];

/// Safe operators only (no division: generated divisors could be zero,
/// and wrapping semantics keep everything else total).
fn expr_strategy(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::int),
        proptest::sample::select(&VARS[..]).prop_map(Expr::var),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        (
            proptest::sample::select(
                &[
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Min,
                    BinOp::Max,
                    BinOp::Xor,
                    BinOp::Lt,
                    BinOp::EqOp,
                ][..],
            ),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| Expr::bin(op, a, b))
    })
    .boxed()
}

/// Random serial statements assigning only variables in `targets`
/// (expressions may read anything).
fn stmt_strategy(depth: u32, targets: &'static [&'static str]) -> BoxedStrategy<Stmt> {
    let assign =
        (proptest::sample::select(targets), expr_strategy(2)).prop_map(|(v, e)| Stmt::assign(v, e));
    if depth == 0 {
        return assign.boxed();
    }
    let body = proptest::collection::vec(stmt_strategy(depth - 1, targets), 1..3);
    let ifs =
        (expr_strategy(1), body.clone(), body.clone()).prop_map(|(c, t, e)| Stmt::if_else(c, t, e));
    // Serial loops count with a dedicated variable the body cannot
    // assign (reassigning one's own loop counter is an infinite loop,
    // not an interesting program).
    let counter = format!("f{depth}");
    let fors = (0i64..6, body)
        .prop_map(move |(n, b)| Stmt::for_(counter.clone(), Expr::int(0), Expr::int(n), b));
    prop_oneof![3 => assign, 1 => ifs, 1 => fors].boxed()
}

/// A random program: serial prologue, a reducing ParFor whose body is
/// random serial code, serial epilogue.
fn program_strategy() -> impl Strategy<Value = IrProgram> {
    (
        proptest::collection::vec(stmt_strategy(2, &VARS), 0..4),
        proptest::collection::vec(stmt_strategy(1, &LOOP_VARS), 0..3),
        (expr_strategy(1), expr_strategy(1)),
        10usize..120,
        expr_strategy(2),
    )
        .prop_map(|(pre, loop_tail, (e0, e1), n, ret)| {
            // Iteration-local temporaries are assigned unconditionally at
            // the top of every iteration from pure inputs, so the random
            // statements after them stay deterministic under splitting.
            let mut body = vec![
                Stmt::assign("t0", e0.add(Expr::var("i"))),
                Stmt::assign("t1", e1),
            ];
            body.extend(loop_tail);
            // The loop contributes through a reducer so its iterations
            // matter, whatever the random statements do.
            body.push(Stmt::assign(
                "acc",
                Expr::var("acc")
                    .add(Expr::var("i").mul(Expr::int(3)))
                    .add(Expr::var("t0").min(Expr::var("t1")))
                    .add(Expr::var("v0").min(Expr::var("v1"))),
            ));
            let mut f = Function::new("main", ["seed"]);
            f = f.stmt(Stmt::assign("v0", Expr::var("seed")));
            f = f.stmt(Stmt::assign("v1", Expr::int(1)));
            f = f.stmt(Stmt::assign("v2", Expr::int(2)));
            f = f.stmt(Stmt::assign("v3", Expr::int(3)));
            f = f.stmt(Stmt::assign("t0", Expr::int(0)));
            f = f.stmt(Stmt::assign("t1", Expr::int(0)));
            f = f.stmt(Stmt::assign("acc", Expr::int(0)));
            for s in pre {
                f = f.stmt(s);
            }
            f = f.stmt(Stmt::ParFor(
                ParFor::new("i", Expr::int(0), Expr::int(n as i64))
                    .body(body)
                    .reducer(Reducer::new("acc", BinOp::Add, 0)),
            ));
            f = f.stmt(Stmt::Return(Expr::var("acc").add(ret)));
            IrProgram::new("main").function(f)
        })
}

/// An irregular nested loop (triangular inner bounds): outer iteration
/// `j` sums `seed + k` for `k < j` — the shape where promotion order
/// genuinely chooses between outer and inner latent parallelism.
fn nested_program(outer: i64) -> IrProgram {
    let v = Expr::var;
    let i = Expr::int;
    let nest = ParForNested {
        outer_var: "j".into(),
        outer_from: i(0),
        outer_to: i(outer * 12),
        pre: vec![Stmt::assign("row", Expr::int(0))],
        inner_var: "k".into(),
        inner_from: i(0),
        inner_to: v("j"),
        inner_body: vec![Stmt::assign("row", v("row").add(v("seed")).add(v("k")))],
        inner_reducers: vec![Reducer::new("row", BinOp::Add, 0)],
        post: vec![Stmt::assign("acc", v("acc").add(v("row")))],
        outer_reducers: vec![Reducer::new("acc", BinOp::Add, 0)],
    };
    let f = Function::new("main", ["seed"])
        .stmt(Stmt::assign("acc", i(0)))
        .stmt(Stmt::ParForNested(Box::new(nest)))
        .stmt(Stmt::Return(v("acc")));
    IrProgram::new("main").function(f)
}

/// Binary fork-join recursion (fib shape) — the mark-list case where
/// oldest/newest marks differ most.
fn par2_program() -> IrProgram {
    let v = Expr::var;
    let i = Expr::int;
    let f = Function::new("main", ["seed"])
        .stmt(Stmt::if_(v("seed").lt(i(2)), vec![Stmt::Return(v("seed"))]))
        .stmt(Stmt::Par2 {
            left: CallSpec::new("main", vec![v("seed").sub(i(1))], "x"),
            right: CallSpec::new("main", vec![v("seed").sub(i(2))], "y"),
        })
        .stmt(Stmt::Return(v("x").add(v("y"))));
    IrProgram::new("main").function(f)
}

fn run_machine(ir: &IrProgram, mode: Mode, mut cfg: MachineConfig, seed: i64) -> i64 {
    // Generated programs are tiny; a tight step limit turns any
    // generator bug into a fast failure instead of a long spin.
    cfg.step_limit = 20_000_000;
    let lowered = lower(ir, mode).expect("lowering");
    let mut m = Machine::new(&lowered.program, cfg);
    m.set_reg(&lowered.param_reg("seed"), seed).unwrap();
    m.run()
        .unwrap_or_else(|e| panic!("machine error: {e}"))
        .read_reg(&lowered.result_reg)
        .expect("result")
}

fn run_sim(ir: &IrProgram, mode: Mode, mut cfg: SimConfig, seed: i64) -> i64 {
    cfg.step_limit = 20_000_000;
    let lowered = lower(ir, mode).expect("lowering");
    let mut s = Sim::new(&lowered.program, cfg);
    s.set_reg(&lowered.param_reg("seed"), seed).unwrap();
    s.run()
        .unwrap_or_else(|e| panic!("sim error: {e}"))
        .read_reg(&lowered.result_reg)
        .expect("result")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lowering-mode equivalence: serial, heartbeat (several ♥ and
    /// schedules), and eager all compute the same function.
    #[test]
    fn lowering_modes_agree(ir in program_strategy(), seed in -50i64..50) {
        let reference = run_machine(&ir, Mode::Serial, MachineConfig::serial(), seed);

        for hb in [45u64, 200, u64::MAX] {
            for mode in [Mode::Heartbeat, Mode::HeartbeatExpanded] {
                let got = run_machine(
                    &ir,
                    mode,
                    MachineConfig::default()
                        .with_heartbeat(hb)
                        .with_policy(SchedulePolicy::Random { seed: 7, quantum: 9 }),
                    seed,
                );
                prop_assert_eq!(got, reference, "{:?} ♥={}", mode, hb);
            }
        }
        let eager = run_machine(
            &ir,
            Mode::Eager { workers: 3 },
            MachineConfig::serial().with_policy(SchedulePolicy::ChildFirst),
            seed,
        );
        prop_assert_eq!(eager, reference, "eager");
    }

    /// Executor equivalence: the multicore simulator agrees with the
    /// reference machine on heartbeat-lowered programs, for any core
    /// count, interrupt model, and seed.
    #[test]
    fn sim_agrees_with_machine(
        ir in program_strategy(),
        seed in -50i64..50,
        cores in 1usize..9,
        sim_seed in 0u64..1000,
    ) {
        let reference = run_machine(&ir, Mode::Serial, MachineConfig::serial(), seed);
        let mut cfg = SimConfig::linux(cores, 700);
        cfg.seed = sim_seed;
        prop_assert_eq!(run_sim(&ir, Mode::Heartbeat, cfg, seed), reference);
        let mut cfg = SimConfig::nautilus(cores, 450);
        cfg.seed = sim_seed;
        prop_assert_eq!(run_sim(&ir, Mode::Eager { workers: cores as u32 }, cfg, seed), reference);
    }

    /// Promotion order is a pure scheduling choice: flipping `prmsplit`
    /// from the paper's outermost-first policy to innermost-first never
    /// changes a program's result, on flat random loops, on irregular
    /// nested loops, and on random binary fork-join recursion.
    #[test]
    fn promotion_order_never_changes_results(
        ir in program_strategy(),
        seed in -50i64..50,
        outer in 2i64..8,
        depth in 5i64..15,
    ) {
        let cases: [(&str, IrProgram); 3] = [
            ("flat", ir),
            ("nested", nested_program(outer)),
            ("par2", par2_program()),
        ];
        for (label, ir) in cases {
            let arg = if label == "par2" { depth } else { seed };
            let reference = run_machine(&ir, Mode::Serial, MachineConfig::serial(), arg);
            for order in [PromotionOrder::OldestFirst, PromotionOrder::NewestFirst] {
                let got = run_machine(
                    &ir,
                    Mode::Heartbeat,
                    MachineConfig::default()
                        .with_heartbeat(60)
                        .with_promotion_order(order)
                        .with_policy(SchedulePolicy::Random { seed: 11, quantum: 7 }),
                    arg,
                );
                prop_assert_eq!(got, reference, "{} under {:?}", label, order);
                let mut cfg = SimConfig::nautilus(5, 500);
                cfg.promotion_order = order;
                prop_assert_eq!(
                    run_sim(&ir, Mode::Heartbeat, cfg, arg),
                    reference,
                    "{} on sim under {:?}", label, order
                );
            }
        }
    }

    /// The generated TPAL always survives a print → parse round trip.
    #[test]
    fn lowered_programs_roundtrip_asm(ir in program_strategy()) {
        for mode in [
            Mode::Serial,
            Mode::Heartbeat,
            Mode::HeartbeatExpanded,
            Mode::Eager { workers: 4 },
        ] {
            let lowered = lower(&ir, mode).expect("lowering");
            let text = tpal::core::asm::print_program(&lowered.program);
            let back = tpal::core::asm::parse_program(&text)
                .unwrap_or_else(|e| panic!("reparse ({mode:?}): {e}"));
            prop_assert_eq!(back.instr_count(), lowered.program.instr_count());
        }
    }
}
