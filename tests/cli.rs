//! CLI regression tests for `tpal-run`, exercising the built binary
//! end-to-end (argument parsing, substrate selection, heartbeat
//! defaulting).

use std::process::Command;

/// Runs the `tpal-run` binary with `args`, returning (success, stdout,
/// stderr).
fn tpal_run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_tpal-run"))
        .args(args)
        .output()
        .expect("spawn tpal-run");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn explicit_heartbeat_is_honoured_on_the_simulator() {
    // ISSUE 8 regression: `--heartbeat 100 --sim N` used to silently
    // rewrite the explicitly passed 100 to the tuned sim default 3000,
    // because the CLI compared the value against the machine default
    // instead of tracking whether the flag was given.
    let (ok, stdout, stderr) = tpal_run(&[
        "programs/fib.tpal",
        "--set",
        "n=10",
        "--heartbeat",
        "100",
        "--sim",
        "2",
    ]);
    assert!(ok, "run failed: {stderr}");
    assert!(
        stdout.contains("♥ = 100,"),
        "explicit --heartbeat 100 must be honoured, got:\n{stdout}"
    );
    assert!(stdout.contains("f = 55"), "fib(10) = 55, got:\n{stdout}");
}

#[test]
fn absent_heartbeat_defaults_to_tuned_sim_value() {
    let (ok, stdout, stderr) = tpal_run(&["programs/fib.tpal", "--set", "n=10", "--sim", "2"]);
    assert!(ok, "run failed: {stderr}");
    assert!(
        stdout.contains("♥ = 3000,"),
        "flag-absent sim runs default to ♥ = 3000, got:\n{stdout}"
    );
}

#[test]
fn machine_keeps_its_own_default_heartbeat() {
    let (ok, stdout, stderr) = tpal_run(&["programs/fib.tpal", "--set", "n=10"]);
    assert!(ok, "run failed: {stderr}");
    assert!(
        stdout.contains("machine run, ♥ = 100:"),
        "machine default ♥ is 100, got:\n{stdout}"
    );
    assert!(stdout.contains("f = 55"), "fib(10) = 55, got:\n{stdout}");
}

#[test]
fn rt_substrate_is_reachable() {
    // ISSUE 8 satellite: the native runtime must be reachable from the
    // CLI, with policy/exec-tier/heartbeat wired through.
    let (ok, stdout, stderr) = tpal_run(&[
        "programs/fib.tpal",
        "--set",
        "n=10",
        "--rt",
        "2",
        "--heartbeat",
        "50",
        "--exec-tier",
        "decoded",
    ]);
    assert!(ok, "run failed: {stderr}");
    assert!(
        stdout.contains("native runtime, 2 workers, ♥ = 50µs"),
        "rt header expected, got:\n{stdout}"
    );
    assert!(stdout.contains("f = 55"), "fib(10) = 55, got:\n{stdout}");
}

#[test]
fn policy_flags_work_on_the_rt_substrate() {
    let (ok, stdout, stderr) = tpal_run(&[
        "programs/fib.tpal",
        "--set",
        "n=10",
        "--rt",
        "1",
        "--policy",
        "eager/sequence",
    ]);
    assert!(ok, "run failed: {stderr}");
    assert!(
        stdout.contains("policy = eager/sequence"),
        "policy label expected, got:\n{stdout}"
    );
}

#[test]
fn policy_still_rejected_without_a_parallel_substrate() {
    let (ok, _, stderr) = tpal_run(&["programs/fib.tpal", "--set", "n=10", "--policy", "eager"]);
    assert!(!ok, "machine runs must reject --policy");
    assert!(
        stderr.contains("--policy/--victim need"),
        "got stderr:\n{stderr}"
    );
}

#[test]
fn sim_and_rt_are_mutually_exclusive() {
    let (ok, _, stderr) = tpal_run(&["programs/fib.tpal", "--sim", "2", "--rt", "2"]);
    assert!(!ok);
    assert!(stderr.contains("mutually exclusive"), "got:\n{stderr}");
}
