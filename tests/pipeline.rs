//! Whole-workspace integration tests: the full pipeline from concrete
//! TPAL assembly or the task-parallel IR, through the reference machine,
//! to the multicore simulator — all through the `tpal` facade crate.

use tpal::core::asm::{parse_program, print_program};
use tpal::core::machine::{Machine, MachineConfig};
use tpal::core::programs;
use tpal::ir::ast::{CallSpec, Expr, Function, IrProgram, ParFor, Reducer, Stmt};
use tpal::ir::lower::{lower, Mode};
use tpal::sim::{Sim, SimConfig};

#[test]
fn paper_programs_assembly_machine_sim_agree() {
    // prod through text → machine and simulator.
    let text = print_program(&programs::prod());
    let program = parse_program(&text).expect("prod reparses");

    let mut m = Machine::new(&program, MachineConfig::default().with_heartbeat(64));
    m.set_reg("a", 1234).unwrap();
    m.set_reg("b", 5).unwrap();
    let machine_c = m.run().unwrap().read_reg("c").unwrap();

    let mut sim = Sim::new(&program, SimConfig::nautilus(4, 500));
    sim.set_reg("a", 1234).unwrap();
    sim.set_reg("b", 5).unwrap();
    let sim_c = sim.run().unwrap().read_reg("c").unwrap();

    assert_eq!(machine_c, 6170);
    assert_eq!(sim_c, 6170);
}

#[test]
fn fib_assembly_on_simulated_multicore() {
    let program = programs::fib();
    let mut sim = Sim::new(&program, SimConfig::linux(8, 800));
    sim.set_reg("n", 21).unwrap();
    let out = sim.run().unwrap();
    assert_eq!(out.read_reg("f"), Some(10946));
    assert!(
        out.stats.forks > 0,
        "fib(21) should promote: {:?}",
        out.stats
    );
    assert!(out.speedup_base() > 1.5, "promoted fib should overlap");
}

#[test]
fn pow_nested_parallelism_on_sim() {
    let program = programs::pow();
    let mut sim = Sim::new(&program, SimConfig::nautilus(6, 400));
    sim.set_reg("d", 3).unwrap();
    sim.set_reg("e", 11).unwrap();
    let out = sim.run().unwrap();
    assert_eq!(out.read_reg("f"), Some(177_147));
}

/// A small end-to-end application: parallel dot product with a serial
/// driver loop, written once in the IR and executed five ways.
fn dot_ir() -> IrProgram {
    let v = Expr::var;
    let i = Expr::int;
    let dot = Function::new("dot", ["a", "b", "n"])
        .stmt(Stmt::assign("acc", i(0)))
        .stmt(Stmt::ParFor(
            ParFor::new("k", i(0), v("n"))
                .body(vec![Stmt::assign(
                    "acc",
                    v("acc").add(v("a").load(v("k")).mul(v("b").load(v("k")))),
                )])
                .reducer(Reducer::new("acc", tpal::core::isa::BinOp::Add, 0)),
        ))
        .stmt(Stmt::Return(v("acc")));
    let main = Function::new("main", ["a", "b", "n"])
        .stmt(Stmt::assign("total", i(0)))
        .stmt(Stmt::for_(
            "round",
            i(0),
            i(3),
            vec![
                Stmt::Call {
                    func: "dot".into(),
                    args: vec![v("a"), v("b"), v("n")],
                    ret: Some("d".into()),
                },
                Stmt::assign("total", v("total").add(v("d"))),
            ],
        ))
        .stmt(Stmt::Return(v("total")));
    IrProgram::new("main").function(main).function(dot)
}

#[test]
fn ir_program_five_ways() {
    let ir = dot_ir();
    let n = 5_000usize;
    let a: Vec<i64> = (0..n as i64).map(|x| x % 17 - 8).collect();
    let b: Vec<i64> = (0..n as i64).map(|x| x % 13 - 6).collect();
    let expected: i64 = 3 * a.iter().zip(&b).map(|(x, y)| x * y).sum::<i64>();

    let run_machine = |mode: Mode, cfg: MachineConfig| -> i64 {
        let lowered = lower(&ir, mode).unwrap();
        let mut m = Machine::new(&lowered.program, cfg);
        let pa = m.alloc_array(&a);
        let pb = m.alloc_array(&b);
        m.set_reg(&lowered.param_reg("a"), pa).unwrap();
        m.set_reg(&lowered.param_reg("b"), pb).unwrap();
        m.set_reg(&lowered.param_reg("n"), n as i64).unwrap();
        m.run().unwrap().read_reg(&lowered.result_reg).unwrap()
    };
    let run_sim = |mode: Mode, cfg: SimConfig| -> i64 {
        let lowered = lower(&ir, mode).unwrap();
        let mut s = Sim::new(&lowered.program, cfg);
        let pa = s.alloc_array(&a);
        let pb = s.alloc_array(&b);
        s.set_reg(&lowered.param_reg("a"), pa).unwrap();
        s.set_reg(&lowered.param_reg("b"), pb).unwrap();
        s.set_reg(&lowered.param_reg("n"), n as i64).unwrap();
        s.run().unwrap().read_reg(&lowered.result_reg).unwrap()
    };

    assert_eq!(run_machine(Mode::Serial, MachineConfig::serial()), expected);
    assert_eq!(
        run_machine(Mode::Heartbeat, MachineConfig::default().with_heartbeat(90)),
        expected
    );
    assert_eq!(
        run_machine(Mode::Eager { workers: 3 }, MachineConfig::serial()),
        expected
    );
    assert_eq!(
        run_sim(Mode::Heartbeat, SimConfig::nautilus(8, 1500)),
        expected
    );
    assert_eq!(
        run_sim(Mode::Eager { workers: 8 }, SimConfig::linux(8, 1500)),
        expected
    );
}

#[test]
fn lowered_heartbeat_ir_prints_and_reparses() {
    // The generated TPAL survives the concrete syntax round trip.
    let lowered = lower(&dot_ir(), Mode::Heartbeat).unwrap();
    let text = print_program(&lowered.program);
    let back = parse_program(&text).unwrap_or_else(|e| panic!("reparse: {e}"));
    assert_eq!(back.instr_count(), lowered.program.instr_count());
    assert_eq!(back.block_count(), lowered.program.block_count());
}

#[test]
fn par2_ir_through_facade() {
    let v = Expr::var;
    let i = Expr::int;
    let f = Function::new("fib", ["n"])
        .stmt(Stmt::if_(v("n").lt(i(2)), vec![Stmt::Return(v("n"))]))
        .stmt(Stmt::Par2 {
            left: CallSpec::new("fib", vec![v("n").sub(i(1))], "x"),
            right: CallSpec::new("fib", vec![v("n").sub(i(2))], "y"),
        })
        .stmt(Stmt::Return(v("x").add(v("y"))));
    let ir = IrProgram::new("fib").function(f);
    for (mode, hb) in [
        (Mode::Serial, u64::MAX),
        (Mode::Heartbeat, 70),
        (Mode::Eager { workers: 4 }, u64::MAX),
    ] {
        let lowered = lower(&ir, mode).unwrap();
        let mut m = Machine::new(
            &lowered.program,
            MachineConfig::default().with_heartbeat(hb),
        );
        m.set_reg(&lowered.param_reg("n"), 17).unwrap();
        assert_eq!(
            m.run().unwrap().read_reg(&lowered.result_reg),
            Some(1597),
            "{mode:?}"
        );
    }
}
