//! Cross-domain policy parity: one shared [`Policy`] object must induce
//! the same qualitative scheduling behaviour in both execution domains —
//! the simulator's deterministic cycle domain and the native runtime's
//! RDTSC tick domain.
//!
//! The same policy value is handed to `SimConfig` and `RtConfig`; the
//! suite then checks the policy ordering that defines each promotion
//! policy's meaning:
//!
//! * `never`  — zero promotions (the "interrupts only" configuration),
//! * `heartbeat` — promotions gated on delivered beats,
//! * `eager` — promotions at (nearly) every promotion-ready point,
//!
//! with **exact** assertions in the simulator (it is deterministic: the
//! counts are reproducible bit for bit) and **tolerance-banded**
//! assertions in the native runtime (wall-clock beats make the counts
//! noisy, but the bands that separate the policies are orders of
//! magnitude wide).

use std::time::Duration;

use tpal::ir::lower::{lower, Mode};
use tpal::rt::{RtConfig, RtStats, Runtime};
use tpal::sim::{Policy, Sim, SimConfig, SimStats};
use tpal::workloads::{workload, Scale};

/// The shared policy objects under test — parsed once, used verbatim in
/// both domains.
fn shared_policies() -> [(&'static str, Policy); 3] {
    [
        ("heartbeat", Policy::parse("heartbeat").unwrap()),
        ("eager", Policy::parse("eager").unwrap()),
        ("never", Policy::parse("never").unwrap()),
    ]
}

/// Runs the quick plus-reduce workload on the simulator under `policy`
/// and returns the run's stats, asserting the checksum.
fn sim_stats(policy: Policy) -> SimStats {
    let spec = workload("plus-reduce-array")
        .expect("known workload")
        .sim_spec(Scale::Quick);
    let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
    let mut config = SimConfig::nautilus(4, 3_000);
    config.policy = policy;
    let mut sim = Sim::new(&lowered.program, config);
    for (pname, data) in &spec.input.arrays {
        let base = sim.alloc_array(data);
        sim.set_reg(&lowered.param_reg(pname), base).unwrap();
    }
    for (pname, v) in &spec.input.ints {
        sim.set_reg(&lowered.param_reg(pname), *v).unwrap();
    }
    let out = sim.run().unwrap();
    assert_eq!(
        out.read_reg(&lowered.result_reg),
        Some(spec.expected),
        "checksum under {}",
        policy.label()
    );
    out.stats
}

const RT_N: usize = 200_000;
const RT_STRIDE: usize = 32;

/// Runs a latent reduce on the native runtime under `policy` and
/// returns the run's stats, asserting the sum. The heartbeat interval
/// is deliberately long (10 ms) so heartbeat-gated promotions stay far
/// below eager's per-poll-block promotions.
fn rt_stats(policy: Policy) -> RtStats {
    let rt = Runtime::new(
        RtConfig::default()
            .workers(2)
            .heartbeat(Duration::from_millis(10))
            .poll_stride(RT_STRIDE)
            .policy(policy),
    );
    let total = rt.run(|ctx| ctx.reduce(0..RT_N, 0u64, |_, i, acc| acc + i as u64, |a, b| a + b));
    assert_eq!(
        total,
        (RT_N as u64 - 1) * RT_N as u64 / 2,
        "sum under {}",
        policy.label()
    );
    rt.stats()
}

/// Simulator domain, exact: the policy ordering holds with
/// deterministic, reproducible counts.
#[test]
fn sim_policies_order_promotions_exactly() {
    let [(_, hb), (_, eager), (_, never)] = shared_policies();
    let hb = sim_stats(hb);
    let eager = sim_stats(eager);
    let never = sim_stats(never);

    // `never` runs the heartbeat-lowered program fully serially: no
    // promotions, hence no tasks and nothing to steal — but beats are
    // still *delivered* (the mechanism runs; the policy declines).
    assert_eq!(never.promotions, 0);
    assert_eq!(never.forks, 0);
    assert_eq!(never.steals, 0);
    assert!(never.heartbeats_delivered > 0, "delivery is policy-free");

    // `heartbeat` promotes only on delivered beats.
    assert!(hb.promotions > 0);
    assert!(hb.promotions <= hb.heartbeats_delivered);

    // `eager` promotes at every promotion-ready point it can.
    assert!(
        eager.promotions > hb.promotions,
        "eager {} vs heartbeat {}",
        eager.promotions,
        hb.promotions
    );
}

/// Simulator runs are bit-reproducible per policy: the *exact* half of
/// the cross-domain contract.
#[test]
fn sim_policy_runs_are_reproducible() {
    for (name, policy) in shared_policies() {
        assert_eq!(sim_stats(policy), sim_stats(policy), "policy {name}");
    }
}

/// Native-runtime domain, tolerance-banded: the same three policy
/// objects produce the same ordering, with bands wide enough for
/// wall-clock noise.
#[test]
fn rt_policies_order_promotions_within_bands() {
    let [(_, hb), (_, eager), (_, never)] = shared_policies();
    let hb = rt_stats(hb);
    let eager = rt_stats(eager);
    let never = rt_stats(never);

    // Never: exactly zero even in the noisy domain.
    assert_eq!(never.promotions, 0);

    // Eager promotes once per poll block that still has work to split;
    // the floor leaves an 8x band below the nominal N/stride rate.
    let eager_floor = (RT_N / (8 * RT_STRIDE)) as u64;
    assert!(
        eager.promotions >= eager_floor,
        "eager promotions {} below floor {eager_floor}",
        eager.promotions
    );

    // A 10 ms heartbeat admits at most a handful of beats into a
    // sub-millisecond reduce; eager must sit far above it.
    assert!(
        eager.promotions > hb.promotions,
        "eager {} vs heartbeat {}",
        eager.promotions,
        hb.promotions
    );
    assert!(
        hb.promotions < eager_floor / 2,
        "heartbeat promotions {} not separated from eager floor {eager_floor}",
        hb.promotions
    );
}
