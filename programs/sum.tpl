// A latent parallel sum in the task-parallel source language: compiled
// by tpal-ir with heartbeat code versioning (or --mode eager/serial).
// Run: cargo run --release --bin tpal-run -- programs/sum.tpl --ir \
//        --set n=200000 --sim 8
fn main(n) {
    a = alloc(n);
    parfor i in 0..n { a[i] = i * 3 + 1; }
    s = 0;
    parfor i in 0..n reduce(s: +, 0) { s = s + a[i]; }
    return s;
}
