//! # TPAL: Task Parallel Assembly Language & heartbeat scheduling
//!
//! A Rust reproduction of *"Task Parallel Assembly Language for
//! Uncompromising Parallelism"* (Rainey et al., PLDI 2021). This facade
//! crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `tpal-core` | The TPAL ISA, assembler, abstract machine, cost semantics |
//! | [`ir`] | `tpal-ir` | A task-parallel IR with serial / heartbeat / eager lowerings |
//! | [`sim`] | `tpal-sim` | A deterministic multicore simulator with interrupt models |
//! | [`trace`] | `tpal-trace` | Structured scheduling traces, Chrome export, work/span profiling |
//! | [`rt`] | `tpal-rt` | The native heartbeat runtime (threads + work stealing) |
//! | [`serve`] | `tpal-serve` | Simulation-as-a-service: decode cache, admission control, replay |
//! | [`cilk`] | `tpal-cilk` | The eager Cilk-style baseline runtime |
//! | [`deque`] | `tpal-deque` | The Chase–Lev work-stealing deque substrate |
//! | [`workloads`] | `tpal-workloads` | The paper's 12-benchmark suite |
//!
//! See the repository `README.md` for a guided tour, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for the reproduction of every
//! table and figure.
//!
//! # Quickstart
//!
//! ```
//! use tpal::rt::{Runtime, RtConfig};
//!
//! let rt = Runtime::new(RtConfig::default().workers(2));
//! let sum = rt.run(|ctx| {
//!     ctx.reduce(0..1_000_000, 0u64, |_, i, acc| acc + i as u64, |a, b| a + b)
//! });
//! assert_eq!(sum, 999_999 * 1_000_000 / 2);
//! ```

#![warn(missing_docs)]

pub use tpal_cilk as cilk;
pub use tpal_core as core;
pub use tpal_deque as deque;
pub use tpal_ir as ir;
pub use tpal_rt as rt;
pub use tpal_serve as serve;
pub use tpal_sim as sim;
pub use tpal_trace as trace;
pub use tpal_workloads as workloads;
