//! `tpal-serve`: run the TPAL simulation service.
//!
//! ```text
//! tpal-serve [--addr HOST:PORT] [--queue-cap N] [--executors N]
//! ```
//!
//! A long-running server accepting TPAL assembly or task-parallel
//! (`.tpl`) programs as JSON over HTTP/1.1. Each distinct program is
//! validated and compiled once into a content-hash-keyed decode cache;
//! runs execute on the deterministic simulator or a shared
//! native-runtime pool behind a bounded admission queue (full queue:
//! immediate `429` with `Retry-After`). Every response carries a
//! deterministic replay token; `GET /replay/<token>` reproduces the
//! run bit-for-bit. `POST /shutdown` drains gracefully.
//!
//! Example session:
//!
//! ```text
//! $ tpal-serve --addr 127.0.0.1:8080 &
//! $ curl -s localhost:8080/run -d '{
//!     "source": "fn main(n) { s = 0; parfor i in 0..n reduce(s: +, 0) { s = s + i; } return s; }",
//!     "ir": true, "cores": 8, "sets": {"n": 100000}
//!   }'
//! {"cache":"miss","ok":true,"replay":"r1-…","result":{…},"wall_us":…}
//! $ curl -s localhost:8080/replay/r1-…
//! $ curl -s -X POST localhost:8080/shutdown
//! ```

use std::process::ExitCode;

use tpal::serve::server::{ServeConfig, Server};

fn usage() -> String {
    "usage: tpal-serve [--addr HOST:PORT] [--queue-cap N] [--executors N]".to_owned()
}

fn parse_args(mut args: std::env::Args) -> Result<ServeConfig, String> {
    args.next(); // program name
    let mut config = ServeConfig {
        addr: "127.0.0.1:7420".to_owned(),
        ..ServeConfig::default()
    };
    let need = |args: &mut std::env::Args, what: &str| {
        args.next().ok_or_else(|| format!("{what} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = need(&mut args, "--addr")?,
            "--queue-cap" => {
                config.queue_cap = need(&mut args, "--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--executors" => {
                config.executors = need(&mut args, "--executors")?
                    .parse()
                    .map_err(|e| format!("--executors: {e}"))?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args(std::env::args()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let (queue_cap, executors) = (config.queue_cap, config.executors);
    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tpal-serve: bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "tpal-serve: listening on {} (queue capacity {queue_cap}, {executors} executors); \
         POST /shutdown to drain",
        server.addr()
    );
    server.join();
    println!("tpal-serve: drained, bye");
    ExitCode::SUCCESS
}
