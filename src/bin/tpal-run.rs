//! `tpal-run`: execute a TPAL assembly file — or compile and run a
//! task-parallel source file.
//!
//! ```text
//! tpal-run FILE [--ir [--mode serial|heartbeat|expanded|eager]]
//!               [--set reg=int]... [--heartbeat N] [--tau N]
//!               [--sim CORES] [--linux | --nautilus]
//!               [--policy P[/V]] [--victim V]
//!               [--exec-tier ref|decoded|threaded]
//!               [--newest-first] [--print]
//!               [--trace OUT.json] [--profile]
//! ```
//!
//! Without `--ir`, FILE is TPAL assembly (`.tpal`). With `--ir`, FILE is
//! the C-like task-parallel source language (`.tpl`), compiled through
//! `tpal-ir` in the chosen mode (default `heartbeat`); `--set` then
//! names the entry function's parameters and the result register is
//! `result`. Runs on the reference machine by default, or on the
//! multicore simulator with `--sim CORES`. `--print` prints the (parsed
//! or generated) TPAL assembly instead of running.
//!
//! Scheduling policy (simulator runs only): `--policy` selects the
//! promotion policy (`heartbeat`, `eager`, `never`, `adaptive:N`),
//! optionally combined with a victim policy as `promo/victim`;
//! `--victim` selects the steal-victim policy alone (`uniform`,
//! `sequence`, `locality`). Both default to the historical behaviour
//! (`heartbeat/uniform`).
//!
//! `--exec-tier` selects the interpreter tier for straight-line
//! execution (machine and simulator runs): `ref` (the specification
//! interpreter), `decoded` (pre-decoded micro-ops), or `threaded`
//! (direct-dispatch threaded code, the default). All tiers are
//! bit-identical in results and statistics; they differ only in host
//! execution speed.
//!
//! Observability (simulator runs only): `--trace OUT.json` records a
//! structured scheduling trace and writes it as Chrome `trace_event`
//! JSON — open it at `chrome://tracing` or <https://ui.perfetto.dev>,
//! one track per simulated core. `--profile` prints the TASKPROF-style
//! work/span profile (work T₁, span T∞, available parallelism) and the
//! per-core metrics report derived from the same trace.
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin tpal-run -- programs/prod.tpal \
//!     --set a=100000 --set b=3 --sim 8
//! cargo run --release --bin tpal-run -- programs/sum.tpal \
//!     --set main.n=100000 --sim 8 --linux --policy eager/sequence
//! ```

use std::process::ExitCode;

use tpal::core::asm::{parse_program, print_program};
use tpal::core::machine::{Machine, MachineConfig, PromotionOrder};
use tpal::sim::{ExecTier, Policy, Sim, SimConfig, Victim};

struct Options {
    file: String,
    sets: Vec<(String, i64)>,
    heartbeat: u64,
    tau: u64,
    sim_cores: Option<usize>,
    linux: bool,
    print: bool,
    ir: bool,
    mode: tpal::ir::Mode,
    order: PromotionOrder,
    policy: Policy,
    exec_tier: ExecTier,
    trace_out: Option<String>,
    profile: bool,
}

fn usage() -> String {
    "usage: tpal-run FILE [--ir [--mode serial|heartbeat|expanded|eager]] \
     [--set reg=int]... [--heartbeat N] [--tau N] [--sim CORES] \
     [--linux | --nautilus] [--policy P[/V]] [--victim V] \
     [--exec-tier ref|decoded|threaded] \
     [--newest-first] [--print] [--trace OUT.json] [--profile]"
        .to_owned()
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    args.next(); // program name
    let mut opts = Options {
        file: String::new(),
        sets: Vec::new(),
        heartbeat: 100,
        tau: 10,
        sim_cores: None,
        linux: false,
        print: false,
        ir: false,
        mode: tpal::ir::Mode::Heartbeat,
        order: PromotionOrder::OldestFirst,
        policy: Policy::default(),
        exec_tier: ExecTier::default(),
        trace_out: None,
        profile: false,
    };
    let need = |args: &mut std::env::Args, what: &str| {
        args.next().ok_or_else(|| format!("{what} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--set" => {
                let kv = need(&mut args, "--set")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects reg=int, got `{kv}`"))?;
                let v: i64 = v.parse().map_err(|e| format!("--set {kv}: {e}"))?;
                opts.sets.push((k.to_owned(), v));
            }
            "--heartbeat" => {
                opts.heartbeat = need(&mut args, "--heartbeat")?
                    .parse()
                    .map_err(|e| format!("--heartbeat: {e}"))?;
            }
            "--tau" => {
                opts.tau = need(&mut args, "--tau")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?;
            }
            "--sim" => {
                opts.sim_cores = Some(
                    need(&mut args, "--sim")?
                        .parse()
                        .map_err(|e| format!("--sim: {e}"))?,
                );
            }
            "--policy" => {
                let spec = need(&mut args, "--policy")?;
                let parsed = Policy::parse(&spec).map_err(|e| format!("--policy: {e}"))?;
                opts.policy.promotion = parsed.promotion;
                // Only override the victim half when the spec named one,
                // so `--victim` and a bare `--policy` compose.
                if spec.contains('/') {
                    opts.policy.victim = parsed.victim;
                }
            }
            "--victim" => {
                opts.policy.victim = Victim::parse(&need(&mut args, "--victim")?)
                    .map_err(|e| format!("--victim: {e}"))?;
            }
            "--exec-tier" => {
                let spec = need(&mut args, "--exec-tier")?;
                opts.exec_tier = ExecTier::parse(&spec).ok_or_else(|| {
                    format!("--exec-tier: unknown tier `{spec}` (ref|decoded|threaded)")
                })?;
            }
            "--trace" => opts.trace_out = Some(need(&mut args, "--trace")?),
            "--profile" => opts.profile = true,
            "--newest-first" => opts.order = PromotionOrder::NewestFirst,
            "--linux" => opts.linux = true,
            "--nautilus" => opts.linux = false,
            "--print" => opts.print = true,
            "--ir" => opts.ir = true,
            "--mode" => {
                opts.mode = match need(&mut args, "--mode")?.as_str() {
                    "serial" => tpal::ir::Mode::Serial,
                    "heartbeat" => tpal::ir::Mode::Heartbeat,
                    "expanded" => tpal::ir::Mode::HeartbeatExpanded,
                    "eager" => tpal::ir::Mode::Eager { workers: 15 },
                    other => return Err(format!("unknown --mode `{other}`")),
                };
            }
            "--help" | "-h" => return Err(usage()),
            other if opts.file.is_empty() && !other.starts_with('-') => {
                opts.file = other.to_owned();
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if opts.file.is_empty() {
        return Err(usage());
    }
    if (opts.trace_out.is_some() || opts.profile) && opts.sim_cores.is_none() {
        return Err("--trace/--profile need a simulator run (--sim CORES)".to_owned());
    }
    if opts.policy != Policy::default() && opts.sim_cores.is_none() {
        return Err("--policy/--victim need a simulator run (--sim CORES)".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    // Assembly directly, or source compiled through the IR. With --ir,
    // --set names become entry-function parameters.
    let (program, sets) = if opts.ir {
        let ir = match tpal::ir::parse_ir(&src) {
            Ok(ir) => ir,
            Err(e) => {
                eprintln!("{}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        let lowered = match tpal::ir::lower(&ir, opts.mode) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        let sets = opts
            .sets
            .iter()
            .map(|(k, v)| (lowered.param_reg(k), *v))
            .collect::<Vec<_>>();
        (lowered.program, sets)
    } else {
        let program = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        (program, opts.sets.clone())
    };
    if opts.print {
        print!("{}", print_program(&program));
        return ExitCode::SUCCESS;
    }

    // Final integer registers, sorted by name, skipping never-written ones.
    let dump = |regs: &[(String, i64)]| {
        for (name, v) in regs {
            println!("  {name} = {v}");
        }
    };

    if let Some(cores) = opts.sim_cores {
        // The simulator's ♥ is in cycles; the machine default of 100 is
        // far too aggressive there, so default to the tuned value.
        let heartbeat = if opts.heartbeat == 100 {
            3_000
        } else {
            opts.heartbeat
        };
        let mut config = if opts.linux {
            SimConfig::linux(cores, heartbeat)
        } else {
            SimConfig::nautilus(cores, heartbeat)
        };
        config.promotion_order = opts.order;
        config.policy = opts.policy;
        config.exec_tier = opts.exec_tier;
        config.record_trace = opts.trace_out.is_some() || opts.profile;
        let mut sim = Sim::new(&program, config);
        for (k, v) in &sets {
            if let Err(e) = sim.set_reg(k, *v) {
                eprintln!("--set {k}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match sim.run() {
            Ok(out) => {
                println!(
                    "simulated {cores} cores, ♥ = {heartbeat}, policy = {}:",
                    opts.policy.label()
                );
                let mut regs = Vec::new();
                for i in 0..program.reg_count() {
                    let name = program
                        .reg_name(tpal::core::isa::Reg::from_index(i))
                        .to_owned();
                    if let Some(v) = out.read_reg(&name) {
                        regs.push((name, v));
                    }
                }
                regs.sort();
                dump(&regs);
                println!(
                    "  time = {} cycles, tasks = {}, steals = {}, utilization = {:.0}%, \
                     heartbeat rate achieved = {:.0}%",
                    out.time,
                    out.stats.forks,
                    out.stats.steals,
                    out.utilization() * 100.0,
                    out.heartbeat_rate_achieved() * 100.0
                );
                if let Some(trace) = &out.trace {
                    if let Some(path) = &opts.trace_out {
                        let json = tpal::trace::chrome::chrome_json(trace);
                        if let Err(e) = std::fs::write(path, json) {
                            eprintln!("--trace {path}: {e}");
                            return ExitCode::FAILURE;
                        }
                        println!("  trace: {} events -> {path}", trace.len());
                    }
                    if opts.profile {
                        let p = tpal::trace::WorkSpanProfile::from_trace(trace);
                        println!(
                            "  profile: work = {} cycles, span = {} cycles, \
                             parallelism = {:.1}, tasks = {}",
                            p.work,
                            p.span,
                            p.parallelism(),
                            p.tasks
                        );
                        print!("{}", tpal::trace::MetricsReport::from_trace(trace).render());
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let config = MachineConfig::default()
            .with_heartbeat(opts.heartbeat)
            .with_tau(opts.tau)
            .with_promotion_order(opts.order)
            .with_exec_tier(opts.exec_tier);
        let mut m = Machine::new(&program, config);
        for (k, v) in &sets {
            if let Err(e) = m.set_reg(k, *v) {
                eprintln!("--set {k}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match m.run() {
            Ok(out) => {
                println!("machine run, ♥ = {}:", opts.heartbeat);
                let mut shown = Vec::new();
                for i in 0..program.reg_count() {
                    let name = program
                        .reg_name(tpal::core::isa::Reg::from_index(i))
                        .to_owned();
                    if let Some(v) = out.read_reg(&name) {
                        shown.push((name, v));
                    }
                }
                shown.sort();
                dump(&shown);
                println!(
                    "  instructions = {}, tasks = {}, promotions = {}, work = {}, span = {} \
                     (parallelism {:.1})",
                    out.stats.instructions,
                    out.stats.forks,
                    out.stats.promotions,
                    out.work,
                    out.span,
                    out.parallelism()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("machine fault: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
