//! `tpal-run`: execute a TPAL assembly file — or compile and run a
//! task-parallel source file.
//!
//! ```text
//! tpal-run FILE [--ir [--mode serial|heartbeat|expanded|eager]]
//!               [--set reg=int]... [--heartbeat N] [--tau N]
//!               [--sim CORES | --rt WORKERS] [--linux | --nautilus]
//!               [--policy P[/V]] [--victim V]
//!               [--exec-tier ref|decoded|threaded]
//!               [--newest-first] [--print]
//!               [--trace OUT.json] [--profile]
//! ```
//!
//! Without `--ir`, FILE is TPAL assembly (`.tpal`). With `--ir`, FILE is
//! the C-like task-parallel source language (`.tpl`), compiled through
//! `tpal-ir` in the chosen mode (default `heartbeat`); `--set` then
//! names the entry function's parameters and the result register is
//! `result`. Three execution substrates are reachable: the reference
//! machine (the default), the multicore simulator (`--sim CORES`), and
//! the native heartbeat runtime (`--rt WORKERS`).
//!
//! `--heartbeat` is in the substrate's own time unit: instructions on
//! the machine (default 100), cycles on the simulator (default 3000 —
//! the tuned value; an explicitly passed value is always honoured), and
//! microseconds on the native runtime (default 100, the paper's §4.2
//! interval). `--print` prints the (parsed or generated) TPAL assembly
//! instead of running.
//!
//! Scheduling policy (simulator and native-runtime runs): `--policy`
//! selects the promotion policy (`heartbeat`, `eager`, `never`,
//! `adaptive:N`), optionally combined with a victim policy as
//! `promo/victim`; `--victim` selects the steal-victim policy alone
//! (`uniform`, `sequence`, `locality`). The defaults are the historical
//! behaviours (`heartbeat/uniform` on the simulator,
//! `heartbeat/sequence` on the runtime).
//!
//! `--exec-tier` selects the interpreter tier for straight-line
//! execution on every substrate: `ref` (the specification interpreter),
//! `decoded` (pre-decoded micro-ops), or `threaded` (direct-dispatch
//! threaded code, the default). All tiers are bit-identical in results
//! and statistics; they differ only in host execution speed.
//!
//! Observability (simulator and native-runtime runs): `--trace
//! OUT.json` records a structured scheduling trace and writes it as
//! Chrome `trace_event` JSON — open it at `chrome://tracing` or
//! <https://ui.perfetto.dev>, one track per core (per worker).
//! `--profile` prints the TASKPROF-style work/span profile (work T₁,
//! span T∞, available parallelism) and the per-core metrics report
//! derived from the same trace.
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin tpal-run -- programs/prod.tpal \
//!     --set a=100000 --set b=3 --sim 8
//! cargo run --release --bin tpal-run -- programs/sum.tpal \
//!     --set main.n=100000 --sim 8 --linux --policy eager/sequence
//! cargo run --release --bin tpal-run -- programs/fib.tpal \
//!     --set n=25 --rt 4 --heartbeat 100
//! ```

use std::process::ExitCode;
use std::time::Duration;

use tpal::core::asm::{parse_program, print_program};
use tpal::core::machine::{Machine, MachineConfig, PromotionOrder};
use tpal::rt::{RtConfig, Runtime};
use tpal::sim::{ExecTier, Policy, Sim, SimConfig, Victim};

struct Options {
    file: String,
    sets: Vec<(String, i64)>,
    /// `Some` iff `--heartbeat` was passed: each substrate applies its
    /// own default when absent, and an explicit value — even one that
    /// happens to equal another substrate's default — is honoured.
    heartbeat: Option<u64>,
    tau: u64,
    sim_cores: Option<usize>,
    rt_workers: Option<usize>,
    linux: bool,
    print: bool,
    ir: bool,
    mode: tpal::ir::Mode,
    order: PromotionOrder,
    policy: Policy,
    /// Whether `--policy`/`--victim` was passed at all (the native
    /// runtime's default victim differs from the simulator's, so "not
    /// given" cannot be represented as any particular `Policy` value).
    policy_given: bool,
    exec_tier: ExecTier,
    trace_out: Option<String>,
    profile: bool,
}

fn usage() -> String {
    "usage: tpal-run FILE [--ir [--mode serial|heartbeat|expanded|eager]] \
     [--set reg=int]... [--heartbeat N] [--tau N] [--sim CORES | --rt WORKERS] \
     [--linux | --nautilus] [--policy P[/V]] [--victim V] \
     [--exec-tier ref|decoded|threaded] \
     [--newest-first] [--print] [--trace OUT.json] [--profile]"
        .to_owned()
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    args.next(); // program name
    let mut opts = Options {
        file: String::new(),
        sets: Vec::new(),
        heartbeat: None,
        tau: 10,
        sim_cores: None,
        rt_workers: None,
        linux: false,
        print: false,
        ir: false,
        mode: tpal::ir::Mode::Heartbeat,
        order: PromotionOrder::OldestFirst,
        policy: Policy::default(),
        policy_given: false,
        exec_tier: ExecTier::default(),
        trace_out: None,
        profile: false,
    };
    let need = |args: &mut std::env::Args, what: &str| {
        args.next().ok_or_else(|| format!("{what} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--set" => {
                let kv = need(&mut args, "--set")?;
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("--set expects reg=int, got `{kv}`"))?;
                let v: i64 = v.parse().map_err(|e| format!("--set {kv}: {e}"))?;
                opts.sets.push((k.to_owned(), v));
            }
            "--heartbeat" => {
                opts.heartbeat = Some(
                    need(&mut args, "--heartbeat")?
                        .parse()
                        .map_err(|e| format!("--heartbeat: {e}"))?,
                );
            }
            "--tau" => {
                opts.tau = need(&mut args, "--tau")?
                    .parse()
                    .map_err(|e| format!("--tau: {e}"))?;
            }
            "--sim" => {
                opts.sim_cores = Some(
                    need(&mut args, "--sim")?
                        .parse()
                        .map_err(|e| format!("--sim: {e}"))?,
                );
            }
            "--rt" => {
                opts.rt_workers = Some(
                    need(&mut args, "--rt")?
                        .parse()
                        .map_err(|e| format!("--rt: {e}"))?,
                );
            }
            "--policy" => {
                let spec = need(&mut args, "--policy")?;
                let parsed = Policy::parse(&spec).map_err(|e| format!("--policy: {e}"))?;
                opts.policy.promotion = parsed.promotion;
                // Only override the victim half when the spec named one,
                // so `--victim` and a bare `--policy` compose.
                if spec.contains('/') {
                    opts.policy.victim = parsed.victim;
                }
                opts.policy_given = true;
            }
            "--victim" => {
                opts.policy.victim = Victim::parse(&need(&mut args, "--victim")?)
                    .map_err(|e| format!("--victim: {e}"))?;
                opts.policy_given = true;
            }
            "--exec-tier" => {
                let spec = need(&mut args, "--exec-tier")?;
                opts.exec_tier = ExecTier::parse(&spec).ok_or_else(|| {
                    format!("--exec-tier: unknown tier `{spec}` (ref|decoded|threaded)")
                })?;
            }
            "--trace" => opts.trace_out = Some(need(&mut args, "--trace")?),
            "--profile" => opts.profile = true,
            "--newest-first" => opts.order = PromotionOrder::NewestFirst,
            "--linux" => opts.linux = true,
            "--nautilus" => opts.linux = false,
            "--print" => opts.print = true,
            "--ir" => opts.ir = true,
            "--mode" => {
                opts.mode = match need(&mut args, "--mode")?.as_str() {
                    "serial" => tpal::ir::Mode::Serial,
                    "heartbeat" => tpal::ir::Mode::Heartbeat,
                    "expanded" => tpal::ir::Mode::HeartbeatExpanded,
                    "eager" => tpal::ir::Mode::Eager { workers: 15 },
                    other => return Err(format!("unknown --mode `{other}`")),
                };
            }
            "--help" | "-h" => return Err(usage()),
            other if opts.file.is_empty() && !other.starts_with('-') => {
                opts.file = other.to_owned();
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    if opts.file.is_empty() {
        return Err(usage());
    }
    if opts.sim_cores.is_some() && opts.rt_workers.is_some() {
        return Err("--sim and --rt are mutually exclusive".to_owned());
    }
    if (opts.trace_out.is_some() || opts.profile)
        && opts.sim_cores.is_none()
        && opts.rt_workers.is_none()
    {
        return Err(
            "--trace/--profile need a simulator or runtime run (--sim CORES | --rt WORKERS)"
                .to_owned(),
        );
    }
    if opts.policy_given && opts.sim_cores.is_none() && opts.rt_workers.is_none() {
        return Err(
            "--policy/--victim need a simulator or runtime run (--sim CORES | --rt WORKERS)"
                .to_owned(),
        );
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let src = match std::fs::read_to_string(&opts.file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{}: {e}", opts.file);
            return ExitCode::FAILURE;
        }
    };
    // Assembly directly, or source compiled through the IR. With --ir,
    // --set names become entry-function parameters.
    let (program, sets) = if opts.ir {
        let ir = match tpal::ir::parse_ir(&src) {
            Ok(ir) => ir,
            Err(e) => {
                eprintln!("{}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        let lowered = match tpal::ir::lower(&ir, opts.mode) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("{}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        let sets = opts
            .sets
            .iter()
            .map(|(k, v)| (lowered.param_reg(k), *v))
            .collect::<Vec<_>>();
        (lowered.program, sets)
    } else {
        let program = match parse_program(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: {e}", opts.file);
                return ExitCode::FAILURE;
            }
        };
        (program, opts.sets.clone())
    };
    if opts.print {
        print!("{}", print_program(&program));
        return ExitCode::SUCCESS;
    }

    // Final integer registers, sorted by name, skipping never-written ones.
    let dump = |regs: &[(String, i64)]| {
        for (name, v) in regs {
            println!("  {name} = {v}");
        }
    };
    let named_regs = |read: &dyn Fn(&str) -> Option<i64>| {
        let mut regs = Vec::new();
        for i in 0..program.reg_count() {
            let name = program
                .reg_name(tpal::core::isa::Reg::from_index(i))
                .to_owned();
            if let Some(v) = read(&name) {
                regs.push((name, v));
            }
        }
        regs.sort();
        regs
    };

    if let Some(cores) = opts.sim_cores {
        // The simulator's ♥ is in cycles; the machine default of 100 is
        // far too aggressive there, so the flag-absent default is the
        // tuned value. An explicitly passed ♥ — including an explicit
        // 100 — is always honoured.
        let heartbeat = opts.heartbeat.unwrap_or(3_000);
        let mut config = if opts.linux {
            SimConfig::linux(cores, heartbeat)
        } else {
            SimConfig::nautilus(cores, heartbeat)
        };
        config.promotion_order = opts.order;
        config.policy = opts.policy;
        config.exec_tier = opts.exec_tier;
        config.record_trace = opts.trace_out.is_some() || opts.profile;
        let mut sim = Sim::new(&program, config);
        for (k, v) in &sets {
            if let Err(e) = sim.set_reg(k, *v) {
                eprintln!("--set {k}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match sim.run() {
            Ok(out) => {
                println!(
                    "simulated {cores} cores, ♥ = {heartbeat}, policy = {}:",
                    opts.policy.label()
                );
                dump(&named_regs(&|name| out.read_reg(name)));
                println!(
                    "  time = {} cycles, tasks = {}, steals = {}, utilization = {:.0}%, \
                     heartbeat rate achieved = {:.0}%",
                    out.time,
                    out.stats.forks,
                    out.stats.steals,
                    out.utilization() * 100.0,
                    out.heartbeat_rate_achieved() * 100.0
                );
                if let Some(trace) = &out.trace {
                    if report_trace(trace, &opts) == ExitCode::FAILURE {
                        return ExitCode::FAILURE;
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simulation failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else if let Some(workers) = opts.rt_workers {
        // The native runtime's ♥ is wall-clock microseconds (the
        // paper's §4.2 interval as the flag-absent default). The
        // runtime's historical victim policy is `sequence`; an explicit
        // --policy/--victim overrides it.
        let heartbeat = opts.heartbeat.unwrap_or(100);
        let mut config = RtConfig::default()
            .workers(workers)
            .heartbeat(Duration::from_micros(heartbeat))
            .exec_tier(opts.exec_tier)
            .trace(opts.trace_out.is_some() || opts.profile);
        if opts.policy_given {
            config = config.policy(opts.policy);
        }
        let policy_label = config.policy.label();
        let rt = Runtime::new(config);
        let args: Vec<(&str, i64)> = sets.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        match rt.run_program(&program, &args) {
            Ok(out) => {
                println!("native runtime, {workers} workers, ♥ = {heartbeat}µs, policy = {policy_label}:");
                dump(&named_regs(&|name| out.read_reg(name)));
                println!(
                    "  instructions = {}, heartbeats = {}, promotions = {}, tasks = {}, joins = {}",
                    out.stats.instructions,
                    out.stats.heartbeats,
                    out.stats.promotions,
                    out.stats.forks,
                    out.stats.joins
                );
                if let Some(trace) = rt.take_trace() {
                    if report_trace(&trace, &opts) == ExitCode::FAILURE {
                        return ExitCode::FAILURE;
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("runtime fault: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let config = MachineConfig::default()
            .with_heartbeat(opts.heartbeat.unwrap_or(100))
            .with_tau(opts.tau)
            .with_promotion_order(opts.order)
            .with_exec_tier(opts.exec_tier);
        let mut m = Machine::new(&program, config);
        for (k, v) in &sets {
            if let Err(e) = m.set_reg(k, *v) {
                eprintln!("--set {k}: {e}");
                return ExitCode::FAILURE;
            }
        }
        match m.run() {
            Ok(out) => {
                println!("machine run, ♥ = {}:", opts.heartbeat.unwrap_or(100));
                dump(&named_regs(&|name| out.read_reg(name)));
                println!(
                    "  instructions = {}, tasks = {}, promotions = {}, work = {}, span = {} \
                     (parallelism {:.1})",
                    out.stats.instructions,
                    out.stats.forks,
                    out.stats.promotions,
                    out.work,
                    out.span,
                    out.parallelism()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("machine fault: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

/// Writes `--trace` output and prints the `--profile` report from a
/// recorded trace (shared by the simulator and native-runtime paths).
fn report_trace(trace: &tpal::trace::Trace, opts: &Options) -> ExitCode {
    if let Some(path) = &opts.trace_out {
        let json = tpal::trace::chrome::chrome_json(trace);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("--trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  trace: {} events -> {path}", trace.len());
    }
    if opts.profile {
        let p = tpal::trace::WorkSpanProfile::from_trace(trace);
        println!(
            "  profile: work = {} cycles, span = {} cycles, \
             parallelism = {:.1}, tasks = {}",
            p.work,
            p.span,
            p.parallelism(),
            p.tasks
        );
        print!("{}", tpal::trace::MetricsReport::from_trace(trace).render());
    }
    ExitCode::SUCCESS
}
