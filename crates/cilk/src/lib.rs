//! A Cilk-Plus-style *eager* fork-join runtime: the baseline the paper
//! compares heartbeat scheduling against (§4).
//!
//! Cilk performs **initial decomposition**: every `cilk_spawn` creates a
//! task immediately, and `cilk_for` divides its range into `8P` chunks
//! up front by recursive binary splitting (the granularity heuristic the
//! paper's §4.3 discusses — the one that backfires on
//! `floyd-warshall-1K`). Task-creation cost is therefore paid on every
//! fork point of the program, independent of whether the parallelism was
//! worth manifesting; heartbeat scheduling's whole contribution is
//! making that cost proportional to elapsed time instead.
//!
//! The runtime reuses the `tpal-rt` worker pool (work-stealing deques,
//! helping joins) with heartbeats disabled, so measured differences
//! between the two systems come from the scheduling policy, not from
//! unrelated engineering.
//!
//! # Example
//!
//! ```
//! use tpal_cilk::CilkRuntime;
//!
//! let cilk = CilkRuntime::new(2);
//! let total = cilk.run(|ctx| {
//!     tpal_cilk::cilk_reduce(ctx, 0..10_000, 0i64, &|_, i, acc| acc + i as i64, &|a, b| a + b)
//! });
//! assert_eq!(total, (0..10_000i64).sum());
//! ```

#![warn(missing_docs)]

use std::ops::Range;
use std::time::Duration;

use tpal_rt::{HeartbeatSource, RtConfig, RtStats, Runtime, WorkerCtx};

/// The eager fork-join runtime.
pub struct CilkRuntime {
    rt: Runtime,
}

impl CilkRuntime {
    /// Creates a runtime with `workers` worker threads (heartbeats
    /// disabled: Cilk does not interrupt).
    pub fn new(workers: usize) -> CilkRuntime {
        CilkRuntime {
            rt: Runtime::new(
                RtConfig::default()
                    .workers(workers)
                    .source(HeartbeatSource::Disabled)
                    // Irrelevant under Disabled, set for clarity.
                    .heartbeat(Duration::from_micros(100)),
            ),
        }
    }

    /// Runs `f` on a worker, blocking until it completes.
    pub fn run<F, T>(&self, f: F) -> T
    where
        F: FnOnce(&WorkerCtx<'_>) -> T + Send,
        T: Send,
    {
        self.rt.run(f)
    }

    /// Instrumentation counters (`tasks_created` counts every spawn —
    /// the Figure 15a quantity for Cilk).
    pub fn stats(&self) -> RtStats {
        self.rt.stats()
    }

    /// Resets the counters between benchmark trials.
    pub fn reset_stats(&self) {
        self.rt.reset_stats()
    }

    /// The worker count `P`.
    pub fn workers(&self) -> usize {
        self.rt.workers()
    }
}

/// `cilk_spawn f(); g(); cilk_sync` — `spawned` is forked as a task
/// immediately; `cont` runs inline; both results are returned after the
/// implicit sync.
pub fn cilk_spawn2<A, B, RA, RB>(ctx: &WorkerCtx<'_>, spawned: A, cont: B) -> (RA, RB)
where
    A: FnOnce(&WorkerCtx<'_>) -> RA + Send,
    RA: Send,
    B: FnOnce(&WorkerCtx<'_>) -> RB,
{
    // tpal-rt's eager primitive forks its second argument.
    let (rb, ra) = ctx.spawn2(cont, spawned);
    (ra, rb)
}

/// The `cilk_for` grain: `max(1, n / 8P)` (Cilk Plus's loop granularity
/// heuristic, §4.3).
pub fn cilk_grain(n: usize, workers: usize) -> usize {
    (n / (8 * workers.max(1))).max(1)
}

/// `cilk_for`: eagerly divides `range` into `8P` chunks by recursive
/// binary splitting, then runs chunks serially.
pub fn cilk_for<B>(ctx: &WorkerCtx<'_>, range: Range<usize>, body: &B)
where
    B: Fn(&WorkerCtx<'_>, usize) + Sync,
{
    let grain = cilk_grain(range.len(), ctx.pool_size());
    cilk_for_grained(ctx, range, grain, body);
}

/// `cilk_for` with an explicit grain (for granularity ablations).
pub fn cilk_for_grained<B>(ctx: &WorkerCtx<'_>, range: Range<usize>, grain: usize, body: &B)
where
    B: Fn(&WorkerCtx<'_>, usize) + Sync,
{
    if range.len() <= grain.max(1) {
        for i in range {
            body(ctx, i);
        }
        return;
    }
    let mid = range.start + range.len() / 2;
    let (lo, hi) = (range.start..mid, mid..range.end);
    cilk_spawn2(
        ctx,
        move |ctx| cilk_for_grained(ctx, hi, grain, body),
        move |ctx| cilk_for_grained(ctx, lo, grain, body),
    );
}

/// A `cilk_for` with a reducer (the `reducer_opadd` pattern of §3.1):
/// chunks fold locally from `identity`; partials combine with `merge`.
pub fn cilk_reduce<T, B, M>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    identity: T,
    body: &B,
    merge: &M,
) -> T
where
    T: Send + Clone,
    B: Fn(&WorkerCtx<'_>, usize, T) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    let grain = cilk_grain(range.len(), ctx.pool_size());
    cilk_reduce_grained(ctx, range, grain, identity, body, merge)
}

/// [`cilk_reduce`] with an explicit grain.
pub fn cilk_reduce_grained<T, B, M>(
    ctx: &WorkerCtx<'_>,
    range: Range<usize>,
    grain: usize,
    identity: T,
    body: &B,
    merge: &M,
) -> T
where
    T: Send + Clone,
    B: Fn(&WorkerCtx<'_>, usize, T) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    if range.len() <= grain.max(1) {
        let mut acc = identity;
        for i in range {
            acc = body(ctx, i, acc);
        }
        return acc;
    }
    let mid = range.start + range.len() / 2;
    let (lo, hi) = (range.start..mid, mid..range.end);
    let idl = identity.clone();
    let (ra, rb) = cilk_spawn2(
        ctx,
        move |ctx| cilk_reduce_grained(ctx, hi, grain, identity, body, merge),
        move |ctx| cilk_reduce_grained(ctx, lo, grain, idl, body, merge),
    );
    merge(rb, ra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn grain_heuristic() {
        assert_eq!(cilk_grain(1600, 2), 100);
        assert_eq!(cilk_grain(10, 15), 1);
        assert_eq!(cilk_grain(0, 4), 1);
    }

    #[test]
    fn spawn2_returns_both() {
        let cilk = CilkRuntime::new(2);
        let (a, b) = cilk.run(|ctx| cilk_spawn2(ctx, |_| 6, |_| 7));
        assert_eq!((a, b), (6, 7));
        assert!(cilk.stats().tasks_created >= 1);
    }

    #[test]
    fn cilk_for_covers_range() {
        let cilk = CilkRuntime::new(3);
        let n = 100_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        cilk.run(|ctx| {
            cilk_for(ctx, 0..n, &|_, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn cilk_reduce_sums() {
        let cilk = CilkRuntime::new(2);
        let n = 1_000_000usize;
        let s =
            cilk.run(|ctx| cilk_reduce(ctx, 0..n, 0u64, &|_, i, a| a + i as u64, &|a, b| a + b));
        assert_eq!(s, (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn eager_task_count_follows_8p() {
        let cilk = CilkRuntime::new(2);
        cilk.reset_stats();
        cilk.run(|ctx| {
            cilk_reduce(
                ctx,
                0..100_000usize,
                0u64,
                &|_, i, a| a + i as u64,
                &|a, b| a + b,
            )
        });
        let tasks = cilk.stats().tasks_created;
        // Binary splitting to 8P=16 chunks creates 15 spawns.
        assert!(
            (10..=31).contains(&tasks),
            "expected ~15 spawns, got {tasks}"
        );
    }

    #[test]
    fn recursive_spawn_fib() {
        fn fib(ctx: &WorkerCtx<'_>, n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = cilk_spawn2(ctx, |ctx| fib(ctx, n - 1), |ctx| fib(ctx, n - 2));
            a + b
        }
        let cilk = CilkRuntime::new(2);
        cilk.reset_stats();
        assert_eq!(cilk.run(|ctx| fib(ctx, 20)), 6765);
        // One spawn per internal node: Cilk pays task creation everywhere.
        assert!(cilk.stats().tasks_created > 6000);
    }
}
