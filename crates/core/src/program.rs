//! TPAL programs: labelled blocks with interned names, plus validation.
//!
//! A [`Program`] is the static code memory `H` of the abstract machine
//! restricted to blocks (the paper's heap also holds runtime tuples, which
//! live in the machine). Programs are built through a [`ProgramBuilder`]
//! and validated before execution; validation enforces the structural
//! invariants the machine's transition rules assume.

use std::collections::HashMap;
use std::fmt;

use crate::isa::{Annotation, Block, Instr, Label, Operand, Reg};

/// A structural defect found by [`ProgramBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// A jump, annotation, or operand refers to a label with no block.
    UndefinedLabel {
        /// The offending label name.
        label: String,
        /// The block containing the reference.
        in_block: String,
    },
    /// A block's instruction list is empty.
    EmptyBlock {
        /// The offending block.
        block: String,
    },
    /// A block does not end in `jump`, `halt`, or `join`.
    MissingTerminator {
        /// The offending block.
        block: String,
    },
    /// A terminator appears before the end of a block.
    EarlyTerminator {
        /// The offending block.
        block: String,
        /// Index of the early terminator.
        index: usize,
    },
    /// A `jralloc` continuation block lacks a `jtppt` annotation.
    ContinuationNotJoinTarget {
        /// The continuation label.
        label: String,
        /// The block containing the `jralloc`.
        in_block: String,
    },
    /// A `prppt` handler label does not exist.
    UndefinedHandler {
        /// The handler label.
        label: String,
        /// The annotated block.
        in_block: String,
    },
    /// The same block label was defined twice.
    DuplicateLabel {
        /// The duplicated name.
        label: String,
    },
    /// The program defines no blocks.
    NoBlocks,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UndefinedLabel { label, in_block } => {
                write!(
                    f,
                    "undefined label `{label}` referenced in block `{in_block}`"
                )
            }
            ValidationError::EmptyBlock { block } => write!(f, "block `{block}` is empty"),
            ValidationError::MissingTerminator { block } => {
                write!(f, "block `{block}` does not end in jump, halt, or join")
            }
            ValidationError::EarlyTerminator { block, index } => {
                write!(
                    f,
                    "terminator before end of block `{block}` (instruction {index})"
                )
            }
            ValidationError::ContinuationNotJoinTarget { label, in_block } => write!(
                f,
                "jralloc in block `{in_block}` targets `{label}`, which has no jtppt annotation"
            ),
            ValidationError::UndefinedHandler { label, in_block } => {
                write!(
                    f,
                    "prppt handler `{label}` of block `{in_block}` is undefined"
                )
            }
            ValidationError::DuplicateLabel { label } => {
                write!(f, "label `{label}` defined more than once")
            }
            ValidationError::NoBlocks => write!(f, "program has no blocks"),
        }
    }
}

impl std::error::Error for ValidationError {}

/// A validated TPAL program.
///
/// Blocks, labels, and registers are interned; [`Label::index`] and
/// [`Reg::index`] are stable indices into this program's tables.
#[derive(Debug, Clone)]
pub struct Program {
    blocks: Vec<Block>,
    label_names: Vec<String>,
    reg_names: Vec<String>,
    label_by_name: HashMap<String, Label>,
    reg_by_name: HashMap<String, Reg>,
    entry: Label,
}

impl Program {
    /// The program's entry block (the first block defined, unless
    /// overridden with [`ProgramBuilder::entry`]).
    pub fn entry(&self) -> Label {
        self.entry
    }

    /// Looks up a block by label.
    pub fn block(&self, label: Label) -> &Block {
        &self.blocks[label.index()]
    }

    /// All blocks, indexed by [`Label::index`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The number of distinct registers named by the program.
    pub fn reg_count(&self) -> usize {
        self.reg_names.len()
    }

    /// The number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Resolves a label by name.
    pub fn label(&self, name: &str) -> Option<Label> {
        self.label_by_name.get(name).copied()
    }

    /// Resolves a register by name.
    pub fn reg(&self, name: &str) -> Option<Reg> {
        self.reg_by_name.get(name).copied()
    }

    /// The name of a label.
    pub fn label_name(&self, label: Label) -> &str {
        &self.label_names[label.index()]
    }

    /// The name of a register.
    pub fn reg_name(&self, reg: Reg) -> &str {
        &self.reg_names[reg.index()]
    }

    /// Iterates over `(label, block)` pairs in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (Label, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (Label(i as u32), b))
    }

    /// The total number of instructions in the program.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// Incrementally builds and validates a [`Program`].
///
/// # Examples
///
/// ```
/// use tpal_core::program::ProgramBuilder;
/// use tpal_core::isa::{Instr, Operand};
///
/// let mut b = ProgramBuilder::new();
/// let halt = b.label("done");
/// let r = b.reg("r");
/// b.block("done", vec![Instr::Move { dst: r, src: Operand::Int(1) }, Instr::Halt]);
/// let program = b.build().expect("valid");
/// assert_eq!(program.entry(), halt);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<Option<Block>>,
    label_names: Vec<String>,
    reg_names: Vec<String>,
    label_by_name: HashMap<String, Label>,
    reg_by_name: HashMap<String, Reg>,
    entry: Option<Label>,
    definition_order: Vec<Label>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Interns (or retrieves) a label by name. Labels may be referenced
    /// before their blocks are defined.
    pub fn label(&mut self, name: &str) -> Label {
        if let Some(&l) = self.label_by_name.get(name) {
            return l;
        }
        let l = Label(self.label_names.len() as u32);
        self.label_names.push(name.to_owned());
        self.label_by_name.insert(name.to_owned(), l);
        self.blocks.push(None);
        l
    }

    /// Interns (or retrieves) a register by name.
    pub fn reg(&mut self, name: &str) -> Reg {
        if let Some(&r) = self.reg_by_name.get(name) {
            return r;
        }
        let r = Reg(self.reg_names.len() as u32);
        self.reg_names.push(name.to_owned());
        self.reg_by_name.insert(name.to_owned(), r);
        r
    }

    /// Defines a block with no annotation.
    ///
    /// Returns the block's label. Defining the same label twice is an error
    /// reported by [`build`](Self::build).
    pub fn block(&mut self, name: &str, instrs: Vec<Instr>) -> Label {
        self.annotated_block(name, Annotation::None, instrs)
    }

    /// Defines a block with an annotation.
    pub fn annotated_block(
        &mut self,
        name: &str,
        annotation: Annotation,
        instrs: Vec<Instr>,
    ) -> Label {
        let l = self.label(name);
        if self.blocks[l.index()].is_some() {
            // Record the duplicate; reported at build time.
            self.definition_order.push(l);
            return l;
        }
        self.blocks[l.index()] = Some(Block { annotation, instrs });
        self.definition_order.push(l);
        l
    }

    /// Overrides the entry block (defaults to the first block defined).
    pub fn entry(&mut self, label: Label) -> &mut Self {
        self.entry = Some(label);
        self
    }

    fn name(&self, l: Label) -> &str {
        &self.label_names[l.index()]
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found: undefined or duplicate
    /// labels, empty blocks, missing or early terminators, `prppt` handlers
    /// that do not exist, or `jralloc` continuations that are not `jtppt`
    /// blocks.
    pub fn build(self) -> Result<Program, ValidationError> {
        if self.blocks.is_empty() {
            return Err(ValidationError::NoBlocks);
        }
        // Duplicate definitions.
        let mut defined = vec![0usize; self.blocks.len()];
        for &l in &self.definition_order {
            defined[l.index()] += 1;
            if defined[l.index()] > 1 {
                return Err(ValidationError::DuplicateLabel {
                    label: self.name(l).to_owned(),
                });
            }
        }
        let ProgramBuilder {
            blocks: opt_blocks,
            label_names,
            reg_names,
            label_by_name,
            reg_by_name,
            entry,
            definition_order,
        } = self;
        // All referenced labels must be defined; take blocks by value.
        let mut blocks = Vec::with_capacity(opt_blocks.len());
        for (i, b) in opt_blocks.into_iter().enumerate() {
            match b {
                Some(b) => blocks.push(b),
                None => {
                    return Err(ValidationError::UndefinedLabel {
                        label: label_names[i].clone(),
                        in_block: "<program>".to_owned(),
                    })
                }
            }
        }

        let block_name = |l: Label| label_names[l.index()].as_str();

        for (i, block) in blocks.iter().enumerate() {
            let here = Label(i as u32);
            if block.instrs.is_empty() {
                return Err(ValidationError::EmptyBlock {
                    block: block_name(here).to_owned(),
                });
            }
            let last = block.instrs.len() - 1;
            for (j, instr) in block.instrs.iter().enumerate() {
                if j < last && instr.is_terminator() {
                    return Err(ValidationError::EarlyTerminator {
                        block: block_name(here).to_owned(),
                        index: j,
                    });
                }
            }
            if !block.instrs[last].is_terminator() {
                return Err(ValidationError::MissingTerminator {
                    block: block_name(here).to_owned(),
                });
            }
            // jralloc continuations must be join targets.
            for instr in &block.instrs {
                if let Instr::JrAlloc {
                    cont: Operand::Label(k),
                    ..
                } = instr
                {
                    if !matches!(blocks[k.index()].annotation, Annotation::JoinTarget { .. }) {
                        return Err(ValidationError::ContinuationNotJoinTarget {
                            label: block_name(*k).to_owned(),
                            in_block: block_name(here).to_owned(),
                        });
                    }
                }
            }
            if let Annotation::PromotionReady { handler } = block.annotation {
                if handler.index() >= blocks.len() {
                    return Err(ValidationError::UndefinedHandler {
                        label: format!("#{}", handler.index()),
                        in_block: block_name(here).to_owned(),
                    });
                }
            }
        }

        let entry = entry
            .or_else(|| definition_order.first().copied())
            .ok_or(ValidationError::NoBlocks)?;

        Ok(Program {
            blocks,
            label_names,
            reg_names,
            label_by_name,
            reg_by_name,
            entry,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Operand};

    fn halt_block(b: &mut ProgramBuilder, name: &str) {
        b.block(name, vec![Instr::Halt]);
    }

    #[test]
    fn build_minimal() {
        let mut b = ProgramBuilder::new();
        halt_block(&mut b, "main");
        let p = b.build().expect("valid program");
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.label_name(p.entry()), "main");
        assert_eq!(p.instr_count(), 1);
    }

    #[test]
    fn undefined_label_rejected() {
        let mut b = ProgramBuilder::new();
        let missing = b.label("missing");
        b.block(
            "main",
            vec![Instr::Jump {
                target: Operand::Label(missing),
            }],
        );
        assert!(matches!(
            b.build(),
            Err(ValidationError::UndefinedLabel { .. })
        ));
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            ValidationError::NoBlocks
        );
    }

    #[test]
    fn empty_block_rejected() {
        let mut b = ProgramBuilder::new();
        b.block("main", vec![]);
        assert!(matches!(b.build(), Err(ValidationError::EmptyBlock { .. })));
    }

    #[test]
    fn missing_terminator_rejected() {
        let mut b = ProgramBuilder::new();
        let r = b.reg("r");
        b.block(
            "main",
            vec![Instr::Move {
                dst: r,
                src: Operand::Int(0),
            }],
        );
        assert!(matches!(
            b.build(),
            Err(ValidationError::MissingTerminator { .. })
        ));
    }

    #[test]
    fn early_terminator_rejected() {
        let mut b = ProgramBuilder::new();
        b.block("main", vec![Instr::Halt, Instr::Halt]);
        assert!(matches!(
            b.build(),
            Err(ValidationError::EarlyTerminator { index: 0, .. })
        ));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = ProgramBuilder::new();
        halt_block(&mut b, "main");
        halt_block(&mut b, "main");
        assert!(matches!(
            b.build(),
            Err(ValidationError::DuplicateLabel { .. })
        ));
    }

    #[test]
    fn jralloc_requires_join_target() {
        let mut b = ProgramBuilder::new();
        let exit = b.label("exit");
        let jr = b.reg("jr");
        b.block(
            "main",
            vec![
                Instr::JrAlloc {
                    dst: jr,
                    cont: Operand::Label(exit),
                },
                Instr::Halt,
            ],
        );
        b.block("exit", vec![Instr::Halt]);
        assert!(matches!(
            b.build(),
            Err(ValidationError::ContinuationNotJoinTarget { .. })
        ));
    }

    #[test]
    fn interning_is_stable() {
        let mut b = ProgramBuilder::new();
        let r1 = b.reg("x");
        let r2 = b.reg("x");
        assert_eq!(r1, r2);
        let l1 = b.label("loop");
        let l2 = b.label("loop");
        assert_eq!(l1, l2);
    }

    #[test]
    fn entry_override() {
        let mut b = ProgramBuilder::new();
        halt_block(&mut b, "a");
        let second = b.label("b");
        halt_block(&mut b, "b");
        b.entry(second);
        let p = b.build().unwrap();
        assert_eq!(p.label_name(p.entry()), "b");
    }

    #[test]
    fn validation_error_display() {
        let e = ValidationError::UndefinedLabel {
            label: "x".into(),
            in_block: "m".into(),
        };
        assert_eq!(e.to_string(), "undefined label `x` referenced in block `m`");
    }
}
