//! The TPAL instruction set.
//!
//! This module transcribes the grammar of Figure 1 (core language) and
//! Figure 21 (stack extension) of the paper. A program is a set of labelled
//! [`Block`]s; each block carries an [`Annotation`] and a straight-line
//! sequence of [`Instr`]uctions ending in a control [`Instr::Jump`],
//! [`Instr::Halt`], or [`Instr::Join`].
//!
//! Registers and labels are interned: a [`Reg`] or [`Label`] is an index
//! into the per-[`crate::program::Program`] name tables, which keeps
//! register files dense and block lookup O(1) during execution.

use std::fmt;

/// An interned register name.
///
/// TPAL assumes an unbounded set of named registers (the paper uses names
/// such as `a`, `r`, `sp`, `sp-top`). Registers are per-task: every task
/// owns a private register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub(crate) u32);

impl Reg {
    /// Index of this register in a dense register file.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a register from its index (the inverse of
    /// [`Reg::index`]; only meaningful for indices below the owning
    /// program's [`crate::program::Program::reg_count`]).
    #[inline]
    pub fn from_index(i: usize) -> Reg {
        Reg(i as u32)
    }
}

/// An interned block label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// Index of this label in the program's block table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a label from its index (only meaningful for indices
    /// below the owning program's block count).
    #[inline]
    pub fn from_index(i: usize) -> Label {
        Label(i as u32)
    }
}

/// A primitive binary operation.
///
/// Comparison operators follow the paper's truth encoding (Appendix D):
/// they evaluate to `0` for **true** and `1` for **false**, so that
/// `if-jump` (which branches on zero) branches on truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition; also moves a stack pointer *deeper* (toward older
    /// cells) when the left operand is a stack pointer.
    Add,
    /// Integer subtraction; also moves a stack pointer *shallower* when the
    /// left operand is a stack pointer.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (errors on division by zero).
    Div,
    /// Integer remainder (errors on division by zero).
    Mod,
    /// Less-than comparison (`0` = true).
    Lt,
    /// Less-or-equal comparison (`0` = true).
    Le,
    /// Greater-than comparison (`0` = true).
    Gt,
    /// Greater-or-equal comparison (`0` = true).
    Ge,
    /// Equality comparison (`0` = true).
    EqOp,
    /// Disequality comparison (`0` = true).
    Ne,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl BinOp {
    /// The concrete-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::EqOp => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }

    /// All operators, in a fixed order (useful for fuzzing and tests).
    pub fn all() -> &'static [BinOp] {
        use BinOp::*;
        &[
            Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, EqOp, Ne, And, Or, Xor, Shl, Shr, Min, Max,
        ]
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An operand `v`: a register, a label, or an integer literal.
///
/// Join-record identifiers are *runtime* values only (produced by
/// `jralloc`), so they do not appear as static operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register read.
    Reg(Reg),
    /// A code label (a first-class value: labels can be stored and jumped
    /// to indirectly, as in the paper's `jump ret`).
    Label(Label),
    /// An integer literal.
    Int(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Label> for Operand {
    fn from(l: Label) -> Self {
        Operand::Label(l)
    }
}

impl From<i64> for Operand {
    fn from(n: i64) -> Self {
        Operand::Int(n)
    }
}

/// A memory addressing expression `mem[base + offset]` on a task stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemAddr {
    /// Register holding the stack pointer.
    pub base: Reg,
    /// Non-negative literal offset, in cells, toward *older* cells.
    pub offset: u32,
}

/// A single TPAL instruction.
///
/// The first group transcribes `𝚤` and the `I` terminators of Figure 1;
/// the second group is the stack extension of Figure 21.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `r := v` — move an operand into a register.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `r := r' op v` — primitive binary operation.
    Op {
        /// Destination register.
        dst: Reg,
        /// The operation.
        op: BinOp,
        /// Left operand (a register, per the grammar).
        lhs: Reg,
        /// Right operand.
        rhs: Operand,
    },
    /// `if-jump r, v` — branch to `v` when `r` holds zero (true).
    IfJump {
        /// Condition register; zero means the branch is taken.
        cond: Reg,
        /// Branch target (a label, or a register holding one).
        target: Operand,
    },
    /// `r := jralloc l` — allocate a join record whose continuation is the
    /// block at `l` (which must carry a `jtppt` annotation).
    JrAlloc {
        /// Destination register for the fresh join-record identifier.
        dst: Reg,
        /// Continuation label.
        cont: Operand,
    },
    /// `fork r, v` — register a dependency edge on the join record in `r`,
    /// then spawn a child task starting at `v` with a copy of the parent's
    /// register file. Both tasks restart their heartbeat cycle counters.
    Fork {
        /// Register holding the join record.
        jr: Reg,
        /// Label at which the child starts executing.
        target: Operand,
    },
    /// `jump v` — unconditional jump (terminator).
    Jump {
        /// Jump target (a label, or a register holding one).
        target: Operand,
    },
    /// `halt` — terminate the whole machine (terminator).
    Halt,
    /// `join v` — participate in join resolution on the join record held in
    /// `v` (terminator).
    Join {
        /// Register holding the join record.
        jr: Reg,
    },

    // ----- stack extension (Figure 21) -----
    /// `r := snew` — allocate a fresh, empty task stack.
    SNew {
        /// Destination register for the new stack pointer.
        dst: Reg,
    },
    /// `salloc r, n` — allocate `n` zero-initialised cells at the front of
    /// the stack pointed to by `r`, updating `r` to point at the new front.
    SAlloc {
        /// Stack-pointer register (updated in place).
        sp: Reg,
        /// Number of cells.
        n: u32,
    },
    /// `sfree r, n` — free `n` cells from the front of the stack pointed to
    /// by `r`, updating `r`.
    SFree {
        /// Stack-pointer register (updated in place).
        sp: Reg,
        /// Number of cells.
        n: u32,
    },
    /// `r := mem[base + n]` — load from a stack cell.
    Load {
        /// Destination register.
        dst: Reg,
        /// Address.
        addr: MemAddr,
    },
    /// `mem[base + n] := v` — store to a stack cell.
    Store {
        /// Address.
        addr: MemAddr,
        /// Value stored.
        src: Operand,
    },
    /// `prmpush mem[base + n]` — place a promotion-ready mark in a stack
    /// cell, advertising latent parallelism held by the current frame.
    PrmPush {
        /// Address of the mark cell.
        addr: MemAddr,
    },
    /// `prmpop mem[base + n]` — remove the promotion-ready mark from a
    /// stack cell (errors if the cell does not hold a mark).
    PrmPop {
        /// Address of the mark cell.
        addr: MemAddr,
    },
    /// `r := prmempty r'` — write `0` (true) into `r` if the stack visible
    /// from `r'` holds **no** promotion-ready marks, `1` otherwise.
    ///
    /// Note: the rule labels in the paper's Figure 31 are inverted relative
    /// to its own prose (Appendix C.1) and to the `fib` listing; we follow
    /// the prose and the listing, which require `0` ⇔ empty.
    PrmEmpty {
        /// Destination register.
        dst: Reg,
        /// Stack-pointer register.
        sp: Reg,
    },
    /// `prmsplit r, r'` — pop the *oldest* (least recent) promotion-ready
    /// mark from the stack pointed to by `r`, writing its offset relative
    /// to `r` into `r'`. This is how a heartbeat handler locates the
    /// outermost latent parallelism, per the outermost-first policy.
    PrmSplit {
        /// Stack-pointer register.
        sp: Reg,
        /// Destination register for the mark's relative offset.
        dst: Reg,
    },

    // ----- shared-heap extension -----
    //
    // The paper's §2.1 notes "Heap memory can be shared" and Appendix B.2
    // that malloc-style support "is also possible, but we omit it to
    // simplify the presentation". Array workloads need it, so we provide
    // the obvious word-addressed heap: addresses are plain integers
    // (address 0 is null), cells hold 64-bit integers, and allocation
    // never fails short of memory exhaustion.
    /// `r := halloc v` — allocate `v` zero-initialised heap words and
    /// place the base address (a positive integer) in `r`.
    HAlloc {
        /// Destination register for the base address.
        dst: Reg,
        /// Number of words.
        size: Operand,
    },
    /// `r := heap[base + offset]` — load a heap word.
    HLoad {
        /// Destination register.
        dst: Reg,
        /// Register holding the base address.
        base: Reg,
        /// Word offset (register or literal).
        offset: Operand,
    },
    /// `heap[base + offset] := v` — store a heap word.
    HStore {
        /// Register holding the base address.
        base: Reg,
        /// Word offset (register or literal).
        offset: Operand,
        /// Value stored (must be an integer at runtime).
        src: Operand,
    },
}

impl Instr {
    /// Returns `true` if this instruction terminates a block (`jump`,
    /// `halt`, or `join`).
    pub fn is_terminator(&self) -> bool {
        matches!(self, Instr::Jump { .. } | Instr::Halt | Instr::Join { .. })
    }
}

/// The join-resolution policy of a join-target program point: whether the
/// combining operation is only associative, or associative and commutative.
///
/// Under [`JoinPolicy::AssocComm`] the machine may combine partner results
/// in arrival order; under [`JoinPolicy::Assoc`] it must respect the fork
/// tree's left-to-right order. Our join resolution uses the fork tree for
/// both, which is correct for either policy; the policy is retained because
/// it licenses scheduler freedom and is checked by the validator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinPolicy {
    /// Combining is associative only.
    Assoc,
    /// Combining is associative and commutative.
    AssocComm,
}

impl fmt::Display for JoinPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinPolicy::Assoc => f.write_str("assoc"),
            JoinPolicy::AssocComm => f.write_str("assoc-comm"),
        }
    }
}

/// A register-renaming environment `ΔR = { r₁ ↦ r₁', … }`.
///
/// At join resolution, the merged register file is the parent's file with,
/// for each pair `(src, dst)`, the **child's** value of `src` written into
/// `dst` (Figure 27's `MergeR`). In the paper's `prod`, `ΔR = {r ↦ r2}`
/// passes the child's accumulator to the combining block as `r2`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct RegMap {
    /// `(source-in-child, destination-in-merged)` pairs.
    pub pairs: Vec<(Reg, Reg)>,
}

impl RegMap {
    /// An empty renaming.
    pub fn new() -> Self {
        RegMap::default()
    }

    /// Adds a `src ↦ dst` pair.
    pub fn with(mut self, src: Reg, dst: Reg) -> Self {
        self.pairs.push((src, dst));
        self
    }
}

/// A block annotation `★` (Figure 1).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum Annotation {
    /// `·` — no special behaviour.
    #[default]
    None,
    /// `prppt l` — a promotion-ready program point: when control reaches
    /// this block and the task's heartbeat cycle counter has exceeded ♥,
    /// control is diverted to the handler block `l`.
    PromotionReady {
        /// The heartbeat handler block.
        handler: Label,
    },
    /// `jtppt jp; ΔR; l` — a join-target program point: the continuation of
    /// a join point, specifying the join-resolution policy, the register
    /// merge, and the combining block `l`.
    JoinTarget {
        /// Join-resolution policy.
        policy: JoinPolicy,
        /// Register merge `ΔR`.
        merge: RegMap,
        /// Combining block.
        comb: Label,
    },
}

impl Annotation {
    /// Returns the handler label if this is a promotion-ready point.
    pub fn handler(&self) -> Option<Label> {
        match self {
            Annotation::PromotionReady { handler } => Some(*handler),
            _ => None,
        }
    }
}

/// A labelled code block: an annotation plus a non-empty instruction
/// sequence whose last instruction is a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// The block's annotation.
    pub annotation: Annotation,
    /// The instructions; the last is a terminator, and no earlier
    /// instruction is (enforced by program validation).
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Creates a block with no annotation.
    pub fn new(instrs: Vec<Instr>) -> Self {
        Block {
            annotation: Annotation::None,
            instrs,
        }
    }

    /// Creates a block with the given annotation.
    pub fn with_annotation(annotation: Annotation, instrs: Vec<Instr>) -> Self {
        Block { annotation, instrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Instr::Halt.is_terminator());
        assert!(Instr::Jump {
            target: Operand::Int(0)
        }
        .is_terminator());
        assert!(Instr::Join { jr: Reg(0) }.is_terminator());
        assert!(!Instr::Move {
            dst: Reg(0),
            src: Operand::Int(1)
        }
        .is_terminator());
        assert!(!Instr::SNew { dst: Reg(0) }.is_terminator());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Reg(3)), Operand::Reg(Reg(3)));
        assert_eq!(Operand::from(Label(2)), Operand::Label(Label(2)));
        assert_eq!(Operand::from(7i64), Operand::Int(7));
    }

    #[test]
    fn binop_symbols_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in BinOp::all() {
            assert!(seen.insert(op.symbol()), "duplicate symbol {}", op.symbol());
        }
    }

    #[test]
    fn regmap_builder() {
        let m = RegMap::new().with(Reg(0), Reg(1)).with(Reg(2), Reg(3));
        assert_eq!(m.pairs.len(), 2);
        assert_eq!(m.pairs[0], (Reg(0), Reg(1)));
    }

    #[test]
    fn annotation_handler_accessor() {
        assert_eq!(Annotation::None.handler(), None);
        assert_eq!(
            Annotation::PromotionReady { handler: Label(4) }.handler(),
            Some(Label(4))
        );
    }
}
