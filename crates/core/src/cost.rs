//! The cost semantics of TPAL (Figure 28).
//!
//! Execution induces a series-parallel directed acyclic *cost graph* `g`:
//! the empty graph `0`, a unit vertex `1`, sequential composition
//! `g₁ · g₂`, and parallel composition `g₁ ∥ g₂`. Work counts every vertex
//! (plus τ per fork-join); span is the longest path (plus τ per
//! fork-join on it).
//!
//! The executor ([`crate::machine::Machine`]) computes work and span
//! *incrementally* — carrying per-task relative counters and snapshotting
//! them at fork-tree nodes — rather than materialising graphs. This module
//! provides the explicit graph algebra, used to specify that computation
//! and to cross-check it in tests, plus Brent's-bound utilities used by
//! the simulator's sanity checks.

/// A series-parallel cost graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostGraph {
    /// The empty graph `0`.
    Empty,
    /// A single unit-cost vertex `1`.
    Unit,
    /// A chain of `n` unit vertices (a compressed `1 · 1 · … · 1`,
    /// letting executors record long sequential stretches in O(1)).
    Steps(u64),
    /// Sequential composition `g₁ · g₂`.
    Seq(Box<CostGraph>, Box<CostGraph>),
    /// Parallel composition `g₁ ∥ g₂` (weighted τ at evaluation).
    Par(Box<CostGraph>, Box<CostGraph>),
}

impl CostGraph {
    /// Sequential composition.
    pub fn then(self, other: CostGraph) -> CostGraph {
        CostGraph::Seq(Box::new(self), Box::new(other))
    }

    /// Parallel composition.
    pub fn beside(self, other: CostGraph) -> CostGraph {
        CostGraph::Par(Box::new(self), Box::new(other))
    }

    /// A chain of `n` unit vertices (boxed form; see also the compressed
    /// [`CostGraph::Steps`]).
    pub fn chain(n: u64) -> CostGraph {
        let mut g = CostGraph::Empty;
        for _ in 0..n {
            g = g.then(CostGraph::Unit);
        }
        g
    }

    /// `Work(g)` with task-creation cost `tau` (Figure 28).
    pub fn work(&self, tau: u64) -> u64 {
        match self {
            CostGraph::Empty => 0,
            CostGraph::Unit => 1,
            CostGraph::Steps(n) => *n,
            CostGraph::Seq(a, b) => a.work(tau) + b.work(tau),
            CostGraph::Par(a, b) => tau + a.work(tau) + b.work(tau),
        }
    }

    /// `Span(g)` with task-creation cost `tau` (Figure 28).
    pub fn span(&self, tau: u64) -> u64 {
        match self {
            CostGraph::Empty => 0,
            CostGraph::Unit => 1,
            CostGraph::Steps(n) => *n,
            CostGraph::Seq(a, b) => a.span(tau) + b.span(tau),
            CostGraph::Par(a, b) => tau + a.span(tau).max(b.span(tau)),
        }
    }
}

/// Brent's bound: a greedy `p`-processor schedule of a computation with
/// the given work and span completes within `work/p + span` steps.
///
/// The simulator's measured completion times are validated against this
/// (and against the trivial lower bounds `work/p` and `span`).
pub fn brent_upper_bound(work: u64, span: u64, p: u64) -> u64 {
    work / p.max(1) + span
}

/// The trivial lower bound on `p`-processor completion time:
/// `max(⌈work/p⌉, span)`.
pub fn lower_bound(work: u64, span: u64, p: u64) -> u64 {
    let p = p.max(1);
    (work.div_ceil(p)).max(span)
}

/// The heartbeat amortisation bound (Acar et al., PLDI 2018, Theorem 1,
/// specialised): with promotions only every ♥ instructions of useful
/// work, the number of promotions is at most `work / ♥`, so the total
/// task-creation overhead `τ · promotions` is at most `(τ/♥) · work` — a
/// constant fraction chosen by tuning ♥ ≥ τ/ε.
pub fn max_promotions(work: u64, heartbeat: u64) -> u64 {
    work / heartbeat.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_empty() {
        assert_eq!(CostGraph::Empty.work(5), 0);
        assert_eq!(CostGraph::Empty.span(5), 0);
        assert_eq!(CostGraph::Unit.work(5), 1);
        assert_eq!(CostGraph::Unit.span(5), 1);
    }

    #[test]
    fn seq_adds_both() {
        let g = CostGraph::chain(10);
        assert_eq!(g.work(3), 10);
        assert_eq!(g.span(3), 10);
        // The compressed chain agrees with the boxed chain.
        assert_eq!(CostGraph::Steps(10).work(3), g.work(3));
        assert_eq!(CostGraph::Steps(10).span(3), g.span(3));
    }

    #[test]
    fn par_adds_work_maxes_span() {
        let g = CostGraph::chain(10).beside(CostGraph::chain(4));
        assert_eq!(g.work(3), 3 + 14);
        assert_eq!(g.span(3), 3 + 10);
    }

    #[test]
    fn nested_composition() {
        // (5 · (3 ∥ 7)) · 2 with τ = 1
        let g = CostGraph::chain(5)
            .then(CostGraph::chain(3).beside(CostGraph::chain(7)))
            .then(CostGraph::chain(2));
        assert_eq!(g.work(1), 5 + 1 + 10 + 2);
        assert_eq!(g.span(1), 5 + 1 + 7 + 2);
    }

    #[test]
    fn span_never_exceeds_work() {
        let g = CostGraph::chain(4)
            .beside(CostGraph::chain(9).beside(CostGraph::chain(2)))
            .then(CostGraph::chain(1));
        for tau in [0, 1, 10] {
            assert!(g.span(tau) <= g.work(tau));
        }
    }

    #[test]
    fn brent_bounds_bracket() {
        let (w, s) = (1000, 50);
        for p in 1..=16 {
            assert!(lower_bound(w, s, p) <= brent_upper_bound(w, s, p));
        }
        assert_eq!(brent_upper_bound(1000, 50, 1), 1050);
        assert_eq!(lower_bound(1000, 50, 4), 250);
        assert_eq!(lower_bound(1000, 500, 4), 500);
    }

    #[test]
    fn promotion_amortisation() {
        assert_eq!(max_promotions(10_000, 100), 100);
        assert_eq!(max_promotions(99, 100), 0);
        assert_eq!(max_promotions(100, 0), 100); // ♥ clamped to 1
    }
}
