//! The paper's example programs, built programmatically.
//!
//! * [`prod`] — the running example (Figures 2, 32–34): `c = a * b` by
//!   repeated addition, with heartbeat-promotable loop parallelism.
//! * [`pow`] — the nested-loop example of Appendix B.1: `f = dᵉ`, with the
//!   inner `prod` loop nested in an outer loop and the
//!   promote-outermost-first policy.
//! * [`fib`] — the recursive example of Appendix B.2 (Figures 20, 22, 23):
//!   stack frames carrying promotion-ready marks, `prmsplit` locating the
//!   oldest latent call, and join continuations spliced into frames.
//!
//! # Deviations from the paper's listings (documented faithfully)
//!
//! The appendix listings contain three defects that any executable
//! reproduction must address; see `DESIGN.md` for the full discussion:
//!
//! 1. **Figure 23, line 46** writes the `joink` continuation through `sp`;
//!    the prose and Figure 24 show it must go through `sp-top` (the
//!    promoted frame's continuation cell). We use `sp-top`.
//! 2. **Figure 23** reads the registers `jr` and `sp-top` inside `joink`,
//!    but both are clobbered by any *subsequent* promotion before the
//!    pop-walk reaches the promoted frame. We save `jr` into the frame's
//!    dead mark cell at promotion time and reload it in `joink` — the
//!    frame-local storage the mechanism needs to support multiple
//!    outstanding promotions per stack.
//! 3. **Figure 18** lets a task promote *outer* loop iterations using a
//!    register copy of the induction variable that is stale after an inner
//!    fork, which would duplicate outer iterations. We add an ownership
//!    flag transferred at inner forks: only the task whose join chain
//!    carries the outer continuation may promote outer iterations. This
//!    preserves the outer-loop-first policy and is how the paper's own
//!    stack-mark mechanism (Appendix B.2) behaves.

use crate::isa::{Annotation, BinOp, Instr, JoinPolicy, MemAddr, Operand, Reg, RegMap};
use crate::program::{Program, ProgramBuilder};

/// Shorthand instruction constructors used by the program builders (and
/// exported for tests and the IR lowering crate).
pub mod build {
    use super::*;

    /// `dst := src`.
    pub fn mov(dst: Reg, src: impl Into<Operand>) -> Instr {
        Instr::Move {
            dst,
            src: src.into(),
        }
    }

    /// `dst := lhs op rhs`.
    pub fn op(dst: Reg, o: BinOp, lhs: Reg, rhs: impl Into<Operand>) -> Instr {
        Instr::Op {
            dst,
            op: o,
            lhs,
            rhs: rhs.into(),
        }
    }

    /// `if-jump cond, target`.
    pub fn if_jump(cond: Reg, target: impl Into<Operand>) -> Instr {
        Instr::IfJump {
            cond,
            target: target.into(),
        }
    }

    /// `jump target`.
    pub fn jump(target: impl Into<Operand>) -> Instr {
        Instr::Jump {
            target: target.into(),
        }
    }

    /// `dst := jralloc cont`.
    pub fn jralloc(dst: Reg, cont: impl Into<Operand>) -> Instr {
        Instr::JrAlloc {
            dst,
            cont: cont.into(),
        }
    }

    /// `fork jr, target`.
    pub fn fork(jr: Reg, target: impl Into<Operand>) -> Instr {
        Instr::Fork {
            jr,
            target: target.into(),
        }
    }

    /// `join jr`.
    pub fn join(jr: Reg) -> Instr {
        Instr::Join { jr }
    }

    /// `mem[base + offset]`.
    pub fn mem(base: Reg, offset: u32) -> MemAddr {
        MemAddr { base, offset }
    }

    /// `dst := mem[base + offset]`.
    pub fn load(dst: Reg, base: Reg, offset: u32) -> Instr {
        Instr::Load {
            dst,
            addr: mem(base, offset),
        }
    }

    /// `mem[base + offset] := src`.
    pub fn store(base: Reg, offset: u32, src: impl Into<Operand>) -> Instr {
        Instr::Store {
            addr: mem(base, offset),
            src: src.into(),
        }
    }
}

use build::*;

/// Builds the paper's running example `prod` (Figure 2): computes
/// `c = a * b` by repeated addition.
///
/// Inputs: registers `a` and `b`. Output: register `c` at `halt`.
/// The serial blocks run unchanged until a heartbeat fires at the `loop`
/// promotion-ready point; the handler then splits the remaining
/// iterations.
pub fn prod() -> Program {
    let mut b = ProgramBuilder::new();
    build_prod_into(&mut b, ProdExit::Halt);
    b.build().expect("prod is well-formed")
}

/// How the generated `prod` blocks terminate: standalone (`halt`) or as a
/// callable routine (`jump ret`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProdExit {
    Halt,
    JumpRet,
}

/// Emits prod's blocks into `b`. The `exit_kind` selects between the
/// standalone program of Figure 2 and the callable variant used inside
/// `pow` (Appendix B.1), which returns through the `ret` register and
/// funnels its heartbeat handlers through `pow`'s outermost-first logic.
fn build_prod_into(b: &mut ProgramBuilder, exit_kind: ProdExit) {
    let (ra, rb, rc, rr, rr2, rt, rm, rn, rtr, rjr) = (
        b.reg("a"),
        b.reg("b"),
        b.reg("c"),
        b.reg("r"),
        b.reg("r2"),
        b.reg("t"),
        b.reg("m"),
        b.reg("n"),
        b.reg("tr"),
        b.reg("jr"),
    );
    let l_exit = b.label("exit");
    let l_loop = b.label("loop");
    let l_promote = b.label("loop_promote");
    let l_par = b.label("loop_par");
    let l_comb = b.label("comb");
    let l_exit_par = b.label("exit_par");

    // prod: [·]  r := 0; jump loop
    let mut entry = vec![mov(rr, 0)];
    if exit_kind == ProdExit::JumpRet {
        // Inside pow, a fresh call must forget any previous inner record.
        entry.push(mov(rjr, 0));
    }
    entry.push(jump(l_loop));
    b.block("prod", entry);

    // exit: [jtppt assoc-comm; {r ↦ r2}; comb]  c := r; halt / jump ret
    let exit_term = match exit_kind {
        ProdExit::Halt => Instr::Halt,
        ProdExit::JumpRet => jump(b.reg("ret")),
    };
    b.annotated_block(
        "exit",
        Annotation::JoinTarget {
            policy: JoinPolicy::AssocComm,
            merge: RegMap::new().with(rr, rr2),
            comb: l_comb,
        },
        vec![mov(rc, rr), exit_term],
    );

    // The handlers the loop blocks divert to. Standalone prod uses its own
    // (Figure 33); inside pow they are pow's outermost-first funnels.
    let (loop_handler, par_handler) = match exit_kind {
        ProdExit::Halt => (b.label("loop_try_promote"), b.label("loop_par_try_promote")),
        ProdExit::JumpRet => (b.label("inner_try"), b.label("inner_par_try")),
    };

    // loop: [prppt ★]  if-jump a, exit; r := r + b; a := a - 1; jump loop
    b.annotated_block(
        "loop",
        Annotation::PromotionReady {
            handler: loop_handler,
        },
        vec![
            if_jump(ra, l_exit),
            op(rr, BinOp::Add, rr, rb),
            op(ra, BinOp::Sub, ra, 1),
            jump(l_loop),
        ],
    );

    if exit_kind == ProdExit::Halt {
        // loop_try_promote: first promotion allocates the join record.
        b.block(
            "loop_try_promote",
            vec![
                op(rt, BinOp::Lt, ra, 2),
                if_jump(rt, l_loop),
                jralloc(rjr, l_exit),
                jump(l_promote),
            ],
        );
        // loop_par_try_promote: later promotions share the record.
        b.block(
            "loop_par_try_promote",
            vec![
                op(rt, BinOp::Lt, ra, 2),
                if_jump(rt, l_par),
                jump(l_promote),
            ],
        );
    }

    // loop_promote: split remaining iterations between parent and child.
    //
    // Inside pow, the inner child must not inherit ownership of the outer
    // loop's iterations (deviation 3 in the module docs), so ownership is
    // parked at 1 (non-owner) across the fork and restored afterwards.
    let mut promote = vec![
        op(rm, BinOp::Div, ra, 2),
        op(rn, BinOp::Mod, ra, 2),
        mov(ra, rm),
        mov(rtr, rr),
        mov(rr, 0),
    ];
    if exit_kind == ProdExit::JumpRet {
        let rown = b.reg("own");
        let rtown = b.reg("town");
        promote.push(mov(rtown, rown));
        promote.push(mov(rown, 1));
        promote.push(fork(rjr, l_par));
        promote.push(mov(rown, rtown));
    } else {
        promote.push(fork(rjr, l_par));
    }
    promote.extend([
        op(ra, BinOp::Add, rm, Operand::Reg(rn)),
        mov(rr, rtr),
        jump(l_par),
    ]);
    b.block("loop_promote", promote);

    // loop_par: [prppt ★]
    b.annotated_block(
        "loop_par",
        Annotation::PromotionReady {
            handler: par_handler,
        },
        vec![
            if_jump(ra, l_exit_par),
            op(rr, BinOp::Add, rr, rb),
            op(ra, BinOp::Sub, ra, 1),
            jump(l_par),
        ],
    );

    // comb: r := r + r2; join jr
    b.block("comb", vec![op(rr, BinOp::Add, rr, rr2), join(rjr)]);

    // exit_par: join jr
    b.block("exit_par", vec![join(rjr)]);
}

/// Builds the nested-loop example `pow` (Appendix B.1): computes
/// `f = d^e` by iterating the inner `prod` loop, with heartbeat promotion
/// preferring the *outermost* latent parallelism.
///
/// Inputs: registers `d` and `e` (`e ≥ 0`). Output: register `f` at
/// `halt`. Uses multiplicative splitting of the outer loop
/// (`d^e = d^(m+n) · d^m`) exactly as Figure 18's `ploop-promote`.
pub fn pow() -> Program {
    let mut b = ProgramBuilder::new();

    // Inner prod in callable form (handlers funnel through pow's).
    build_prod_into(&mut b, ProdExit::JumpRet);

    let (rd, re, rf, rpr, rpr2, rpjr, rret) = (
        b.reg("d"),
        b.reg("e"),
        b.reg("f"),
        b.reg("pr"),
        b.reg("pr2"),
        b.reg("pjr"),
        b.reg("ret"),
    );
    let (ra, rb, rc, rjr, rt) = (b.reg("a"), b.reg("b"), b.reg("c"), b.reg("jr"), b.reg("t"));
    // Ownership flag for outer iterations: 0 (true) = owner.
    let rown = b.reg("own");
    let rtown = b.reg("town");
    let (rm, rn, rtpr) = (b.reg("m"), b.reg("n"), b.reg("tpr"));
    // Handler plumbing registers.
    let rpabort = b.reg("pabort");
    let rpcont = b.reg("pcont");

    let l_prod = b.label("prod");
    let l_loop = b.label("loop");
    let l_par = b.label("loop_par");
    let l_inner_promote = b.label("loop_promote");
    let l_exit = b.label("exit");

    let l_pow = b.label("pow");
    let l_ploop = b.label("ploop");
    let l_ploop_cont = b.label("ploop_cont");
    let l_pexit = b.label("pexit");
    let l_ploop_par = b.label("ploop_par");
    let l_ploop_par_cont = b.label("ploop_par_cont");
    let l_pjoin = b.label("pjoin");
    let l_pcomb = b.label("pcomb");
    let l_ptry = b.label("ptry_promote");
    let l_ptry_par = b.label("ptry_par_promote");
    let l_inner_try = b.label("inner_try");
    let l_inner_par_try = b.label("inner_par_try");
    let l_outer_try = b.label("outer_try");
    let l_outer_check = b.label("outer_check");
    let l_outer_alloc = b.label("outer_alloc");
    let l_outer_promote = b.label("outer_promote");
    let l_inner_only = b.label("inner_only_try");
    let l_inner_alloc = b.label("inner_alloc");
    let l_abort = b.label("abort");

    // pow: [·]
    b.block(
        "pow",
        vec![
            mov(rpr, 1),
            mov(rpjr, 0),
            mov(rjr, 0),
            mov(rown, 0), // we own the outer iterations
            mov(ra, 0),   // inner state starts empty (read by handlers)
            jump(l_ploop),
        ],
    );
    let _ = l_pow;

    // pexit: [jtppt assoc-comm; {pr ↦ pr2}; pcomb]  f := pr; halt
    b.annotated_block(
        "pexit",
        Annotation::JoinTarget {
            policy: JoinPolicy::AssocComm,
            merge: RegMap::new().with(rpr, rpr2),
            comb: l_pcomb,
        },
        vec![mov(rf, rpr), Instr::Halt],
    );

    // ploop: [prppt ptry_promote]
    b.annotated_block(
        "ploop",
        Annotation::PromotionReady { handler: l_ptry },
        vec![
            if_jump(re, l_pexit),
            mov(ra, rd),
            mov(rb, rpr),
            mov(rret, l_ploop_cont),
            jump(l_prod),
        ],
    );

    // ploop_cont: pr := c; e := e - 1; jump ploop
    b.block(
        "ploop_cont",
        vec![mov(rpr, rc), op(re, BinOp::Sub, re, 1), jump(l_ploop)],
    );

    // ploop_par: [prppt ptry_par_promote]
    b.annotated_block(
        "ploop_par",
        Annotation::PromotionReady {
            handler: l_ptry_par,
        },
        vec![
            if_jump(re, l_pjoin),
            mov(ra, rd),
            mov(rb, rpr),
            mov(rret, l_ploop_par_cont),
            jump(l_prod),
        ],
    );

    b.block(
        "ploop_par_cont",
        vec![mov(rpr, rc), op(re, BinOp::Sub, re, 1), jump(l_ploop_par)],
    );

    // pjoin: join pjr
    b.block("pjoin", vec![join(rpjr)]);

    // pcomb: pr := pr * pr2; join pjr
    b.block("pcomb", vec![op(rpr, BinOp::Mul, rpr, rpr2), join(rpjr)]);

    // ----- heartbeat handlers (outermost-first funnel) -----

    // From the outer serial loop.
    b.block(
        "ptry_promote",
        vec![
            mov(rpabort, l_ploop),
            mov(rpcont, l_ploop_par),
            jump(l_outer_try),
        ],
    );
    // From the outer parallel loop.
    b.block(
        "ptry_par_promote",
        vec![
            mov(rpabort, l_ploop_par),
            mov(rpcont, l_ploop_par),
            jump(l_outer_try),
        ],
    );
    // From the inner serial loop.
    b.block(
        "inner_try",
        vec![mov(rpabort, l_loop), mov(rpcont, l_loop), jump(l_outer_try)],
    );
    // From the inner parallel loop.
    b.block(
        "inner_par_try",
        vec![mov(rpabort, l_par), mov(rpcont, l_par), jump(l_outer_try)],
    );

    // outer_try: only the owner of outer iterations may promote them.
    b.block(
        "outer_try",
        vec![if_jump(rown, l_outer_check), jump(l_inner_only)],
    );
    b.block(
        "outer_check",
        vec![
            op(rt, BinOp::Lt, re, 2),
            if_jump(rt, l_inner_only),
            if_jump(rpjr, l_outer_alloc),
            jump(l_outer_promote),
        ],
    );
    b.block(
        "outer_alloc",
        vec![jralloc(rpjr, l_pexit), jump(l_outer_promote)],
    );
    // outer_promote: the ploop-promote of Figure 18, plus retargeting the
    // in-flight inner return continuation to the parallel outer loop.
    b.block(
        "outer_promote",
        vec![
            op(rm, BinOp::Div, re, 2),
            op(rn, BinOp::Mod, re, 2),
            mov(re, rm),
            mov(rtpr, rpr),
            mov(rpr, 1),
            mov(rret, l_ploop_par_cont),
            fork(rpjr, l_ploop_par),
            op(re, BinOp::Add, rm, Operand::Reg(rn)),
            mov(rpr, rtpr),
            jump(rpcont),
        ],
    );

    // inner_only_try: the prod promotion path, gated on remaining inner
    // iterations, transferring outer ownership away from the inner child.
    b.block(
        "inner_only_try",
        vec![
            op(rt, BinOp::Lt, ra, 2),
            if_jump(rt, l_abort),
            if_jump(rjr, l_inner_alloc),
            jump(l_inner_promote),
        ],
    );
    b.block("abort", vec![jump(rpabort)]);
    b.block(
        "inner_alloc",
        vec![jralloc(rjr, l_exit), jump(l_inner_promote)],
    );

    let _ = (rtown, l_pow, l_inner_try, l_inner_par_try);
    let pow_entry = b.label("pow");
    b.entry(pow_entry);
    b.build().expect("pow is well-formed")
}

/// Builds the recursive example `fib` (Appendix B.2): computes the n-th
/// Fibonacci number with stack-based promotion-ready marks.
///
/// Input: register `n`. Output: register `f` at `halt`.
pub fn fib() -> Program {
    let mut b = ProgramBuilder::new();

    let (rn, rf, rf2, rt, rsp, rsp_top, rtop, rjr, rtn, rtsp, rret) = (
        b.reg("n"),
        b.reg("f"),
        b.reg("f2"),
        b.reg("t"),
        b.reg("sp"),
        b.reg("sp_top"),
        b.reg("top"),
        b.reg("jr"),
        b.reg("tn"),
        b.reg("tsp"),
        b.reg("ret"),
    );

    let l_fib = b.label("fib");
    let l_exit = b.label("exit");
    let l_loop = b.label("loop");
    let l_retk = b.label("retk");
    let l_branch1 = b.label("branch1");
    let l_branch2 = b.label("branch2");
    let l_try = b.label("loop_try_promote");
    let l_par_try = b.label("loop_par_try_promote");
    let l_promote = b.label("loop_promote");
    let l_comb = b.label("comb");
    let l_joink = b.label("joink");
    let l_par = b.label("loop_par");
    let l_done = b.label("done");

    // main: sp := snew; ret := done; jump fib
    b.block(
        "main",
        vec![Instr::SNew { dst: rsp }, mov(rret, l_done), jump(l_fib)],
    );
    b.block("done", vec![Instr::Halt]);

    // fib: salloc sp, 1; mem[sp+0] := exit; jump loop
    b.block(
        "fib",
        vec![
            Instr::SAlloc { sp: rsp, n: 1 },
            store(rsp, 0, l_exit),
            jump(l_loop),
        ],
    );

    // exit: sfree sp, 1; jump ret
    b.block("exit", vec![Instr::SFree { sp: rsp, n: 1 }, jump(rret)]);

    // The recursive loop body, shared by the serial and parallel blocks
    // (they differ only in their prppt handler's abort target).
    let loop_body = |l_self: crate::isa::Label| {
        vec![
            mov(rf, rn),
            op(rt, BinOp::Lt, rn, 2),
            if_jump(rt, l_retk),
            mov(rf, 0),
            Instr::SAlloc { sp: rsp, n: 3 },
            store(rsp, 0, l_branch1),
            op(rt, BinOp::Sub, rn, 2),
            Instr::PrmPush { addr: mem(rsp, 1) },
            store(rsp, 2, rt),
            op(rn, BinOp::Sub, rn, 1),
            jump(l_self),
        ]
    };

    // loop: [prppt loop_try_promote]
    b.annotated_block(
        "loop",
        Annotation::PromotionReady { handler: l_try },
        loop_body(l_loop),
    );

    // loop_par: [prppt loop_par_try_promote] — identical body.
    b.annotated_block(
        "loop_par",
        Annotation::PromotionReady { handler: l_par_try },
        loop_body(l_par),
    );

    // retk: [jtppt assoc-comm; {f ↦ f2}; comb]  t := mem[sp+0]; jump t
    b.annotated_block(
        "retk",
        Annotation::JoinTarget {
            policy: JoinPolicy::AssocComm,
            merge: RegMap::new().with(rf, rf2),
            comb: l_comb,
        },
        vec![load(rt, rsp, 0), jump(rt)],
    );

    // branch1: first recursive result in f; start second branch.
    b.block(
        "branch1",
        vec![
            store(rsp, 0, l_branch2),
            Instr::PrmPop { addr: mem(rsp, 1) },
            load(rn, rsp, 2),
            store(rsp, 2, rf),
            jump(l_loop),
        ],
    );

    // branch2: combine the two branch results and pop the frame.
    b.block(
        "branch2",
        vec![
            load(rt, rsp, 2),
            op(rf, BinOp::Add, rf, rt),
            Instr::SFree { sp: rsp, n: 3 },
            jump(l_retk),
        ],
    );

    // Handlers: try to promote the oldest latent call.
    let handler = |abort: crate::isa::Label| {
        vec![
            Instr::PrmEmpty { dst: rt, sp: rsp },
            if_jump(rt, abort), // no marks (0 = empty = true) → back to work
            jump(l_promote),
        ]
    };
    b.block("loop_try_promote", handler(l_loop));
    b.block("loop_par_try_promote", handler(l_par));

    // loop_promote: reify the oldest latent call as a child task.
    //
    // The promoted frame [cont, mark, n-2] becomes [joink, jr, n-2→f-slot]:
    // its continuation is retargeted at joink and the record is saved in
    // the dead mark cell so joink can reload it after later promotions
    // clobber the jr register (deviation 2 in the module docs).
    b.block(
        "loop_promote",
        vec![
            jralloc(rjr, l_retk),
            Instr::PrmSplit { sp: rsp, dst: rtop },
            op(rsp_top, BinOp::Add, rsp, Operand::Reg(rtop)),
            op(rsp_top, BinOp::Sub, rsp_top, 1),
            store(rsp_top, 0, l_joink),
            store(rsp_top, 1, rjr),
            mov(rtn, rn),
            load(rn, rsp_top, 2),
            mov(rtsp, rsp),
            Instr::SNew { dst: rsp },
            Instr::SAlloc { sp: rsp, n: 2 },
            store(rsp, 0, l_joink),
            store(rsp, 1, rjr),
            fork(rjr, l_par),
            mov(rsp, rtsp),
            mov(rn, rtn),
            jump(l_par),
        ],
    );

    // comb: f := f + f2; join jr
    b.block("comb", vec![op(rf, BinOp::Add, rf, rf2), join(rjr)]);

    // joink: reached by the pop-walk at a promoted frame (sp points at the
    // frame's continuation cell) or by a child at the base of its fresh
    // stack; reload the record and pop past the frame.
    b.block(
        "joink",
        vec![load(rjr, rsp, 1), op(rsp, BinOp::Add, rsp, 3), join(rjr)],
    );

    let _ = l_fib;
    b.build().expect("fib is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig, SchedulePolicy};

    fn run_prod(a: i64, b: i64, heartbeat: u64) -> (i64, crate::machine::ExecStats) {
        let p = prod();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(heartbeat));
        m.set_reg("a", a).unwrap();
        m.set_reg("b", b).unwrap();
        let out = m.run().unwrap();
        (out.read_reg("c").expect("c set"), out.stats)
    }

    #[test]
    fn prod_serial_no_promotion() {
        let (c, stats) = run_prod(6, 7, u64::MAX);
        assert_eq!(c, 42);
        assert_eq!(stats.forks, 0);
        assert_eq!(stats.promotions, 0);
    }

    #[test]
    fn prod_with_heartbeat_promotes_and_is_correct() {
        let (c, stats) = run_prod(1000, 3, 16);
        assert_eq!(c, 3000);
        assert!(stats.forks > 0, "expected promotions, got {stats:?}");
        // Every fork's pair fills one node (a merge), every leaf task and
        // every comb task joins once, and the root join closes the record:
        // f+1 leaf joins + f comb joins = 2f+1 join instructions.
        assert_eq!(stats.merges, stats.forks);
        assert_eq!(stats.joins, 2 * stats.forks + 1);
    }

    #[test]
    fn prod_result_independent_of_heartbeat() {
        for hb in [4, 8, 32, 128, 1024, u64::MAX] {
            let (c, _) = run_prod(237, 11, hb);
            assert_eq!(c, 237 * 11, "heartbeat {hb}");
        }
    }

    #[test]
    fn prod_zero_iterations() {
        let (c, _) = run_prod(0, 9, 4);
        assert_eq!(c, 0);
    }

    #[test]
    fn prod_under_all_schedules() {
        let p = prod();
        for policy in [
            SchedulePolicy::ParentFirst,
            SchedulePolicy::ChildFirst,
            SchedulePolicy::RoundRobin { quantum: 3 },
            SchedulePolicy::Random {
                seed: 42,
                quantum: 5,
            },
        ] {
            let mut m = Machine::new(
                &p,
                MachineConfig::default()
                    .with_heartbeat(10)
                    .with_policy(policy),
            );
            m.set_reg("a", 500).unwrap();
            m.set_reg("b", 2).unwrap();
            assert_eq!(m.run().unwrap().read_reg("c"), Some(1000), "{policy:?}");
        }
    }

    fn run_pow(d: i64, e: i64, heartbeat: u64) -> i64 {
        let p = pow();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(heartbeat));
        m.set_reg("d", d).unwrap();
        m.set_reg("e", e).unwrap();
        m.run().unwrap().read_reg("f").expect("f set")
    }

    #[test]
    fn pow_serial() {
        assert_eq!(run_pow(3, 4, u64::MAX), 81);
        assert_eq!(run_pow(2, 0, u64::MAX), 1);
        assert_eq!(run_pow(7, 1, u64::MAX), 7);
    }

    #[test]
    fn pow_heartbeat_promotes_nested() {
        let p = pow();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(20));
        m.set_reg("d", 2).unwrap();
        m.set_reg("e", 20).unwrap();
        let out = m.run().unwrap();
        assert_eq!(out.read_reg("f"), Some(1 << 20));
        assert!(out.stats.forks > 0);
    }

    #[test]
    fn pow_result_independent_of_heartbeat_and_schedule() {
        let p = pow();
        for hb in [20, 64, 333] {
            for seed in [1, 2, 3] {
                let mut m = Machine::new(
                    &p,
                    MachineConfig::default()
                        .with_heartbeat(hb)
                        .with_policy(SchedulePolicy::Random { seed, quantum: 7 }),
                );
                m.set_reg("d", 3).unwrap();
                m.set_reg("e", 9).unwrap();
                assert_eq!(
                    m.run().unwrap().read_reg("f"),
                    Some(19683),
                    "hb={hb} seed={seed}"
                );
            }
        }
    }

    fn fib_ref(n: u64) -> i64 {
        let (mut a, mut b) = (0i64, 1i64);
        for _ in 0..n {
            let t = a + b;
            a = b;
            b = t;
        }
        a
    }

    fn run_fib(n: i64, heartbeat: u64) -> (i64, crate::machine::ExecStats) {
        let p = fib();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(heartbeat));
        m.set_reg("n", n).unwrap();
        let out = m.run().unwrap();
        (out.read_reg("f").expect("f set"), out.stats)
    }

    #[test]
    fn fib_serial() {
        for n in 0..15 {
            let (f, stats) = run_fib(n, u64::MAX);
            assert_eq!(f, fib_ref(n as u64), "fib({n})");
            assert_eq!(stats.forks, 0);
        }
    }

    #[test]
    fn fib_heartbeat_promotes_recursion() {
        let (f, stats) = run_fib(18, 25);
        assert_eq!(f, fib_ref(18));
        assert!(stats.forks > 0, "expected promotions: {stats:?}");
        assert!(stats.promotions >= stats.forks);
    }

    #[test]
    fn fib_result_independent_of_heartbeat_and_schedule() {
        let p = fib();
        for hb in [10, 33, 100] {
            for policy in [
                SchedulePolicy::ParentFirst,
                SchedulePolicy::ChildFirst,
                SchedulePolicy::Random {
                    seed: 7,
                    quantum: 4,
                },
            ] {
                let mut m = Machine::new(
                    &p,
                    MachineConfig::default()
                        .with_heartbeat(hb)
                        .with_policy(policy),
                );
                m.set_reg("n", 14).unwrap();
                assert_eq!(
                    m.run().unwrap().read_reg("f"),
                    Some(fib_ref(14)),
                    "hb={hb} {policy:?}"
                );
            }
        }
    }

    /// The worked example of Appendix D: prod with a = 3, b = 4 under
    /// ♥ = 4 promotes exactly once (the handler fires at the first loop
    /// entry past the threshold, splits m = 1 to the child and m + n = 2
    /// to the parent) and produces c = 12.
    #[test]
    fn appendix_d_trace() {
        let p = prod();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(4));
        m.set_reg("a", 3).unwrap();
        m.set_reg("b", 4).unwrap();
        let out = m.run().unwrap();
        assert_eq!(out.read_reg("c"), Some(12));
        assert_eq!(out.stats.forks, 1, "{:?}", out.stats);
        assert_eq!(out.stats.merges, 1);
        assert_eq!(out.stats.joins, 3);
    }

    #[test]
    fn heartbeat_controls_task_count() {
        // Smaller ♥ ⇒ at least as many promotions (amortisation argument).
        let (_, fast) = run_prod(4000, 1, 16);
        let (_, slow) = run_prod(4000, 1, 256);
        assert!(
            fast.forks > slow.forks,
            "expected more tasks at smaller ♥: {} vs {}",
            fast.forks,
            slow.forks
        );
    }

    #[test]
    fn work_span_accounting_is_consistent() {
        let p = prod();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(16).with_tau(10));
        m.set_reg("a", 2000).unwrap();
        m.set_reg("b", 1).unwrap();
        let out = m.run().unwrap();
        // Work equals instructions plus τ per merge.
        assert_eq!(out.work, out.stats.instructions + 10 * out.stats.merges);
        // Span never exceeds work; with real forks it is strictly smaller.
        assert!(out.span <= out.work);
        if out.stats.forks > 0 {
            assert!(out.span < out.work);
            assert!(out.parallelism() > 1.0);
        }
    }
}
