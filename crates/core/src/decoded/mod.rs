//! Pre-decoded micro-op streams: a decode-once, execute-many
//! representation of a validated [`Program`].
//!
//! The [`Instr`] interpreter in [`crate::machine::step`] re-matches the
//! nested instruction enum, re-resolves every [`crate::isa::Operand`],
//! and re-fetches the current block's instruction slice on every step.
//! [`DecodedProgram::decode`] pays those costs once, flattening the
//! program into one contiguous array of micro-ops ([`UOp`]s) with:
//!
//! * **pre-resolved operands** — register indices and inlined immediate
//!   [`Value`]s, so execution never matches on `Operand`;
//! * **absolute jump targets** — static `jump`/`if-jump` labels become
//!   indices into the micro-op array, so taken branches are a single
//!   assignment (indirect jumps through registers still resolve via a
//!   label → entry side table);
//! * **hoisted per-block metadata** — promotion-ready entry flags,
//!   handler targets, and unit cost weights live in side tables indexed
//!   by program counter or block, off the hot path;
//! * **superinstruction fusion** — the hot shapes the lowering pass
//!   emits collapse into single micro-ops: compare + `if-jump`
//!   ([`CmpBranch`]), the whole 3-instruction loop-head block
//!   ([`CmpBranchBranch`]), the add/sub-immediate + compare + branch
//!   back-edge triple ([`StepCmpBranch`]), and op + `jump` loop tails
//!   ([`OpJump`]).
//!
//! [`DecodedProgram::run_until`] then executes micro-ops with the exact
//! observable semantics of [`crate::machine::run_task_until`]: same
//! pause priority (quantum, then promotion watch, then boundary), same
//! step counting (a fused micro-op counts one step per constituent
//! instruction, and a quantum may split it mid-way), same faults with
//! the same partially-advanced task position, and same batched cycle /
//! work / span / cost accounting. The `Instr` interpreter remains the
//! reference semantics; the differential suites in `tpal-sim` and the
//! `decoded_prop` property test hold the two bit-identical.
//!
//! Decoding happens strictly *after* validation and is invisible to the
//! assembler: `asm` prints from [`Instr`], so a parse → print round
//! trip never observes fusion.
//!
//! [`CmpBranch`]: UOp::CmpBranch
//! [`CmpBranchBranch`]: UOp::CmpBranchBranch
//! [`StepCmpBranch`]: UOp::StepCmpBranch
//! [`OpJump`]: UOp::OpJump

use crate::isa::{BinOp, Instr, Label, Operand, Reg};
use crate::machine::heap::Heap;
use crate::machine::stack::StackRef;
use crate::machine::step::{eval_binop, exec_plain, RunPause, Stores, TaskState};
use crate::machine::{MachineError, Value};
use crate::program::Program;

/// Funnels a fault off the hot dispatch path: the optimizer moves every
/// `return Err(cold_fault(..))` out of line, keeping the fall-through
/// dispatch code dense (faults are exceptional by construction — a
/// faulting program terminates).
#[cold]
#[inline(never)]
pub(crate) fn cold_fault(e: MachineError) -> MachineError {
    e
}

/// Reads a register from the borrowed register slice (the dispatch loop
/// borrows the file once, keeping its pointer and length in machine
/// registers across stack and heap stores).
#[inline(always)]
pub(crate) fn rread(regs: &[Value], r: Reg) -> Result<Value, MachineError> {
    match regs[r.index()] {
        Value::Uninit => Err(MachineError::UninitRegister { reg: r }),
        v => Ok(v),
    }
}

/// Reads a stack pointer from the borrowed register slice.
#[inline(always)]
pub(crate) fn rstack(regs: &[Value], r: Reg) -> Result<StackRef, MachineError> {
    rread(regs, r)?.as_stack()
}

/// Sentinel in the `pc_of` table: this source instruction is in the
/// interior of a fused micro-op (not a dispatch point).
pub(crate) const MID: u32 = u32::MAX;

/// An operand with its immediate pre-resolved (kept as the raw payload
/// rather than a [`Value`] so the enum stays 16 bytes; the `Value` is
/// rebuilt for free in a register at evaluation time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// Read a register at runtime.
    Reg(Reg),
    /// An inlined integer immediate.
    Int(i64),
    /// An inlined label literal.
    Label(Label),
}

impl Src {
    #[inline(always)]
    pub(crate) fn eval(self, regs: &[Value]) -> Result<Value, MachineError> {
        match self {
            Src::Reg(r) => rread(regs, r),
            Src::Int(n) => Ok(Value::Int(n)),
            Src::Label(l) => Ok(Value::Label(l)),
        }
    }

    fn of(op: Operand) -> Src {
        match op {
            Operand::Reg(r) => Src::Reg(r),
            Operand::Label(l) => Src::Label(l),
            Operand::Int(n) => Src::Int(n),
        }
    }
}

/// An integer-typed operand (heap offsets and stored words), with the
/// type error for a label literal pre-computed at decode time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IntSrc {
    /// Read a register, then require an integer.
    Reg(Reg),
    /// An inlined integer immediate.
    Imm(i64),
    /// A non-integer literal: faults with this kind when executed.
    Bad(&'static str),
}

impl IntSrc {
    #[inline(always)]
    pub(crate) fn eval(self, regs: &[Value]) -> Result<i64, MachineError> {
        match self {
            IntSrc::Reg(r) => rread(regs, r)?.as_int(),
            IntSrc::Imm(n) => Ok(n),
            IntSrc::Bad(got) => Err(MachineError::TypeError {
                expected: "int",
                got,
            }),
        }
    }

    fn of(op: Operand) -> IntSrc {
        match op {
            Operand::Reg(r) => IntSrc::Reg(r),
            Operand::Int(n) => IntSrc::Imm(n),
            Operand::Label(_) => IntSrc::Bad("label"),
        }
    }
}

/// [`eval_binop`] with the operators the fused branch shapes almost
/// always carry (int compare, int add/sub step) peeled into straight
/// compares, so the fused arms skip the full operator table on the hot
/// path. Falls back to [`eval_binop`] for everything else — semantics
/// (including faults) are unchanged.
#[inline(always)]
pub(crate) fn eval_binop_fast(op: BinOp, l: Value, r: Value) -> Result<Value, MachineError> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        match op {
            BinOp::Lt => return Ok(Value::Int(if a < b { 0 } else { 1 })),
            BinOp::Add => return Ok(Value::Int(a.wrapping_add(b))),
            BinOp::Sub => return Ok(Value::Int(a.wrapping_sub(b))),
            _ => {}
        }
    }
    eval_binop(op, l, r)
}

/// A micro-op: a pre-resolved plain instruction, a fused run of them, or
/// a boundary marker.
///
/// `taken` / `target` / `fallthrough` fields are absolute indices into
/// the micro-op array. Micro-ops are laid out block-major in source
/// order, so "fall through" is always `pc + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UOp {
    /// `r := v`.
    Mov { dst: Reg, src: Src },
    /// `r := r' op v`.
    Op {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Src,
    },
    /// `r := r' + v` — the hottest ops get their own variants so the
    /// operator is dispatched by the micro-op tag (one indirect branch)
    /// instead of a second `BinOp` match inside the arm. Non-int
    /// operands (stack-pointer arithmetic) fall back to
    /// [`eval_binop`], so semantics are unchanged.
    OpAdd { dst: Reg, lhs: Reg, rhs: Src },
    /// `r := r' - v` (specialised; see [`UOp::OpAdd`]).
    OpSub { dst: Reg, lhs: Reg, rhs: Src },
    /// `r := r' * v` (specialised; see [`UOp::OpAdd`]).
    OpMul { dst: Reg, lhs: Reg, rhs: Src },
    /// `r := r' < v` (specialised; see [`UOp::OpAdd`]).
    OpLt { dst: Reg, lhs: Reg, rhs: Src },
    /// `r := r' <= v` (specialised; see [`UOp::OpAdd`]).
    OpLe { dst: Reg, lhs: Reg, rhs: Src },
    /// `jump l` with a static label.
    Jump { target: u32 },
    /// `jump r` through a register.
    JumpReg { reg: Reg },
    /// `jump v` on a non-label literal: always faults.
    JumpBad { got: &'static str },
    /// `if-jump r, l` with a static label.
    IfJump { cond: Reg, target: u32 },
    /// `if-jump r, r'` through a register.
    IfJumpReg { cond: Reg, reg: Reg },
    /// `if-jump r, v` on a non-label literal: faults only when taken.
    IfJumpBad { cond: Reg, got: &'static str },
    /// `salloc r, n`.
    SAlloc { sp: Reg, n: u32 },
    /// `sfree r, n`.
    SFree { sp: Reg, n: u32 },
    /// `r := mem[base + n]`.
    Load { dst: Reg, base: Reg, offset: u32 },
    /// `mem[base + n] := v`.
    Store { base: Reg, offset: u32, src: Src },
    /// `prmpush mem[base + n]`.
    PrmPush { base: Reg, offset: u32 },
    /// `prmpop mem[base + n]`.
    PrmPop { base: Reg, offset: u32 },
    /// `r := prmempty r'`.
    PrmEmpty { dst: Reg, sp: Reg },
    /// `prmsplit r, r'`.
    PrmSplit { sp: Reg, dst: Reg },
    /// `r := heap[base + offset]`.
    HLoad { dst: Reg, base: Reg, offset: IntSrc },
    /// `heap[base + offset] := v`.
    HStore {
        base: Reg,
        offset: IntSrc,
        src: IntSrc,
    },
    /// Fused `r := r' op v; if-jump r, l` (2 steps). Taken goes to
    /// `taken`; not-taken falls through to `pc + 1`.
    CmpBranch {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Src,
        taken: u32,
    },
    /// Fused whole loop-head block
    /// `r := r' op v; if-jump r, l1; jump l2` (2 steps when the branch
    /// is taken, 3 when control exits through the jump).
    CmpBranchBranch {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Src,
        taken: u32,
        fallthrough: u32,
    },
    /// Fused loop tail `r := r' op v; jump l` (2 steps).
    OpJump {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Src,
        target: u32,
    },
    /// A `prppt` block entry in the watch-mode stream: pauses with
    /// [`RunPause::PromotionReady`] before executing anything. The plain
    /// stream keeps the real micro-op at this index, so non-watch runs
    /// pay nothing for the promotion watch.
    PrpptPause,
    /// Fused back-edge triple
    /// `i := i ± imm; r := r' op v; if-jump r, l` (3 steps).
    StepCmpBranch {
        step_dst: Reg,
        step_op: BinOp,
        step_lhs: Reg,
        step_imm: i64,
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Src,
        taken: u32,
    },
    /// `halt`, `fork`, `join`, `jralloc`, `snew`, or `halloc`: a
    /// scheduling or allocation boundary, never executed here — the
    /// caller runs it with [`crate::machine::step_task`].
    Boundary,
}

/// The source provenance of one micro-op: the block and the contiguous
/// instruction range `[instr, instr + len)` it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UopSource {
    /// Block label index.
    pub block: u32,
    /// First covered instruction index within the block.
    pub instr: u32,
    /// Number of source instructions covered (1 unless fused).
    pub len: u32,
}

/// A [`Program`] compiled to a flat micro-op array plus side tables.
///
/// Owns no reference to the source program: decode once, share across
/// cores and tasks. Construction is deterministic — the same program
/// always decodes to the same micro-ops in the same order.
#[derive(Debug, Clone)]
pub struct DecodedProgram {
    /// The micro-op stream, block-major in label order.
    pub(crate) uops: Vec<UOp>,
    /// The watch-mode stream: identical to `uops` except every `prppt`
    /// block entry is a [`UOp::PrpptPause`], so watch-mode dispatch
    /// needs no per-op flag check.
    pub(crate) watch_uops: Vec<UOp>,
    /// Provenance of each micro-op (parallel to `uops`).
    pub(crate) src: Vec<UopSource>,
    /// `prppt` entry flag per micro-op: true iff this micro-op starts a
    /// promotion-ready block (parallel to `uops`; decode-time input to
    /// `watch_uops`, kept for introspection and tests).
    pub(crate) prppt_entry: Vec<bool>,
    /// Every instruction of the program, block-major (the stepwise
    /// fallback executes from here when a quantum splits a fused op).
    pub(crate) flat: Vec<Instr>,
    /// Per block (label index): base of its instructions in `flat`.
    pub(crate) instr_base: Vec<u32>,
    /// Per block: micro-op index of its entry.
    pub(crate) block_entry: Vec<u32>,
    /// Per flat instruction index: the micro-op starting there, or
    /// [`MID`] if it is interior to a fused micro-op.
    pub(crate) pc_of: Vec<u32>,
    /// Per block: the `prppt` handler label, if any (hoisted from
    /// [`crate::isa::Annotation`]).
    pub(crate) handlers: Vec<Option<Label>>,
    /// Per block: unit cost weight (its instruction count — every
    /// instruction weighs 1 in the cost semantics).
    pub(crate) weights: Vec<u32>,
}

/// Length of the fused run starting at `i` in a block's instruction
/// slice (1 when nothing fuses). Fusion requires static label targets
/// and, for branches, a condition register equal to the preceding op's
/// destination; runs never cross a boundary instruction.
///
/// Only branch shapes fuse. Pairing adjacent control-free instructions
/// was tried and measured slower on every workload: the generic pair
/// needs an inner constituent dispatch that costs as much as the outer
/// dispatch it saves, and carrying two instructions inline bloats the
/// micro-op stride (112 bytes vs 56) enough to hurt the fetch path.
fn fusion_len(instrs: &[Instr], i: usize) -> usize {
    let Instr::Op { dst, op, rhs, .. } = instrs[i] else {
        return 1;
    };
    // Back-edge triple: add/sub-immediate, then compare, then branch.
    if matches!(op, BinOp::Add | BinOp::Sub) && matches!(rhs, Operand::Int(_)) {
        if let (
            Some(Instr::Op { dst: d2, .. }),
            Some(Instr::IfJump {
                cond,
                target: Operand::Label(_),
            }),
        ) = (instrs.get(i + 1), instrs.get(i + 2))
        {
            if cond == d2 {
                return 3;
            }
        }
    }
    match (instrs.get(i + 1), instrs.get(i + 2)) {
        (
            Some(Instr::IfJump {
                cond,
                target: Operand::Label(_),
            }),
            Some(Instr::Jump {
                target: Operand::Label(_),
            }),
        ) if *cond == dst => 3,
        (
            Some(Instr::IfJump {
                cond,
                target: Operand::Label(_),
            }),
            _,
        ) if *cond == dst => 2,
        (
            Some(Instr::Jump {
                target: Operand::Label(_),
            }),
            _,
        ) => 2,
        _ => 1,
    }
}

impl DecodedProgram {
    /// Compiles a validated program into its micro-op form.
    pub fn decode(program: &Program) -> DecodedProgram {
        let nblocks = program.block_count();

        // Pass 1: segment every block into fused runs so entry indices
        // of *later* blocks are known before targets are resolved.
        let mut segments: Vec<(u32, u32, u32)> = Vec::new(); // (block, instr, len)
        let mut block_entry = Vec::with_capacity(nblocks);
        let mut instr_base = Vec::with_capacity(nblocks);
        let mut flat = Vec::with_capacity(program.instr_count());
        for (label, block) in program.iter() {
            block_entry.push(segments.len() as u32);
            instr_base.push(flat.len() as u32);
            flat.extend_from_slice(&block.instrs);
            let mut i = 0;
            while i < block.instrs.len() {
                let len = fusion_len(&block.instrs, i);
                segments.push((label.index() as u32, i as u32, len as u32));
                i += len;
            }
        }

        // Pass 2: emit micro-ops with absolute targets.
        let entry_of = |l: Label| block_entry[l.index()];
        let mut uops = Vec::with_capacity(segments.len());
        let mut src = Vec::with_capacity(segments.len());
        let mut prppt_entry = Vec::with_capacity(segments.len());
        let mut pc_of = vec![MID; flat.len()];
        let handlers: Vec<Option<Label>> = program
            .blocks()
            .iter()
            .map(|b| b.annotation.handler())
            .collect();
        let weights: Vec<u32> = program
            .blocks()
            .iter()
            .map(|b| b.instrs.len() as u32)
            .collect();

        for &(block, instr, len) in &segments {
            let pc = uops.len() as u32;
            pc_of[(instr_base[block as usize] + instr) as usize] = pc;
            let instrs = &program.blocks()[block as usize].instrs;
            let i = instr as usize;
            let uop = match len {
                1 => Self::decode_single(instrs[i], entry_of),
                2 => match (instrs[i], instrs[i + 1]) {
                    (
                        Instr::Op { dst, op, lhs, rhs },
                        Instr::IfJump {
                            target: Operand::Label(l),
                            ..
                        },
                    ) => UOp::CmpBranch {
                        dst,
                        op,
                        lhs,
                        rhs: Src::of(rhs),
                        taken: entry_of(l),
                    },
                    (
                        Instr::Op { dst, op, lhs, rhs },
                        Instr::Jump {
                            target: Operand::Label(l),
                        },
                    ) => UOp::OpJump {
                        dst,
                        op,
                        lhs,
                        rhs: Src::of(rhs),
                        target: entry_of(l),
                    },
                    other => unreachable!("unfusable pair {other:?}"),
                },
                3 => match (instrs[i], instrs[i + 1], instrs[i + 2]) {
                    (
                        Instr::Op {
                            dst: step_dst,
                            op: step_op,
                            lhs: step_lhs,
                            rhs: Operand::Int(step_imm),
                        },
                        Instr::Op { dst, op, lhs, rhs },
                        Instr::IfJump {
                            target: Operand::Label(l),
                            ..
                        },
                    ) => UOp::StepCmpBranch {
                        step_dst,
                        step_op,
                        step_lhs,
                        step_imm,
                        dst,
                        op,
                        lhs,
                        rhs: Src::of(rhs),
                        taken: entry_of(l),
                    },
                    (
                        Instr::Op { dst, op, lhs, rhs },
                        Instr::IfJump {
                            target: Operand::Label(t),
                            ..
                        },
                        Instr::Jump {
                            target: Operand::Label(f),
                        },
                    ) => UOp::CmpBranchBranch {
                        dst,
                        op,
                        lhs,
                        rhs: Src::of(rhs),
                        taken: entry_of(t),
                        fallthrough: entry_of(f),
                    },
                    other => unreachable!("unfusable triple {other:?}"),
                },
                n => unreachable!("fusion length {n}"),
            };
            uops.push(uop);
            src.push(UopSource { block, instr, len });
            prppt_entry.push(instr == 0 && handlers[block as usize].is_some());
        }

        let mut watch_uops = uops.clone();
        for (pc, &entry) in prppt_entry.iter().enumerate() {
            if entry {
                watch_uops[pc] = UOp::PrpptPause;
            }
        }

        DecodedProgram {
            uops,
            watch_uops,
            src,
            prppt_entry,
            flat,
            instr_base,
            block_entry,
            pc_of,
            handlers,
            weights,
        }
    }

    fn decode_single(instr: Instr, entry_of: impl Fn(Label) -> u32) -> UOp {
        match instr {
            Instr::Move { dst, src } => UOp::Mov {
                dst,
                src: Src::of(src),
            },
            Instr::Op { dst, op, lhs, rhs } => {
                let rhs = Src::of(rhs);
                match op {
                    BinOp::Add => UOp::OpAdd { dst, lhs, rhs },
                    BinOp::Sub => UOp::OpSub { dst, lhs, rhs },
                    BinOp::Mul => UOp::OpMul { dst, lhs, rhs },
                    BinOp::Lt => UOp::OpLt { dst, lhs, rhs },
                    BinOp::Le => UOp::OpLe { dst, lhs, rhs },
                    _ => UOp::Op { dst, op, lhs, rhs },
                }
            }
            Instr::Jump { target } => match target {
                Operand::Label(l) => UOp::Jump {
                    target: entry_of(l),
                },
                Operand::Reg(r) => UOp::JumpReg { reg: r },
                Operand::Int(_) => UOp::JumpBad { got: "int" },
            },
            Instr::IfJump { cond, target } => match target {
                Operand::Label(l) => UOp::IfJump {
                    cond,
                    target: entry_of(l),
                },
                Operand::Reg(r) => UOp::IfJumpReg { cond, reg: r },
                Operand::Int(_) => UOp::IfJumpBad { cond, got: "int" },
            },
            Instr::SAlloc { sp, n } => UOp::SAlloc { sp, n },
            Instr::SFree { sp, n } => UOp::SFree { sp, n },
            Instr::Load { dst, addr } => UOp::Load {
                dst,
                base: addr.base,
                offset: addr.offset,
            },
            Instr::Store { addr, src } => UOp::Store {
                base: addr.base,
                offset: addr.offset,
                src: Src::of(src),
            },
            Instr::PrmPush { addr } => UOp::PrmPush {
                base: addr.base,
                offset: addr.offset,
            },
            Instr::PrmPop { addr } => UOp::PrmPop {
                base: addr.base,
                offset: addr.offset,
            },
            Instr::PrmEmpty { dst, sp } => UOp::PrmEmpty { dst, sp },
            Instr::PrmSplit { sp, dst } => UOp::PrmSplit { sp, dst },
            Instr::HLoad { dst, base, offset } => UOp::HLoad {
                dst,
                base,
                offset: IntSrc::of(offset),
            },
            Instr::HStore { base, offset, src } => UOp::HStore {
                base,
                offset: IntSrc::of(offset),
                src: IntSrc::of(src),
            },
            Instr::Halt
            | Instr::Fork { .. }
            | Instr::Join { .. }
            | Instr::JrAlloc { .. }
            | Instr::SNew { .. }
            | Instr::HAlloc { .. } => UOp::Boundary,
        }
    }

    /// Number of micro-ops.
    pub fn uop_count(&self) -> usize {
        self.uops.len()
    }

    /// Source provenance of micro-op `pc`: the block and instruction
    /// range it covers. Timeline spans and cost attribution stay exact
    /// because every micro-op maps back to a contiguous source range and
    /// counts one step per covered instruction.
    pub fn source(&self, pc: usize) -> UopSource {
        self.src[pc]
    }

    /// Whether micro-op `pc` is the entry of a promotion-ready block
    /// (the positions the watch-mode stream pauses at).
    pub fn is_prppt_entry(&self, pc: usize) -> bool {
        self.prppt_entry[pc]
    }

    /// The hoisted `prppt` handler of a block, if any.
    pub fn handler(&self, block: Label) -> Option<Label> {
        self.handlers[block.index()]
    }

    /// The unit cost weight of a block (its instruction count).
    pub fn block_weight(&self, block: Label) -> u32 {
        self.weights[block.index()]
    }

    /// Writes `task.block`/`task.instr` to the entry of micro-op `pc`.
    #[inline]
    fn sync(&self, task: &mut TaskState, pc: usize) {
        let s = self.src[pc];
        task.block = Label::from_index(s.block as usize);
        task.instr = s.instr as usize;
    }

    /// The flat instruction index of the task's current position.
    #[inline]
    fn flat_index(&self, task: &TaskState) -> usize {
        self.instr_base[task.block.index()] as usize + task.instr
    }

    /// Executes a run of consecutive plain instructions of `task` from
    /// the micro-op stream, stopping early at scheduling-relevant
    /// points.
    ///
    /// Observably identical to [`crate::machine::run_task_until`] on the
    /// source program — same `(steps, pause)` results, same priority
    /// order (quantum, then promotion watch, then boundary), same faults
    /// at the same task positions, and the same batched counter updates.
    /// A quantum that lands inside a fused micro-op is honoured exactly:
    /// the remaining budget is executed one source instruction at a
    /// time, and a later resume realigns on the next micro-op boundary
    /// the same way.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a transition rule; counters
    /// include the faulting instruction, matching the reference.
    pub fn run_until(
        &self,
        task: &mut TaskState,
        stores: &mut Stores,
        max_steps: u64,
        watch_promotion: bool,
    ) -> Result<(u64, RunPause), MachineError> {
        let mut steps = 0u64;
        let result = if watch_promotion {
            self.run_loop::<true>(task, stores, max_steps, &mut steps)
        } else {
            self.run_loop::<false>(task, stores, max_steps, &mut steps)
        };
        task.cycles += steps;
        task.rel_work += steps;
        task.rel_span += steps;
        if let Some(c) = &mut task.cost {
            c.steps += steps;
        }
        result.map(|pause| (steps, pause))
    }

    fn run_loop<const WATCH: bool>(
        &self,
        task: &mut TaskState,
        stores: &mut Stores,
        max_steps: u64,
        steps: &mut u64,
    ) -> Result<RunPause, MachineError> {
        // Watch mode runs the alternate stream whose prppt entries are
        // `PrpptPause` micro-ops; everything else is identical, so the
        // hot loop itself is watch-agnostic.
        let uops = if WATCH {
            self.watch_uops.as_slice()
        } else {
            self.uops.as_slice()
        };
        loop {
            // Stepwise phase: the task position is authoritative. Runs
            // one source instruction at a time while the position is
            // interior to a fused micro-op (a resume after a mid-fusion
            // quantum split) and hands off to the dispatch loop at the
            // first micro-op boundary.
            let mut pc: usize = loop {
                if *steps >= max_steps {
                    return Ok(RunPause::Quantum);
                }
                let gi = self.flat_index(task);
                let p = self.pc_of[gi];
                if p != MID {
                    break p as usize;
                }
                // Interior positions are never block entries, so no
                // promotion check applies here.
                match exec_plain(task, stores, &self.flat[gi]) {
                    Ok(true) => *steps += 1,
                    Ok(false) => return Ok(RunPause::Boundary),
                    Err(e) => {
                        *steps += 1;
                        return Err(cold_fault(e));
                    }
                }
            };

            // Dispatch phase: `pc` is authoritative; the task position
            // is synced only on exit or fault. The budget counts *down*
            // in `remaining` so the hot loop carries a single live
            // counter; the logical step count is reconstructed as
            // `max_steps - remaining` at every exit. The match below is
            // the whole executor — no per-op calls, no per-op side-table
            // loads (fused lengths are constants in their own arms).
            let mut remaining = max_steps - *steps;
            // Borrow the three working sets once per dispatch run:
            // register file, stacks, and heap words. Keeping them as
            // local slices lets the compiler hold their pointers and
            // lengths in machine registers across stores (nothing here
            // can reallocate them: `halloc` and `snew` are boundaries,
            // and the register file never resizes).
            let regs = task.regs.slice_mut();
            let stacks = &mut stores.stacks;
            let hwords = stores.heap.words_mut();

            // Fault exit: sync the position exactly as the reference
            // leaves it — advanced past the faulting constituent
            // (faults never follow an intra-op control transfer, so the
            // block is unchanged). `$parts` counts constituents
            // executed, the faulting one included; `remaining` has not
            // been decremented for this micro-op yet.
            macro_rules! fault {
                ($parts:expr, $e:expr) => {{
                    let s = self.src[pc];
                    task.block = Label::from_index(s.block as usize);
                    task.instr = (s.instr + $parts) as usize;
                    *steps = max_steps - remaining + $parts as u64;
                    return Err(cold_fault($e));
                }};
            }
            macro_rules! part {
                ($parts:expr, $e:expr) => {
                    match $e {
                        Ok(v) => v,
                        Err(e) => fault!($parts, e),
                    }
                };
            }
            // A fused micro-op that may not fit in the remaining budget:
            // honour the quantum exactly by falling back to stepwise
            // execution of its constituents. The `break` exits the
            // dispatch loop and lands back on the stepwise phase above,
            // which finishes the budget one source instruction at a
            // time.
            macro_rules! split {
                () => {{
                    *steps = max_steps - remaining;
                    self.sync(task, pc);
                    let gi = self.flat_index(task);
                    match exec_plain(task, stores, &self.flat[gi]) {
                        Ok(true) => *steps += 1,
                        Ok(false) => return Ok(RunPause::Boundary),
                        Err(e) => {
                            *steps += 1;
                            return Err(cold_fault(e));
                        }
                    }
                    break;
                }};
            }
            loop {
                if remaining == 0 {
                    *steps = max_steps;
                    self.sync(task, pc);
                    return Ok(RunPause::Quantum);
                }
                let next = pc + 1;
                match uops[pc] {
                    UOp::Mov { dst, src } => {
                        let v = part!(1, src.eval(regs));
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::Op { dst, op, lhs, rhs } => {
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = part!(1, eval_binop(op, l, r));
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::OpAdd { dst, lhs, rhs } => {
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = match (l, r) {
                            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(b)),
                            _ => part!(1, eval_binop(BinOp::Add, l, r)),
                        };
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::OpSub { dst, lhs, rhs } => {
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = match (l, r) {
                            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(b)),
                            _ => part!(1, eval_binop(BinOp::Sub, l, r)),
                        };
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::OpMul { dst, lhs, rhs } => {
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = match (l, r) {
                            (Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(b)),
                            _ => part!(1, eval_binop(BinOp::Mul, l, r)),
                        };
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::OpLt { dst, lhs, rhs } => {
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = match (l, r) {
                            (Value::Int(a), Value::Int(b)) => Value::Int(if a < b { 0 } else { 1 }),
                            _ => part!(1, eval_binop(BinOp::Lt, l, r)),
                        };
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::OpLe { dst, lhs, rhs } => {
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = match (l, r) {
                            (Value::Int(a), Value::Int(b)) => {
                                Value::Int(if a <= b { 0 } else { 1 })
                            }
                            _ => part!(1, eval_binop(BinOp::Le, l, r)),
                        };
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::Jump { target } => {
                        remaining -= 1;
                        pc = target as usize;
                    }
                    UOp::JumpReg { reg } => {
                        let v = part!(1, rread(regs, reg));
                        match v {
                            Value::Label(l) => {
                                remaining -= 1;
                                pc = self.block_entry[l.index()] as usize;
                            }
                            other => {
                                fault!(1, MachineError::JumpToNonLabel { got: other.kind() })
                            }
                        }
                    }
                    UOp::JumpBad { got } => fault!(1, MachineError::JumpToNonLabel { got }),
                    UOp::IfJump { cond, target } => {
                        let c = part!(1, rread(regs, cond));
                        remaining -= 1;
                        pc = if c.is_true() { target as usize } else { next };
                    }
                    UOp::IfJumpReg { cond, reg } => {
                        let c = part!(1, rread(regs, cond));
                        if c.is_true() {
                            let v = part!(1, rread(regs, reg));
                            match v {
                                Value::Label(l) => {
                                    remaining -= 1;
                                    pc = self.block_entry[l.index()] as usize;
                                }
                                other => {
                                    fault!(1, MachineError::JumpToNonLabel { got: other.kind() })
                                }
                            }
                        } else {
                            remaining -= 1;
                            pc = next;
                        }
                    }
                    UOp::IfJumpBad { cond, got } => {
                        let c = part!(1, rread(regs, cond));
                        if c.is_true() {
                            fault!(1, MachineError::JumpToNonLabel { got });
                        }
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::SAlloc { sp, n } => {
                        let cur = part!(1, rstack(regs, sp));
                        let new = part!(1, stacks.salloc(cur, n));
                        regs[sp.index()] = Value::Stack(new);
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::SFree { sp, n } => {
                        let cur = part!(1, rstack(regs, sp));
                        let new = part!(1, stacks.sfree(cur, n));
                        regs[sp.index()] = Value::Stack(new);
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::Load { dst, base, offset } => {
                        let sp = part!(1, rstack(regs, base));
                        let v = part!(1, stacks.load(sp, offset));
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::Store { base, offset, src } => {
                        let sp = part!(1, rstack(regs, base));
                        let v = part!(1, src.eval(regs));
                        part!(1, stacks.store(sp, offset, v));
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::PrmPush { base, offset } => {
                        let sp = part!(1, rstack(regs, base));
                        part!(1, stacks.prmpush(sp, offset));
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::PrmPop { base, offset } => {
                        let sp = part!(1, rstack(regs, base));
                        part!(1, stacks.prmpop(sp, offset));
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::PrmEmpty { dst, sp } => {
                        let spv = part!(1, rstack(regs, sp));
                        let v = part!(1, stacks.prmempty(spv));
                        regs[dst.index()] = v;
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::PrmSplit { sp, dst } => {
                        let spv = part!(1, rstack(regs, sp));
                        let off = part!(1, stacks.prmsplit(spv));
                        regs[dst.index()] = Value::Int(off);
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::HLoad { dst, base, offset } => {
                        let b = part!(1, rread(regs, base).and_then(Value::as_int));
                        let off = part!(1, offset.eval(regs));
                        let v = part!(1, Heap::load_in(hwords, b, off));
                        regs[dst.index()] = Value::Int(v);
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::HStore { base, offset, src } => {
                        let b = part!(1, rread(regs, base).and_then(Value::as_int));
                        let off = part!(1, offset.eval(regs));
                        let v = part!(1, src.eval(regs));
                        part!(1, Heap::store_in(hwords, b, off, v));
                        remaining -= 1;
                        pc = next;
                    }
                    UOp::CmpBranch {
                        dst,
                        op,
                        lhs,
                        rhs,
                        taken,
                    } => {
                        if remaining < 2 {
                            split!();
                        }
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = part!(1, eval_binop_fast(op, l, r));
                        regs[dst.index()] = v;
                        remaining -= 2;
                        pc = if v.is_true() { taken as usize } else { next };
                    }
                    UOp::CmpBranchBranch {
                        dst,
                        op,
                        lhs,
                        rhs,
                        taken,
                        fallthrough,
                    } => {
                        if remaining < 3 {
                            split!();
                        }
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = part!(1, eval_binop_fast(op, l, r));
                        regs[dst.index()] = v;
                        if v.is_true() {
                            remaining -= 2;
                            pc = taken as usize;
                        } else {
                            remaining -= 3;
                            pc = fallthrough as usize;
                        }
                    }
                    UOp::OpJump {
                        dst,
                        op,
                        lhs,
                        rhs,
                        target,
                    } => {
                        if remaining < 2 {
                            split!();
                        }
                        let l = part!(1, rread(regs, lhs));
                        let r = part!(1, rhs.eval(regs));
                        let v = part!(1, eval_binop_fast(op, l, r));
                        regs[dst.index()] = v;
                        remaining -= 2;
                        pc = target as usize;
                    }
                    UOp::PrpptPause => {
                        // Only present in the watch stream; quantum
                        // priority is preserved by the `remaining == 0`
                        // check above.
                        *steps = max_steps - remaining;
                        self.sync(task, pc);
                        return Ok(RunPause::PromotionReady);
                    }
                    UOp::StepCmpBranch {
                        step_dst,
                        step_op,
                        step_lhs,
                        step_imm,
                        dst,
                        op,
                        lhs,
                        rhs,
                        taken,
                    } => {
                        if remaining < 3 {
                            split!();
                        }
                        let sl = part!(1, rread(regs, step_lhs));
                        let sv = part!(1, eval_binop_fast(step_op, sl, Value::Int(step_imm)));
                        regs[step_dst.index()] = sv;
                        let l = part!(2, rread(regs, lhs));
                        let r = part!(2, rhs.eval(regs));
                        let v = part!(2, eval_binop_fast(op, l, r));
                        regs[dst.index()] = v;
                        remaining -= 3;
                        pc = if v.is_true() { taken as usize } else { next };
                    }
                    UOp::Boundary => {
                        *steps = max_steps - remaining;
                        self.sync(task, pc);
                        return Ok(RunPause::Boundary);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::run_task_until;
    use crate::program::ProgramBuilder;
    use crate::programs::{fib, prod};

    /// Decoding the same program twice yields identical micro-ops,
    /// provenance, and side tables.
    #[test]
    fn decode_is_deterministic() {
        for p in [prod(), fib()] {
            let a = DecodedProgram::decode(&p);
            let b = DecodedProgram::decode(&p);
            assert_eq!(a.uops, b.uops);
            assert_eq!(a.watch_uops, b.watch_uops);
            assert_eq!(a.src, b.src);
            assert_eq!(a.pc_of, b.pc_of);
            assert_eq!(a.block_entry, b.block_entry);
            assert_eq!(a.prppt_entry, b.prppt_entry);
            assert_eq!(a.weights, b.weights);
        }
    }

    /// Every micro-op maps back to a contiguous source range, and the
    /// ranges of each block tile its instruction list exactly — the
    /// property that keeps timeline spans and cost attribution correct.
    #[test]
    fn sources_tile_blocks_exactly() {
        for p in [prod(), fib()] {
            let d = DecodedProgram::decode(&p);
            for (label, block) in p.iter() {
                let mut expected = 0u32;
                for pc in 0..d.uop_count() {
                    let s = d.source(pc);
                    if s.block as usize != label.index() {
                        continue;
                    }
                    assert_eq!(
                        s.instr,
                        expected,
                        "gap or overlap in {}",
                        p.label_name(label)
                    );
                    assert!(s.len >= 1);
                    expected += s.len;
                }
                assert_eq!(
                    expected as usize,
                    block.instrs.len(),
                    "block {} not fully covered",
                    p.label_name(label)
                );
            }
            // The hoisted cost weights agree with the tiling.
            let total: u32 = (0..p.block_count())
                .map(|i| d.block_weight(Label::from_index(i)))
                .sum();
            assert_eq!(total as usize, p.instr_count());
        }
    }

    /// `pc_of` marks exactly the first instruction of each micro-op.
    #[test]
    fn pc_of_marks_fusion_interiors() {
        let p = prod();
        let d = DecodedProgram::decode(&p);
        for pc in 0..d.uop_count() {
            let s = d.source(pc);
            let base = d.instr_base[s.block as usize];
            assert_eq!(d.pc_of[(base + s.instr) as usize], pc as u32);
            for k in 1..s.len {
                assert_eq!(d.pc_of[(base + s.instr + k) as usize], MID);
            }
        }
    }

    /// The lowered loop-head shape `op; if-jump; jump` fuses into one
    /// micro-op, and loop tails `op; jump` fuse too.
    #[test]
    fn hot_shapes_fuse() {
        use crate::isa::{Instr, Operand};
        let mut b = ProgramBuilder::new();
        let (i, t, acc) = (b.reg("i"), b.reg("t"), b.reg("acc"));
        let (head, body, exit) = (b.label("head"), b.label("body"), b.label("exit"));
        b.block(
            "head",
            vec![
                Instr::Op {
                    dst: t,
                    op: BinOp::Lt,
                    lhs: i,
                    rhs: Operand::Int(10),
                },
                Instr::IfJump {
                    cond: t,
                    target: Operand::Label(body),
                },
                Instr::Jump {
                    target: Operand::Label(exit),
                },
            ],
        );
        b.block(
            "body",
            vec![
                Instr::Op {
                    dst: acc,
                    op: BinOp::Add,
                    lhs: acc,
                    rhs: Operand::Reg(i),
                },
                Instr::Op {
                    dst: i,
                    op: BinOp::Add,
                    lhs: i,
                    rhs: Operand::Int(1),
                },
                Instr::Jump {
                    target: Operand::Label(head),
                },
            ],
        );
        b.block("exit", vec![Instr::Halt]);
        let p = b.build().unwrap();
        let d = DecodedProgram::decode(&p);
        // head = 1 fused CmpBranchBranch; body = Op + OpJump; exit = Boundary.
        assert_eq!(d.uop_count(), 4);
        assert!(matches!(d.uops[0], UOp::CmpBranchBranch { .. }));
        assert!(matches!(d.uops[2], UOp::OpJump { .. }));
        assert!(matches!(d.uops[3], UOp::Boundary));
        assert_eq!(d.source(0).len, 3);

        // And it runs to the same result as the reference.
        let mut stores = Stores::new();
        let mut task = TaskState::new(&p, p.entry());
        task.regs.write(i, Value::Int(0));
        task.regs.write(acc, Value::Int(0));
        let mut rtask = task.clone();
        let mut rstores = Stores::new();
        let (s1, p1) = d
            .run_until(&mut task, &mut stores, u64::MAX, false)
            .unwrap();
        let (s2, p2) = run_task_until(&p, &mut rtask, &mut rstores, u64::MAX, false).unwrap();
        assert_eq!((s1, p1), (s2, p2));
        assert_eq!(task.regs, rtask.regs);
        assert_eq!(task.block, rtask.block);
        assert_eq!(task.instr, rtask.instr);
        assert_eq!(task.regs.read(acc).unwrap(), Value::Int(45));
    }

    /// Adjacent control-free instructions fuse into pairs, but a pair
    /// never steals the compare of a branch fusion.
    #[test]
    fn adjacent_plain_ops_stay_unfused() {
        use crate::isa::{Instr, Operand};
        let mut b = ProgramBuilder::new();
        let (i, acc, t) = (b.reg("i"), b.reg("t2"), b.reg("t"));
        let loop_l = b.label("loop");
        b.block(
            "loop",
            vec![
                // Three plain ops: the first two decode as singles (no
                // generic pairing — see `fusion_len`), the third joins
                // the compare+branch as a StepCmpBranch triple.
                Instr::Op {
                    dst: acc,
                    op: BinOp::Mul,
                    lhs: acc,
                    rhs: Operand::Int(3),
                },
                Instr::Op {
                    dst: acc,
                    op: BinOp::Add,
                    lhs: acc,
                    rhs: Operand::Reg(i),
                },
                Instr::Op {
                    dst: i,
                    op: BinOp::Add,
                    lhs: i,
                    rhs: Operand::Int(1),
                },
                Instr::Op {
                    dst: t,
                    op: BinOp::Lt,
                    lhs: i,
                    rhs: Operand::Int(6),
                },
                Instr::IfJump {
                    cond: t,
                    target: Operand::Label(loop_l),
                },
                Instr::Halt,
            ],
        );
        let p = b.build().unwrap();
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.uops[0], UOp::OpMul { .. }));
        assert!(matches!(d.uops[1], UOp::OpAdd { .. }));
        assert!(matches!(d.uops[2], UOp::StepCmpBranch { .. }));
        assert!(matches!(d.uops[3], UOp::Boundary));
        assert_eq!(d.uop_count(), 4);

        // Bit-identical to the reference under every quantum, including
        // ones that split the fused triple.
        for quantum in [1u64, 2, 3, u64::MAX] {
            let mut stores = Stores::new();
            let mut task = TaskState::new(&p, p.entry());
            task.regs.write(i, Value::Int(0));
            task.regs.write(acc, Value::Int(0));
            let mut rstores = Stores::new();
            let mut rtask = task.clone();
            loop {
                let (s1, p1) = d.run_until(&mut task, &mut stores, quantum, false).unwrap();
                let (s2, p2) =
                    run_task_until(&p, &mut rtask, &mut rstores, quantum, false).unwrap();
                assert_eq!((s1, p1), (s2, p2), "quantum {quantum}");
                assert_eq!(task.block, rtask.block);
                assert_eq!(task.instr, rtask.instr);
                assert_eq!(task.cycles, rtask.cycles);
                if p1 == RunPause::Boundary {
                    break;
                }
            }
            assert_eq!(task.regs, rtask.regs);
        }
    }

    /// The watch-mode stream differs from the plain stream exactly at
    /// `prppt` block entries, which become `PrpptPause` micro-ops.
    #[test]
    fn watch_stream_replaces_prppt_entries() {
        for p in [prod(), fib()] {
            let d = DecodedProgram::decode(&p);
            assert_eq!(d.uops.len(), d.watch_uops.len());
            for pc in 0..d.uop_count() {
                if d.is_prppt_entry(pc) {
                    assert_eq!(d.watch_uops[pc], UOp::PrpptPause);
                    assert_ne!(d.uops[pc], UOp::PrpptPause);
                } else {
                    assert_eq!(d.watch_uops[pc], d.uops[pc]);
                }
            }
            // Programs with handlers must actually exercise the pause.
            let pauses = (0..d.uop_count())
                .filter(|&pc| d.is_prppt_entry(pc))
                .count();
            let handlers = (0..p.block_count())
                .filter(|&i| d.handler(Label::from_index(i)).is_some())
                .count();
            assert_eq!(pauses, handlers);
        }
    }

    /// The add-immediate + compare + branch triple fuses when it occurs
    /// within one block, and splits mid-op under a tight quantum with
    /// identical stepping to the reference.
    #[test]
    fn back_edge_triple_fuses_and_splits() {
        use crate::isa::{Instr, Operand};
        let mut b = ProgramBuilder::new();
        let (i, t) = (b.reg("i"), b.reg("t"));
        let loop_l = b.label("loop");
        b.block(
            "loop",
            vec![
                Instr::Op {
                    dst: i,
                    op: BinOp::Add,
                    lhs: i,
                    rhs: Operand::Int(1),
                },
                Instr::Op {
                    dst: t,
                    op: BinOp::Lt,
                    lhs: i,
                    rhs: Operand::Int(5),
                },
                Instr::IfJump {
                    cond: t,
                    target: Operand::Label(loop_l),
                },
                Instr::Halt,
            ],
        );
        let p = b.build().unwrap();
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.uops[0], UOp::StepCmpBranch { .. }));
        assert_eq!(d.uop_count(), 2);

        // Drive both executors with a quantum of 2, which always splits
        // the 3-instruction fused op.
        for quantum in [1u64, 2, 3, u64::MAX] {
            let mut stores = Stores::new();
            let mut task = TaskState::new(&p, p.entry());
            task.regs.write(i, Value::Int(0));
            let mut rstores = Stores::new();
            let mut rtask = task.clone();
            loop {
                let (s1, p1) = d.run_until(&mut task, &mut stores, quantum, false).unwrap();
                let (s2, p2) =
                    run_task_until(&p, &mut rtask, &mut rstores, quantum, false).unwrap();
                assert_eq!((s1, p1), (s2, p2), "quantum {quantum}");
                assert_eq!(task.block, rtask.block);
                assert_eq!(task.instr, rtask.instr);
                assert_eq!(task.cycles, rtask.cycles);
                if p1 == RunPause::Boundary {
                    break;
                }
            }
            assert_eq!(task.regs.read(i).unwrap(), Value::Int(5));
            assert_eq!(task.regs, rtask.regs);
        }
    }

    /// Promotion-ready entries pause the watch-enabled runner exactly
    /// where the reference pauses — including when the `prppt` block
    /// entry is the start of a fused micro-op.
    #[test]
    fn promotion_watch_matches_reference() {
        use crate::isa::{Annotation, Instr, Operand};
        let mut b = ProgramBuilder::new();
        let (i, t) = (b.reg("i"), b.reg("t"));
        let (work, body, exit, handler) = (
            b.label("work"),
            b.label("body"),
            b.label("exit"),
            b.label("handler"),
        );
        // The prppt block is the lowered loop-head shape, which fuses
        // into a single CmpBranchBranch micro-op.
        b.annotated_block(
            "work",
            Annotation::PromotionReady { handler },
            vec![
                Instr::Op {
                    dst: t,
                    op: BinOp::Lt,
                    lhs: i,
                    rhs: Operand::Int(3),
                },
                Instr::IfJump {
                    cond: t,
                    target: Operand::Label(body),
                },
                Instr::Jump {
                    target: Operand::Label(exit),
                },
            ],
        );
        b.block(
            "body",
            vec![
                Instr::Op {
                    dst: i,
                    op: BinOp::Add,
                    lhs: i,
                    rhs: Operand::Int(1),
                },
                Instr::Jump {
                    target: Operand::Label(work),
                },
            ],
        );
        b.block("exit", vec![Instr::Halt]);
        b.block(
            "handler",
            vec![Instr::Jump {
                target: Operand::Label(work),
            }],
        );
        let mut bb = b;
        bb.entry(work);
        let p = bb.build().unwrap();
        let d = DecodedProgram::decode(&p);
        assert!(matches!(d.uops[0], UOp::CmpBranchBranch { .. }));

        let mut stores = Stores::new();
        let mut task = TaskState::new(&p, p.entry());
        task.regs.write(i, Value::Int(0));
        let mut rstores = Stores::new();
        let mut rtask = task.clone();

        // At the prppt entry with the watch on, both pause immediately
        // with zero steps.
        let (s1, p1) = d.run_until(&mut task, &mut stores, 64, true).unwrap();
        let (s2, p2) = run_task_until(&p, &mut rtask, &mut rstores, 64, true).unwrap();
        assert_eq!((s1, p1), (s2, p2));
        assert_eq!(p1, RunPause::PromotionReady);
        assert_eq!(s1, 0);

        // Nudge one instruction past the entry (watch off), then run
        // with the watch on: both must pause on the next arrival at
        // the `work` entry, at the same position and step count.
        loop {
            let (n1, q1) = d.run_until(&mut task, &mut stores, 1, false).unwrap();
            let (n2, q2) = run_task_until(&p, &mut rtask, &mut rstores, 1, false).unwrap();
            assert_eq!((n1, q1), (n2, q2));
            let (s1, p1) = d.run_until(&mut task, &mut stores, 64, true).unwrap();
            let (s2, p2) = run_task_until(&p, &mut rtask, &mut rstores, 64, true).unwrap();
            assert_eq!((s1, p1), (s2, p2));
            assert_eq!(task.block, rtask.block);
            assert_eq!(task.instr, rtask.instr);
            assert_eq!(task.cycles, rtask.cycles);
            if p1 == RunPause::Boundary {
                break;
            }
            assert_eq!((task.block, task.instr), (work, 0));
        }
        assert_eq!(task.regs, rtask.regs);
        assert_eq!(task.regs.read(i).unwrap(), Value::Int(3));
    }
}
