//! Pretty-printer for TPAL programs, producing the concrete syntax the
//! parser accepts (`parse_program(print_program(p))` reproduces `p` up to
//! interning order).

use std::fmt::Write as _;

use crate::isa::{Annotation, Instr, JoinPolicy, MemAddr, Operand};
use crate::program::Program;

fn operand(p: &Program, v: Operand) -> String {
    match v {
        Operand::Reg(r) => p.reg_name(r).to_owned(),
        Operand::Label(l) => p.label_name(l).to_owned(),
        Operand::Int(n) => n.to_string(),
    }
}

fn mem(p: &Program, a: MemAddr) -> String {
    format!("mem[{} + {}]", p.reg_name(a.base), a.offset)
}

fn instr(p: &Program, i: &Instr) -> String {
    match *i {
        Instr::Move { dst, src } => format!("{} := {}", p.reg_name(dst), operand(p, src)),
        Instr::Op { dst, op, lhs, rhs } => format!(
            "{} := {} {} {}",
            p.reg_name(dst),
            p.reg_name(lhs),
            op,
            operand(p, rhs)
        ),
        Instr::IfJump { cond, target } => {
            format!("if-jump {}, {}", p.reg_name(cond), operand(p, target))
        }
        Instr::JrAlloc { dst, cont } => {
            format!("{} := jralloc {}", p.reg_name(dst), operand(p, cont))
        }
        Instr::Fork { jr, target } => {
            format!("fork {}, {}", p.reg_name(jr), operand(p, target))
        }
        Instr::Jump { target } => format!("jump {}", operand(p, target)),
        Instr::Halt => "halt".to_owned(),
        Instr::Join { jr } => format!("join {}", p.reg_name(jr)),
        Instr::SNew { dst } => format!("{} := snew", p.reg_name(dst)),
        Instr::SAlloc { sp, n } => format!("salloc {}, {}", p.reg_name(sp), n),
        Instr::SFree { sp, n } => format!("sfree {}, {}", p.reg_name(sp), n),
        Instr::Load { dst, addr } => format!("{} := {}", p.reg_name(dst), mem(p, addr)),
        Instr::Store { addr, src } => format!("{} := {}", mem(p, addr), operand(p, src)),
        Instr::PrmPush { addr } => format!("prmpush {}", mem(p, addr)),
        Instr::PrmPop { addr } => format!("prmpop {}", mem(p, addr)),
        Instr::PrmEmpty { dst, sp } => {
            format!("{} := prmempty {}", p.reg_name(dst), p.reg_name(sp))
        }
        Instr::PrmSplit { sp, dst } => {
            format!("prmsplit {}, {}", p.reg_name(sp), p.reg_name(dst))
        }
        Instr::HAlloc { dst, size } => {
            format!("{} := halloc {}", p.reg_name(dst), operand(p, size))
        }
        Instr::HLoad { dst, base, offset } => format!(
            "{} := heap[{} + {}]",
            p.reg_name(dst),
            p.reg_name(base),
            operand(p, offset)
        ),
        Instr::HStore { base, offset, src } => format!(
            "heap[{} + {}] := {}",
            p.reg_name(base),
            operand(p, offset),
            operand(p, src)
        ),
    }
}

fn annotation(p: &Program, a: &Annotation) -> String {
    match a {
        Annotation::None => "[.]".to_owned(),
        Annotation::PromotionReady { handler } => {
            format!("[prppt {}]", p.label_name(*handler))
        }
        Annotation::JoinTarget {
            policy,
            merge,
            comb,
        } => {
            let policy = match policy {
                JoinPolicy::Assoc => "assoc",
                JoinPolicy::AssocComm => "assoc-comm",
            };
            let pairs = merge
                .pairs
                .iter()
                .map(|&(s, d)| format!("{} -> {}", p.reg_name(s), p.reg_name(d)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("[jtppt {policy}; {{{pairs}}}; {}]", p.label_name(*comb))
        }
    }
}

/// Renders a program in the concrete assembly syntax.
///
/// The entry block is printed first so that reparsing preserves the entry
/// point.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let entry = p.entry();
    let order = std::iter::once(entry).chain(
        (0..p.block_count())
            .map(|i| crate::isa::Label(i as u32))
            .filter(move |&l| l != entry),
    );
    for l in order {
        let b = p.block(l);
        let _ = writeln!(out, "{}: {}", p.label_name(l), annotation(p, &b.annotation));
        for i in &b.instrs {
            let _ = writeln!(out, "    {}", instr(p, i));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::parse_program;
    use crate::programs::{fib, pow, prod};

    /// Structural equality up to interning order: compare the printed
    /// forms after one round trip (print is deterministic given a
    /// program's interning, and parsing `print(p)` reconstructs the same
    /// name-to-entity mapping).
    fn roundtrips(p: &Program) {
        let text = print_program(p);
        let p2 = parse_program(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let text2 = print_program(&p2);
        assert_eq!(text, text2, "printing is not a fixed point");
        assert_eq!(p.block_count(), p2.block_count());
        assert_eq!(p.instr_count(), p2.instr_count());
        assert_eq!(
            p.label_name(p.entry()),
            p2.label_name(p2.entry()),
            "entry block changed"
        );
    }

    #[test]
    fn prod_roundtrips() {
        roundtrips(&prod());
    }

    #[test]
    fn pow_roundtrips() {
        roundtrips(&pow());
    }

    #[test]
    fn fib_roundtrips() {
        roundtrips(&fib());
    }

    #[test]
    fn printed_prod_still_computes() {
        use crate::machine::{Machine, MachineConfig};
        let p = parse_program(&print_program(&prod())).unwrap();
        let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(8));
        m.set_reg("a", 21).unwrap();
        m.set_reg("b", 2).unwrap();
        assert_eq!(m.run().unwrap().read_reg("c"), Some(42));
    }
}
