//! The TPAL assembly lexer.

use std::fmt;

use crate::isa::BinOp;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier (register, label, or keyword). Interior hyphens are
    /// part of the identifier when immediately followed by an identifier
    /// character: `if-jump`, `sp-top`.
    Ident(String),
    /// An unsigned integer literal (negation is handled by the parser).
    Int(i64),
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `.` (the empty annotation)
    Dot,
    /// `:=`
    Assign,
    /// `->` (register-map arrow)
    Arrow,
    /// A binary operator symbol.
    Op(BinOp),
    /// End of line (statement separator).
    Newline,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "`{n}`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Semi => f.write_str("`;`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::Dot => f.write_str("`.`"),
            TokenKind::Assign => f.write_str("`:=`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Op(op) => write!(f, "`{op}`"),
            TokenKind::Newline => f.write_str("end of line"),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based source line.
    pub line: u32,
    /// The offending character.
    pub ch: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: unexpected character `{}`", self.line, self.ch)
    }
}

impl std::error::Error for LexError {}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// `%` opens an identifier (compiler-generated scratch names such as
/// `%abort`) only when immediately followed by an identifier character;
/// otherwise it is the `%` operator.
fn starts_scoped_ident(c: char, chars: &std::iter::Peekable<std::str::Chars<'_>>) -> bool {
    if c != '%' {
        return false;
    }
    let mut look = chars.clone();
    look.next();
    matches!(look.peek(), Some(&n) if is_ident_start(n))
}

/// Tokenises TPAL assembly source.
///
/// # Errors
///
/// Returns a [`LexError`] on any character that starts no token.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();

    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line })
        };
    }

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                chars.next();
                push!(TokenKind::Newline);
                line += 1;
            }
            ' ' | '\t' | '\r' => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    // Comment to end of line.
                    for c in chars.by_ref() {
                        if c == '\n' {
                            push!(TokenKind::Newline);
                            line += 1;
                            break;
                        }
                    }
                } else {
                    push!(TokenKind::Op(BinOp::Div));
                }
            }
            c if is_ident_start(c) || starts_scoped_ident(c, &chars) => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_continue(c) || c == '%' && !s.is_empty() {
                        s.push(c);
                        chars.next();
                    } else if c == '-' || c == '.' || c == '%' {
                        // Interior hyphen/dot/percent: part of the
                        // identifier only when the next character keeps
                        // the identifier going (`sp-top`, `main.acc`,
                        // `main.%t0`). With surrounding spaces they lex
                        // as operators/punctuation instead.
                        let mut look = chars.clone();
                        look.next();
                        match look.peek() {
                            Some(&n) if is_ident_continue(n) || n == '%' => {
                                s.push(c);
                                chars.next();
                            }
                            _ => break,
                        }
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Ident(s));
            }
            c if c.is_ascii_digit() => {
                let mut n: i64 = 0;
                while let Some(&c) = chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        n = n.wrapping_mul(10).wrapping_add(d as i64);
                        chars.next();
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Int(n));
            }
            ':' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Assign);
                } else {
                    push!(TokenKind::Colon);
                }
            }
            ';' => {
                chars.next();
                push!(TokenKind::Semi);
            }
            ',' => {
                chars.next();
                push!(TokenKind::Comma);
            }
            '[' => {
                chars.next();
                push!(TokenKind::LBracket);
            }
            ']' => {
                chars.next();
                push!(TokenKind::RBracket);
            }
            '{' => {
                chars.next();
                push!(TokenKind::LBrace);
            }
            '}' => {
                chars.next();
                push!(TokenKind::RBrace);
            }
            '.' | '\u{00B7}' => {
                // Accept both ASCII '.' and the paper's '·'.
                chars.next();
                push!(TokenKind::Dot);
            }
            '+' => {
                chars.next();
                push!(TokenKind::Op(BinOp::Add));
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    push!(TokenKind::Arrow);
                } else {
                    push!(TokenKind::Op(BinOp::Sub));
                }
            }
            '*' => {
                chars.next();
                push!(TokenKind::Op(BinOp::Mul));
            }
            '%' => {
                chars.next();
                push!(TokenKind::Op(BinOp::Mod));
            }
            '&' => {
                chars.next();
                push!(TokenKind::Op(BinOp::And));
            }
            '|' => {
                chars.next();
                push!(TokenKind::Op(BinOp::Or));
            }
            '^' => {
                chars.next();
                push!(TokenKind::Op(BinOp::Xor));
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        push!(TokenKind::Op(BinOp::Le));
                    }
                    Some('<') => {
                        chars.next();
                        push!(TokenKind::Op(BinOp::Shl));
                    }
                    _ => push!(TokenKind::Op(BinOp::Lt)),
                }
            }
            '>' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        push!(TokenKind::Op(BinOp::Ge));
                    }
                    Some('>') => {
                        chars.next();
                        push!(TokenKind::Op(BinOp::Shr));
                    }
                    _ => push!(TokenKind::Op(BinOp::Gt)),
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Op(BinOp::EqOp));
                } else {
                    return Err(LexError { line, ch: '=' });
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    push!(TokenKind::Op(BinOp::Ne));
                } else {
                    return Err(LexError { line, ch: '!' });
                }
            }
            other => return Err(LexError { line, ch: other }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn hyphenated_identifiers() {
        assert_eq!(
            kinds("if-jump sp-top assoc-comm"),
            vec![
                TokenKind::Ident("if-jump".into()),
                TokenKind::Ident("sp-top".into()),
                TokenKind::Ident("assoc-comm".into()),
            ]
        );
    }

    #[test]
    fn spaced_minus_is_subtraction() {
        assert_eq!(
            kinds("a - 1"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Op(BinOp::Sub),
                TokenKind::Int(1),
            ]
        );
        // Hyphen before a digit with no space still splits: `a-1` is not a
        // legal identifier continuation? It is (digits continue idents), so
        // `a-1` lexes as one identifier — which is why the sources in this
        // repository use underscores in names.
        assert_eq!(kinds("a-1"), vec![TokenKind::Ident("a-1".into())]);
    }

    #[test]
    fn assign_vs_colon() {
        assert_eq!(
            kinds("x := 1"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1)
            ]
        );
        assert_eq!(
            kinds("lbl:"),
            vec![TokenKind::Ident("lbl".into()), TokenKind::Colon]
        );
    }

    #[test]
    fn arrow_and_comparison_operators() {
        assert_eq!(
            kinds("r -> r2"),
            vec![
                TokenKind::Ident("r".into()),
                TokenKind::Arrow,
                TokenKind::Ident("r2".into())
            ]
        );
        assert_eq!(kinds("<="), vec![TokenKind::Op(BinOp::Le)]);
        assert_eq!(kinds("<<"), vec![TokenKind::Op(BinOp::Shl)]);
        assert_eq!(kinds("=="), vec![TokenKind::Op(BinOp::EqOp)]);
        assert_eq!(kinds("!="), vec![TokenKind::Op(BinOp::Ne)]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // comment text := 5\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Newline,
                TokenKind::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn line_numbers_advance() {
        let toks = lex("a\nb\nc").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[4].line, 3);
    }

    #[test]
    fn bad_character_reports_line() {
        let err = lex("ok\n  $bad").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.ch, '$');
    }

    #[test]
    fn unicode_middle_dot_is_dot() {
        assert_eq!(kinds("[\u{00B7}]"), kinds("[.]"));
    }

    #[test]
    fn scoped_and_generated_names() {
        assert_eq!(
            kinds("main.acc %abort main.%t0 fib.%s2_jr"),
            vec![
                TokenKind::Ident("main.acc".into()),
                TokenKind::Ident("%abort".into()),
                TokenKind::Ident("main.%t0".into()),
                TokenKind::Ident("fib.%s2_jr".into()),
            ]
        );
        // Spaced `%` stays the operator; `[.]` stays the annotation.
        assert_eq!(
            kinds("a % 2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Op(BinOp::Mod),
                TokenKind::Int(2)
            ]
        );
        assert_eq!(
            kinds("[.]"),
            vec![TokenKind::LBracket, TokenKind::Dot, TokenKind::RBracket]
        );
    }
}
