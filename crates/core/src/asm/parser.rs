//! The TPAL assembly parser.
//!
//! Parsing proceeds in two passes: the grammar pass builds blocks whose
//! operands are unresolved names, then the resolution pass classifies each
//! name as a block label (if a block of that name exists) or a register,
//! and hands everything to the validating [`ProgramBuilder`].

use std::collections::HashSet;
use std::fmt;

use crate::asm::lexer::{lex, LexError, Token, TokenKind};
use crate::isa::{Annotation, BinOp, Instr, JoinPolicy, MemAddr, Operand, RegMap};
use crate::program::{Program, ProgramBuilder, ValidationError};

/// A parse error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line (0 for end-of-input and program-level errors).
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "line {}: {}", self.line, self.msg)
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            line: e.line,
            msg: format!("unexpected character `{}`", e.ch),
        }
    }
}

impl From<ValidationError> for ParseError {
    fn from(e: ValidationError) -> Self {
        ParseError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

/// An operand whose name is not yet classified as register or label.
#[derive(Debug, Clone, PartialEq, Eq)]
enum POperand {
    Name(String),
    Int(i64),
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PMem {
    base: String,
    offset: u32,
}

/// Unresolved instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PInstr {
    Move(String, POperand),
    Op(String, BinOp, String, POperand),
    IfJump(String, POperand),
    JrAlloc(String, POperand),
    Fork(String, POperand),
    Jump(POperand),
    Halt,
    Join(String),
    SNew(String),
    SAlloc(String, u32),
    SFree(String, u32),
    Load(String, PMem),
    Store(PMem, POperand),
    PrmPush(PMem),
    PrmPop(PMem),
    PrmEmpty(String, String),
    PrmSplit(String, String),
    HAlloc(String, POperand),
    HLoad(String, String, POperand),
    HStore(String, POperand, POperand),
}

#[derive(Debug, Clone)]
enum PAnnotation {
    None,
    Prppt(String),
    Jtppt(JoinPolicy, Vec<(String, String)>, String),
}

#[derive(Debug)]
struct PBlock {
    name: String,
    line: u32,
    annotation: PAnnotation,
    instrs: Vec<PInstr>,
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos + 1).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        match self.next() {
            Some(ref k) if k == kind => Ok(()),
            Some(k) => Err(ParseError {
                line: self.toks[self.pos - 1].line,
                msg: format!("expected {kind}, found {k}"),
            }),
            None => Err(self.err(format!("expected {kind}, found end of input"))),
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            Some(k) => Err(ParseError {
                line: self.toks[self.pos - 1].line,
                msg: format!("expected identifier, found {k}"),
            }),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(TokenKind::Int(n)) => Ok(n),
            Some(TokenKind::Op(BinOp::Sub)) => match self.next() {
                Some(TokenKind::Int(n)) => Ok(-n),
                _ => Err(self.err("expected integer after `-`")),
            },
            Some(k) => Err(ParseError {
                line: self.toks[self.pos - 1].line,
                msg: format!("expected integer, found {k}"),
            }),
            None => Err(self.err("expected integer, found end of input")),
        }
    }

    fn skip_separators(&mut self) {
        while matches!(
            self.peek(),
            Some(TokenKind::Newline) | Some(TokenKind::Semi)
        ) {
            self.pos += 1;
        }
    }

    fn operand(&mut self) -> Result<POperand, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(_)) => Ok(POperand::Name(self.ident()?)),
            Some(TokenKind::Int(_)) | Some(TokenKind::Op(BinOp::Sub)) => {
                Ok(POperand::Int(self.integer()?))
            }
            Some(k) => Err(self.err(format!("expected operand, found {k}"))),
            None => Err(self.err("expected operand, found end of input")),
        }
    }

    /// `heap [ base + offset ]` with a register-or-literal offset (the
    /// `heap` keyword is already consumed).
    fn heap_addr(&mut self) -> Result<(String, POperand), ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let base = self.ident()?;
        self.expect(&TokenKind::Op(BinOp::Add))?;
        let offset = self.operand()?;
        self.expect(&TokenKind::RBracket)?;
        Ok((base, offset))
    }

    /// `mem [ base + offset ]` (the `mem` keyword is already consumed).
    fn mem_addr(&mut self) -> Result<PMem, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let base = self.ident()?;
        self.expect(&TokenKind::Op(BinOp::Add))?;
        let offset = self.integer()?;
        if offset < 0 {
            return Err(self.err("memory offsets must be non-negative"));
        }
        self.expect(&TokenKind::RBracket)?;
        Ok(PMem {
            base,
            offset: offset as u32,
        })
    }

    /// An operator token, or the `min`/`max` keywords.
    fn peek_binop(&self) -> Option<BinOp> {
        match self.peek() {
            Some(TokenKind::Op(op)) => Some(*op),
            Some(TokenKind::Ident(s)) if s == "min" => Some(BinOp::Min),
            Some(TokenKind::Ident(s)) if s == "max" => Some(BinOp::Max),
            _ => None,
        }
    }

    fn annotation(&mut self) -> Result<PAnnotation, ParseError> {
        self.expect(&TokenKind::LBracket)?;
        let ann = match self.peek() {
            Some(TokenKind::Dot) => {
                self.pos += 1;
                PAnnotation::None
            }
            Some(TokenKind::Ident(s)) if s == "prppt" => {
                self.pos += 1;
                PAnnotation::Prppt(self.ident()?)
            }
            Some(TokenKind::Ident(s)) if s == "jtppt" => {
                self.pos += 1;
                let policy = match self.ident()?.as_str() {
                    "assoc" => JoinPolicy::Assoc,
                    "assoc-comm" | "assoc_comm" => JoinPolicy::AssocComm,
                    other => {
                        return Err(
                            self.err(format!("expected `assoc` or `assoc-comm`, found `{other}`"))
                        )
                    }
                };
                self.expect(&TokenKind::Semi)?;
                self.expect(&TokenKind::LBrace)?;
                let mut pairs = Vec::new();
                if self.peek() != Some(&TokenKind::RBrace) {
                    loop {
                        let src = self.ident()?;
                        self.expect(&TokenKind::Arrow)?;
                        let dst = self.ident()?;
                        pairs.push((src, dst));
                        if self.peek() == Some(&TokenKind::Comma) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBrace)?;
                self.expect(&TokenKind::Semi)?;
                PAnnotation::Jtppt(policy, pairs, self.ident()?)
            }
            _ => return Err(self.err("expected `.`, `prppt`, or `jtppt` in annotation")),
        };
        self.expect(&TokenKind::RBracket)?;
        Ok(ann)
    }

    /// One statement; the caller has already established it is not a block
    /// header.
    fn statement(&mut self) -> Result<Vec<PInstr>, ParseError> {
        let kw = match self.peek() {
            Some(TokenKind::Ident(s)) => s.clone(),
            _ => return Err(self.err("expected a statement")),
        };
        match kw.as_str() {
            "jump" => {
                self.pos += 1;
                Ok(vec![PInstr::Jump(self.operand()?)])
            }
            "halt" => {
                self.pos += 1;
                Ok(vec![PInstr::Halt])
            }
            "join" => {
                self.pos += 1;
                Ok(vec![PInstr::Join(self.ident()?)])
            }
            "fork" => {
                self.pos += 1;
                let jr = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                Ok(vec![PInstr::Fork(jr, self.operand()?)])
            }
            "if-jump" | "if_jump" => {
                self.pos += 1;
                let cond = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                Ok(vec![PInstr::IfJump(cond, self.operand()?)])
            }
            "salloc" | "sfree" => {
                self.pos += 1;
                let sp = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let n = self.integer()?;
                if n < 0 {
                    return Err(self.err("cell counts must be non-negative"));
                }
                Ok(vec![if kw == "salloc" {
                    PInstr::SAlloc(sp, n as u32)
                } else {
                    PInstr::SFree(sp, n as u32)
                }])
            }
            "prmpush" | "prmpop" => {
                self.pos += 1;
                let m = self.ident()?; // `mem`
                if m != "mem" {
                    return Err(self.err(format!("expected `mem`, found `{m}`")));
                }
                let addr = self.mem_addr()?;
                Ok(vec![if kw == "prmpush" {
                    PInstr::PrmPush(addr)
                } else {
                    PInstr::PrmPop(addr)
                }])
            }
            "prmsplit" => {
                self.pos += 1;
                let sp = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                Ok(vec![PInstr::PrmSplit(sp, self.ident()?)])
            }
            "mem" => {
                // Store: mem[sp + n] := v
                self.pos += 1;
                let addr = self.mem_addr()?;
                self.expect(&TokenKind::Assign)?;
                Ok(vec![PInstr::Store(addr, self.operand()?)])
            }
            "heap" => {
                // Heap store: heap[base + off] := v
                self.pos += 1;
                let (base, off) = self.heap_addr()?;
                self.expect(&TokenKind::Assign)?;
                Ok(vec![PInstr::HStore(base, off, self.operand()?)])
            }
            _ => {
                // Assignment forms: dst := ...
                let dst = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                match self.peek() {
                    Some(TokenKind::Ident(s)) if s == "snew" => {
                        self.pos += 1;
                        Ok(vec![PInstr::SNew(dst)])
                    }
                    Some(TokenKind::Ident(s)) if s == "jralloc" => {
                        self.pos += 1;
                        Ok(vec![PInstr::JrAlloc(dst, self.operand()?)])
                    }
                    Some(TokenKind::Ident(s)) if s == "prmempty" => {
                        self.pos += 1;
                        Ok(vec![PInstr::PrmEmpty(dst, self.ident()?)])
                    }
                    Some(TokenKind::Ident(s)) if s == "mem" => {
                        self.pos += 1;
                        Ok(vec![PInstr::Load(dst, self.mem_addr()?)])
                    }
                    Some(TokenKind::Ident(s)) if s == "halloc" => {
                        self.pos += 1;
                        Ok(vec![PInstr::HAlloc(dst, self.operand()?)])
                    }
                    Some(TokenKind::Ident(s)) if s == "heap" => {
                        self.pos += 1;
                        let (base, off) = self.heap_addr()?;
                        Ok(vec![PInstr::HLoad(dst, base, off)])
                    }
                    _ => self.assignment_chain(dst),
                }
            }
        }
    }

    /// `dst := operand (op operand)*`, expanded left-associatively with
    /// `dst` as the accumulator.
    fn assignment_chain(&mut self, dst: String) -> Result<Vec<PInstr>, ParseError> {
        let first = self.operand()?;
        if self.peek_binop().is_none() {
            return Ok(vec![PInstr::Move(dst, first)]);
        }
        let lhs = match &first {
            POperand::Name(s) => s.clone(),
            POperand::Int(_) => {
                return Err(self.err("the left operand of an operator must be a register"))
            }
        };
        let mut instrs = Vec::new();
        let mut acc_is_dst = false;
        while let Some(op) = self.peek_binop() {
            self.pos += 1;
            let rhs = self.operand()?;
            if acc_is_dst {
                if matches!(&rhs, POperand::Name(n) if *n == dst) {
                    return Err(self.err(format!(
                        "chained expression reads `{dst}` after it was already assigned; \
                         split the statement"
                    )));
                }
                instrs.push(PInstr::Op(dst.clone(), op, dst.clone(), rhs));
            } else {
                instrs.push(PInstr::Op(dst.clone(), op, lhs.clone(), rhs));
                acc_is_dst = true;
            }
        }
        Ok(instrs)
    }

    fn program(&mut self) -> Result<Vec<PBlock>, ParseError> {
        let mut blocks = Vec::new();
        self.skip_separators();
        while self.peek().is_some() {
            // Block header: IDENT ':' [annotation]
            let line = self.line();
            let name = self.ident()?;
            self.expect(&TokenKind::Colon)?;
            let annotation = if self.peek() == Some(&TokenKind::LBracket) {
                self.annotation()?
            } else {
                PAnnotation::None
            };
            let mut instrs = Vec::new();
            self.skip_separators();
            // Statements until the next block header or end of input.
            while let Some(TokenKind::Ident(_)) = self.peek() {
                if self.peek2() == Some(&TokenKind::Colon) {
                    break; // next block header
                }
                instrs.extend(self.statement()?);
                match self.peek() {
                    None => break,
                    Some(TokenKind::Newline) | Some(TokenKind::Semi) => self.skip_separators(),
                    Some(k) => {
                        return Err(self.err(format!("expected end of statement, found {k}")))
                    }
                }
            }
            blocks.push(PBlock {
                name,
                line,
                annotation,
                instrs,
            });
            self.skip_separators();
        }
        Ok(blocks)
    }
}

/// Parses TPAL assembly source into a validated [`Program`].
///
/// The first block in the source is the program's entry block.
///
/// # Errors
///
/// Returns a [`ParseError`] on lexical or syntactic faults, and wraps any
/// [`ValidationError`] from the program builder (undefined labels, missing
/// terminators, and so on).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let pblocks = parser.program()?;
    if pblocks.is_empty() {
        return Err(ParseError {
            line: 0,
            msg: "program has no blocks".into(),
        });
    }

    let block_names: HashSet<&str> = pblocks.iter().map(|b| b.name.as_str()).collect();
    let mut b = ProgramBuilder::new();

    // Intern block labels first so name resolution sees all of them.
    for pb in &pblocks {
        b.label(&pb.name);
    }

    let resolve = |b: &mut ProgramBuilder, op: &POperand| -> Operand {
        match op {
            POperand::Int(n) => Operand::Int(*n),
            POperand::Name(s) => {
                if block_names.contains(s.as_str()) {
                    Operand::Label(b.label(s))
                } else {
                    Operand::Reg(b.reg(s))
                }
            }
        }
    };
    let reg_of =
        |b: &mut ProgramBuilder, s: &str, line: u32| -> Result<crate::isa::Reg, ParseError> {
            if block_names.contains(s) {
                return Err(ParseError {
                    line,
                    msg: format!("`{s}` is a block label but is used as a register"),
                });
            }
            Ok(b.reg(s))
        };
    let mem_of = |b: &mut ProgramBuilder, m: &PMem, line: u32| -> Result<MemAddr, ParseError> {
        Ok(MemAddr {
            base: reg_of(b, &m.base, line)?,
            offset: m.offset,
        })
    };

    for pb in &pblocks {
        let line = pb.line;
        let mut instrs = Vec::with_capacity(pb.instrs.len());
        for pi in &pb.instrs {
            let i = match pi {
                PInstr::Move(dst, src) => Instr::Move {
                    dst: reg_of(&mut b, dst, line)?,
                    src: resolve(&mut b, src),
                },
                PInstr::Op(dst, op, lhs, rhs) => Instr::Op {
                    dst: reg_of(&mut b, dst, line)?,
                    op: *op,
                    lhs: reg_of(&mut b, lhs, line)?,
                    rhs: resolve(&mut b, rhs),
                },
                PInstr::IfJump(cond, target) => Instr::IfJump {
                    cond: reg_of(&mut b, cond, line)?,
                    target: resolve(&mut b, target),
                },
                PInstr::JrAlloc(dst, cont) => Instr::JrAlloc {
                    dst: reg_of(&mut b, dst, line)?,
                    cont: resolve(&mut b, cont),
                },
                PInstr::Fork(jr, target) => Instr::Fork {
                    jr: reg_of(&mut b, jr, line)?,
                    target: resolve(&mut b, target),
                },
                PInstr::Jump(t) => Instr::Jump {
                    target: resolve(&mut b, t),
                },
                PInstr::Halt => Instr::Halt,
                PInstr::Join(jr) => Instr::Join {
                    jr: reg_of(&mut b, jr, line)?,
                },
                PInstr::SNew(dst) => Instr::SNew {
                    dst: reg_of(&mut b, dst, line)?,
                },
                PInstr::SAlloc(sp, n) => Instr::SAlloc {
                    sp: reg_of(&mut b, sp, line)?,
                    n: *n,
                },
                PInstr::SFree(sp, n) => Instr::SFree {
                    sp: reg_of(&mut b, sp, line)?,
                    n: *n,
                },
                PInstr::Load(dst, m) => Instr::Load {
                    dst: reg_of(&mut b, dst, line)?,
                    addr: mem_of(&mut b, m, line)?,
                },
                PInstr::Store(m, src) => Instr::Store {
                    addr: mem_of(&mut b, m, line)?,
                    src: resolve(&mut b, src),
                },
                PInstr::PrmPush(m) => Instr::PrmPush {
                    addr: mem_of(&mut b, m, line)?,
                },
                PInstr::PrmPop(m) => Instr::PrmPop {
                    addr: mem_of(&mut b, m, line)?,
                },
                PInstr::PrmEmpty(dst, sp) => Instr::PrmEmpty {
                    dst: reg_of(&mut b, dst, line)?,
                    sp: reg_of(&mut b, sp, line)?,
                },
                PInstr::PrmSplit(sp, dst) => Instr::PrmSplit {
                    sp: reg_of(&mut b, sp, line)?,
                    dst: reg_of(&mut b, dst, line)?,
                },
                PInstr::HAlloc(dst, size) => Instr::HAlloc {
                    dst: reg_of(&mut b, dst, line)?,
                    size: resolve(&mut b, size),
                },
                PInstr::HLoad(dst, base, off) => Instr::HLoad {
                    dst: reg_of(&mut b, dst, line)?,
                    base: reg_of(&mut b, base, line)?,
                    offset: resolve(&mut b, off),
                },
                PInstr::HStore(base, off, src) => Instr::HStore {
                    base: reg_of(&mut b, base, line)?,
                    offset: resolve(&mut b, off),
                    src: resolve(&mut b, src),
                },
            };
            instrs.push(i);
        }
        let annotation = match &pb.annotation {
            PAnnotation::None => Annotation::None,
            PAnnotation::Prppt(h) => {
                if !block_names.contains(h.as_str()) {
                    return Err(ParseError {
                        line,
                        msg: format!("prppt handler `{h}` is not a block"),
                    });
                }
                Annotation::PromotionReady {
                    handler: b.label(h),
                }
            }
            PAnnotation::Jtppt(policy, pairs, comb) => {
                if !block_names.contains(comb.as_str()) {
                    return Err(ParseError {
                        line,
                        msg: format!("jtppt combining block `{comb}` is not a block"),
                    });
                }
                let mut merge = RegMap::new();
                for (src, dst) in pairs {
                    merge = merge.with(reg_of(&mut b, src, line)?, reg_of(&mut b, dst, line)?);
                }
                Annotation::JoinTarget {
                    policy: *policy,
                    merge,
                    comb: b.label(comb),
                }
            }
        };
        b.annotated_block(&pb.name, annotation, instrs);
    }

    Ok(b.build()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    #[test]
    fn parse_minimal() {
        let p = parse_program("main: [.]\n  r := 1\n  halt\n").unwrap();
        assert_eq!(p.block_count(), 1);
        assert_eq!(p.instr_count(), 2);
    }

    #[test]
    fn parse_semicolon_separated() {
        let p = parse_program("main: [.] r := 1; r := r + 2; halt").unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("r"), Some(3));
    }

    #[test]
    fn parse_chained_operators() {
        let p = parse_program("main: x := 2; y := x + x + 3; halt").unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("y"), Some(7));
    }

    #[test]
    fn chained_clobber_rejected() {
        let err = parse_program("main: x := 1; x := x + 1 + x; halt").unwrap_err();
        assert!(err.msg.contains("already assigned"), "{err}");
    }

    #[test]
    fn parse_negative_literal() {
        let p = parse_program("main: x := -5; x := x - -3; halt").unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("x"), Some(-2));
    }

    #[test]
    fn labels_resolve_in_operands() {
        let src = "main: [.]\n  jump next\nnext: [.]\n  halt\n";
        let p = parse_program(src).unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert!(out.final_regs().is_some());
    }

    #[test]
    fn label_used_as_register_rejected() {
        let err = parse_program("main: main := 1; halt").unwrap_err();
        assert!(err.msg.contains("used as a register"), "{err}");
    }

    #[test]
    fn parse_full_prod_listing() {
        // The paper's Figure 2, transcribed with underscores.
        let src = r#"
prod: [.] // computes c = a * b
    r := 0
    jump loop
exit: [jtppt assoc-comm; {r -> r2}; comb]
    c := r
    halt
loop: [prppt loop_try_promote]
    if-jump a, exit
    r := r + b
    a := a - 1
    jump loop
loop_try_promote: [.]
    t := a < 2
    if-jump t, loop
    jr := jralloc exit
    jump loop_promote
loop_par_try_promote: [.]
    t := a < 2
    if-jump t, loop_par
    jump loop_promote
loop_promote: [.]
    m := a / 2
    n := a % 2
    a := m
    tr := r
    r := 0
    fork jr, loop_par
    a := m + n
    r := tr
    jump loop_par
loop_par: [prppt loop_par_try_promote]
    if-jump a, exit_par
    r := r + b
    a := a - 1
    jump loop_par
comb: [.]
    r := r + r2
    join jr
exit_par: [.]
    join jr
"#;
        let p = parse_program(src).unwrap();
        for hb in [8, u64::MAX] {
            let mut m = Machine::new(&p, MachineConfig::default().with_heartbeat(hb));
            m.set_reg("a", 123).unwrap();
            m.set_reg("b", 4).unwrap();
            assert_eq!(m.run().unwrap().read_reg("c"), Some(492), "hb={hb}");
        }
    }

    #[test]
    fn parse_stack_instructions() {
        let src = r#"
main: [.]
    sp := snew
    salloc sp, 2
    mem[sp + 0] := 7
    mem[sp + 1] := 8
    x := mem[sp + 0]
    y := mem[sp + 1]
    sfree sp, 2
    halt
"#;
        let p = parse_program(src).unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("x"), Some(7));
        assert_eq!(out.read_reg("y"), Some(8));
    }

    #[test]
    fn parse_mark_instructions() {
        let src = r#"
main: [.]
    sp := snew
    salloc sp, 3
    e := prmempty sp
    prmpush mem[sp + 1]
    f := prmempty sp
    prmsplit sp, off
    prmpush mem[sp + 2]
    prmpop mem[sp + 2]
    halt
"#;
        let p = parse_program(src).unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("e"), Some(0)); // empty = true(0)
        assert_eq!(out.read_reg("f"), Some(1));
        assert_eq!(out.read_reg("off"), Some(1));
    }

    #[test]
    fn parse_error_reports_line() {
        let err = parse_program("main: [.]\n  x := := 1\n  halt").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn undefined_handler_rejected() {
        let err = parse_program("main: [prppt nowhere]\n  halt\n").unwrap_err();
        assert!(err.msg.contains("prppt handler"), "{err}");
    }

    #[test]
    fn parse_heap_instructions() {
        let src = r#"
main: [.]
    a := halloc 4
    heap[a + 0] := 11
    i := 3
    heap[a + i] := 44
    x := heap[a + 0]
    y := heap[a + i]
    halt
"#;
        let p = parse_program(src).unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("x"), Some(11));
        assert_eq!(out.read_reg("y"), Some(44));
    }

    #[test]
    fn min_max_keywords() {
        let p = parse_program("main: a := 3; b := a min 1; c := a max 9; halt").unwrap();
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert_eq!(out.read_reg("b"), Some(1));
        assert_eq!(out.read_reg("c"), Some(9));
    }
}
