//! A textual assembler and pretty-printer for TPAL.
//!
//! The concrete syntax follows the paper's listings (Figure 2):
//!
//! ```text
//! // computes c = a * b
//! prod: [.]
//!     r := 0
//!     jump loop
//! exit: [jtppt assoc-comm; {r -> r2}; comb]
//!     c := r
//!     halt
//! loop: [prppt loop_try_promote]
//!     if-jump a, exit
//!     r := r + b
//!     a := a - 1
//!     jump loop
//! ...
//! ```
//!
//! Statements are separated by newlines or semicolons. Identifiers may
//! contain interior hyphens when not surrounded by spaces (`if-jump`,
//! `assoc-comm`, `sp-top`), exactly as in the paper; `a - 1` with spaces
//! is subtraction. Chained operators (`sp-top := sp + top - 1`) expand to
//! a left-associated instruction sequence accumulating in the
//! destination, and are rejected if a later operand would read the
//! already-clobbered destination.
//!
//! An identifier in operand position denotes the block label of that name
//! if one exists, and a register otherwise.
//!
//! # Examples
//!
//! ```
//! use tpal_core::asm;
//! use tpal_core::machine::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = asm::parse_program(
//!     "main: [.]\n  r := 6\n  r := r * 7\n  halt\n",
//! )?;
//! let out = Machine::new(&program, MachineConfig::default()).run()?;
//! assert_eq!(out.read_reg("r"), Some(42));
//! # Ok(())
//! # }
//! ```

mod lexer;
mod parser;
mod printer;

pub use lexer::{LexError, Token, TokenKind};
pub use parser::{parse_program, ParseError};
pub use printer::print_program;
