//! Unit tests for the threaded tier: compile determinism, span tiling,
//! merge shapes, and three-way (reference / decoded / threaded)
//! differential checks including quantum splits, promotion watch, and
//! fault positions. The cross-crate suites (`engine_equivalence`,
//! `decoded_prop`, `threaded_quantum`) extend these to whole-scheduler
//! and property-based coverage.

use super::*;
use crate::isa::{Annotation, Instr, Operand};
use crate::machine::{run_task_until, Value};
use crate::program::ProgramBuilder;
use crate::programs::{fib, prod};

/// Drives the reference interpreter, the decoded tier, and the threaded
/// tier over the same program in lockstep `run_until` calls, asserting
/// identical `(steps, pause)` results (faults included), identical task
/// positions and cycle counters after every call, and identical final
/// register files. A `PromotionReady` pause is stepped past with a
/// one-step watch-off nudge so watch-mode runs make progress.
fn three_way(
    p: &Program,
    heap: &[i64],
    init: impl Fn(&mut TaskState, i64),
    quanta: &[u64],
    watch: bool,
) {
    let d = DecodedProgram::decode(p);
    let t = ThreadedProgram::compile(p);
    for &q in quanta {
        let mk = || {
            let mut stores = Stores::new();
            let base = if heap.is_empty() {
                0
            } else {
                stores.heap.alloc_init(heap)
            };
            let mut task = TaskState::new(p, p.entry());
            init(&mut task, base);
            (task, stores)
        };
        let (mut t0, mut s0) = mk();
        let (mut t1, mut s1) = mk();
        let (mut t2, mut s2) = mk();
        loop {
            let r0 = run_task_until(p, &mut t0, &mut s0, q, watch);
            let r1 = d.run_until(&mut t1, &mut s1, q, watch);
            let r2 = t.run_until(&mut t2, &mut s2, q, watch);
            assert_eq!(
                format!("{r0:?}"),
                format!("{r1:?}"),
                "decoded vs reference, quantum {q}"
            );
            assert_eq!(
                format!("{r0:?}"),
                format!("{r2:?}"),
                "threaded vs reference, quantum {q}"
            );
            assert_eq!(
                (t0.block, t0.instr, t0.cycles),
                (t1.block, t1.instr, t1.cycles),
                "decoded position, quantum {q}"
            );
            assert_eq!(
                (t0.block, t0.instr, t0.cycles),
                (t2.block, t2.instr, t2.cycles),
                "threaded position, quantum {q}"
            );
            match r0 {
                Err(_) | Ok((_, RunPause::Boundary)) => break,
                Ok((_, RunPause::PromotionReady)) => {
                    let n0 = run_task_until(p, &mut t0, &mut s0, 1, false);
                    let n1 = d.run_until(&mut t1, &mut s1, 1, false);
                    let n2 = t.run_until(&mut t2, &mut s2, 1, false);
                    assert_eq!(format!("{n0:?}"), format!("{n1:?}"));
                    assert_eq!(format!("{n0:?}"), format!("{n2:?}"));
                    if matches!(n0, Err(_) | Ok((_, RunPause::Boundary))) {
                        break;
                    }
                }
                Ok((_, RunPause::Quantum)) => {}
            }
        }
        assert_eq!(t0.regs, t1.regs, "decoded registers, quantum {q}");
        assert_eq!(t0.regs, t2.regs, "threaded registers, quantum {q}");
        assert_eq!(
            s0.heap.checksum(),
            s1.heap.checksum(),
            "decoded heap, quantum {q}"
        );
        assert_eq!(
            s0.heap.checksum(),
            s2.heap.checksum(),
            "threaded heap, quantum {q}"
        );
    }
}

/// The canonical reduce loop: `head` compares, `body` loads, accumulates
/// and steps, `exit` halts. `n` iterations over `heap[a..]`.
fn reduce_program(prppt_on: Option<&str>) -> crate::program::Program {
    let mut b = ProgramBuilder::new();
    let (i, n, a, w, acc, t) = (
        b.reg("i"),
        b.reg("n"),
        b.reg("a"),
        b.reg("w"),
        b.reg("acc"),
        b.reg("t"),
    );
    let (head, body, exit, handler) = (
        b.label("head"),
        b.label("body"),
        b.label("exit"),
        b.label("handler"),
    );
    let head_instrs = vec![
        Instr::Op {
            dst: t,
            op: BinOp::Lt,
            lhs: i,
            rhs: Operand::Reg(n),
        },
        Instr::IfJump {
            cond: t,
            target: Operand::Label(body),
        },
        Instr::Jump {
            target: Operand::Label(exit),
        },
    ];
    if prppt_on == Some("head") {
        b.annotated_block("head", Annotation::PromotionReady { handler }, head_instrs);
    } else {
        b.block("head", head_instrs);
    }
    let body_instrs = vec![
        Instr::HLoad {
            dst: w,
            base: a,
            offset: Operand::Reg(i),
        },
        Instr::Op {
            dst: acc,
            op: BinOp::Add,
            lhs: acc,
            rhs: Operand::Reg(w),
        },
        Instr::Op {
            dst: i,
            op: BinOp::Add,
            lhs: i,
            rhs: Operand::Int(1),
        },
        Instr::Jump {
            target: Operand::Label(head),
        },
    ];
    if prppt_on == Some("body") {
        b.annotated_block("body", Annotation::PromotionReady { handler }, body_instrs);
    } else {
        b.block("body", body_instrs);
    }
    b.block("exit", vec![Instr::Halt]);
    b.block(
        "handler",
        vec![Instr::Jump {
            target: Operand::Label(head),
        }],
    );
    b.entry(head);
    b.build().unwrap()
}

const REDUCE_QUANTA: &[u64] = &[1, 2, 3, 4, 5, 6, 7, 11, 13, u64::MAX];

/// Compiling the same program twice yields identical spans, payloads,
/// provenance, and side tables.
#[test]
fn compile_is_deterministic() {
    for p in [prod(), fib(), reduce_program(None)] {
        let a = ThreadedProgram::compile(&p);
        let b = ThreadedProgram::compile(&p);
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.src, b.src);
        assert_eq!(a.shapes, b.shapes);
        assert_eq!(a.pc_of, b.pc_of);
        assert_eq!(a.block_entry, b.block_entry);
        assert_eq!(a.prppt_entry, b.prppt_entry);
    }
}

/// Every span maps back to a contiguous source range, and the ranges of
/// each block tile its instruction list exactly.
#[test]
fn spans_tile_blocks_exactly() {
    for p in [prod(), fib(), reduce_program(None)] {
        let t = ThreadedProgram::compile(&p);
        for (label, block) in p.iter() {
            let mut expected = 0u32;
            for pc in 0..t.span_count() {
                let s = t.source(pc);
                if s.block as usize != label.index() {
                    continue;
                }
                assert_eq!(
                    s.instr,
                    expected,
                    "gap or overlap in {}",
                    p.label_name(label)
                );
                assert!(s.len >= 1);
                expected += s.len;
            }
            assert_eq!(
                expected as usize,
                block.instrs.len(),
                "block {} not fully covered",
                p.label_name(label)
            );
        }
    }
}

/// `pc_of` marks exactly the first instruction of each span; interiors
/// (fused constituents and merged micro-ops) stay [`MID`].
#[test]
fn pc_of_marks_span_interiors() {
    for p in [prod(), fib(), reduce_program(None)] {
        let t = ThreadedProgram::compile(&p);
        for pc in 0..t.span_count() {
            let s = t.source(pc);
            let base = t.base.instr_base[s.block as usize];
            assert_eq!(t.pc_of[(base + s.instr) as usize], pc as u32);
            for k in 1..s.len {
                assert_eq!(t.pc_of[(base + s.instr + k) as usize], MID);
            }
        }
    }
}

/// Adjacent specialised ALU singles merge into one dispatch, and the
/// merged span splits stepwise under tight quanta exactly like the
/// reference.
#[test]
fn alu_pairs_merge_and_split() {
    let mut b = ProgramBuilder::new();
    let (i, acc, t) = (b.reg("i"), b.reg("acc"), b.reg("t"));
    let loop_l = b.label("loop");
    b.block(
        "loop",
        vec![
            Instr::Op {
                dst: acc,
                op: BinOp::Mul,
                lhs: acc,
                rhs: Operand::Int(3),
            },
            Instr::Op {
                dst: acc,
                op: BinOp::Add,
                lhs: acc,
                rhs: Operand::Reg(i),
            },
            Instr::Op {
                dst: i,
                op: BinOp::Add,
                lhs: i,
                rhs: Operand::Int(1),
            },
            Instr::Op {
                dst: t,
                op: BinOp::Lt,
                lhs: i,
                rhs: Operand::Int(6),
            },
            Instr::IfJump {
                cond: t,
                target: Operand::Label(loop_l),
            },
            Instr::Halt,
        ],
    );
    let p = b.build().unwrap();
    let t = ThreadedProgram::compile(&p);
    // Decoded: OpMul, OpAdd, StepCmpBranch, Boundary. Threaded merges
    // the first two into an Alu2 span.
    assert_eq!(t.span_count(), 3);
    assert_eq!(t.shape(0), Shape::Alu2);
    assert_eq!(t.shape(1), Shape::Fused);
    assert_eq!(t.shape(2), Shape::Boundary);
    assert_eq!(t.source(0).len, 2);
    three_way(
        &p,
        &[],
        |task, _| {
            task.regs.write(i, Value::Int(0));
            task.regs.write(acc, Value::Int(0));
        },
        &[1, 2, 3, 4, 5, u64::MAX],
        false,
    );
}

/// The reduce shape compiles to a whole-loop template on the head span,
/// with the body merged as heap-load + accumulate, and stays
/// bit-identical to the reference under every quantum.
#[test]
fn reduce_loop_template_installs_and_matches() {
    let p = reduce_program(None);
    let t = ThreadedProgram::compile(&p);
    assert_eq!(t.shape(0), Shape::ReduceLoop);
    assert_eq!(t.shape(1), Shape::HLoadOp);
    assert_eq!(t.shape(2), Shape::Fused);
    assert_eq!(t.shape(3), Shape::Boundary);
    let (i, n, a, acc) = (
        p.reg("i").unwrap(),
        p.reg("n").unwrap(),
        p.reg("a").unwrap(),
        p.reg("acc").unwrap(),
    );
    let data: Vec<i64> = (1..=10).collect();
    three_way(
        &p,
        &data,
        |task, base| {
            task.regs.write(i, Value::Int(0));
            task.regs.write(n, Value::Int(10));
            task.regs.write(a, Value::Int(base));
            task.regs.write(acc, Value::Int(0));
        },
        REDUCE_QUANTA,
        false,
    );
    // And the sum is right (spot check, not just agreement).
    let mut stores = Stores::new();
    let base = stores.heap.alloc_init(&data);
    let mut task = TaskState::new(&p, p.entry());
    task.regs.write(i, Value::Int(0));
    task.regs.write(n, Value::Int(10));
    task.regs.write(a, Value::Int(base));
    task.regs.write(acc, Value::Int(0));
    let (steps, pause) = t
        .run_until(&mut task, &mut stores, u64::MAX, false)
        .unwrap();
    assert_eq!(pause, RunPause::Boundary);
    // 3 head instrs per check (2 when taken +1 amortized on exit) plus 4
    // body instrs per iteration: 10 * (2 + 4) + 3 on the exit check.
    assert_eq!(steps, 63);
    assert_eq!(task.regs.read(acc).unwrap(), Value::Int(55));
}

/// Promotion watch over a reduce loop: with the `prppt` annotation on
/// the head, the watch stream pauses at the head entry (template
/// replaced by a pause); with it on the body, the template is demoted
/// to a plain loop-head dispatch so the pause is observed at the body
/// entry. Both must match the reference exactly.
#[test]
fn reduce_loop_promotion_watch_matches() {
    for site in ["head", "body"] {
        let p = reduce_program(Some(site));
        let t = ThreadedProgram::compile(&p);
        assert_eq!(
            t.shape(0),
            Shape::ReduceLoop,
            "template still installs with prppt on {site}"
        );
        assert!(t.is_prppt_entry(if site == "head" { 0 } else { 1 }));
        let (i, n, a, acc) = (
            p.reg("i").unwrap(),
            p.reg("n").unwrap(),
            p.reg("a").unwrap(),
            p.reg("acc").unwrap(),
        );
        let data: Vec<i64> = (1..=6).collect();
        three_way(
            &p,
            &data,
            |task, base| {
                task.regs.write(i, Value::Int(0));
                task.regs.write(n, Value::Int(6));
                task.regs.write(a, Value::Int(base));
                task.regs.write(acc, Value::Int(0));
            },
            REDUCE_QUANTA,
            true,
        );
    }
}

/// A fault in the interior of a merged span leaves the task at the same
/// partially-advanced position, with the same step count and error, as
/// the reference.
#[test]
fn merged_span_fault_positions_match() {
    let mut b = ProgramBuilder::new();
    let (x, y, z) = (b.reg("x"), b.reg("y"), b.reg("z"));
    b.block(
        "main",
        vec![
            Instr::Op {
                dst: x,
                op: BinOp::Add,
                lhs: x,
                rhs: Operand::Int(1),
            },
            // `z` is never initialised: the second constituent faults.
            Instr::Op {
                dst: y,
                op: BinOp::Add,
                lhs: z,
                rhs: Operand::Int(1),
            },
            Instr::Halt,
        ],
    );
    let p = b.build().unwrap();
    let t = ThreadedProgram::compile(&p);
    assert_eq!(t.shape(0), Shape::Alu2);
    three_way(
        &p,
        &[],
        |task, _| {
            task.regs.write(x, Value::Int(0));
        },
        &[1, 2, 3, u64::MAX],
        false,
    );
}

/// A heap fault raised inside the whole-loop template (out-of-range
/// load on a later iteration) is attributed to the body span's
/// position, identically to the reference.
#[test]
fn reduce_loop_fault_positions_match() {
    let p = reduce_program(None);
    let (i, n, a, acc) = (
        p.reg("i").unwrap(),
        p.reg("n").unwrap(),
        p.reg("a").unwrap(),
        p.reg("acc").unwrap(),
    );
    // n runs past the end of the 5-element array: iteration 5 faults
    // inside the template's load.
    let data: Vec<i64> = (1..=5).collect();
    three_way(
        &p,
        &data,
        |task, base| {
            task.regs.write(i, Value::Int(0));
            task.regs.write(n, Value::Int(10));
            task.regs.write(a, Value::Int(base));
            task.regs.write(acc, Value::Int(0));
        },
        REDUCE_QUANTA,
        false,
    );
}

/// The watch stream pauses exactly at `prppt` entries and nowhere else,
/// for every library program.
#[test]
fn watch_handlers_replace_prppt_entries() {
    for p in [prod(), fib()] {
        let t = ThreadedProgram::compile(&p);
        let pauses = (0..t.span_count()).filter(|&pc| t.prppt_entry[pc]).count();
        let handlers = (0..p.block_count())
            .filter(|&i| t.base.handlers[i].is_some())
            .count();
        assert_eq!(pauses, handlers);
        for pc in 0..t.span_count() {
            if t.prppt_entry[pc] {
                assert!(t.watch_handlers[pc] as usize != t.handlers[pc] as usize);
            }
        }
    }
}

/// Full three-way agreement on the library programs, plain and watch
/// mode, under adversarial quanta (runs to the first boundary, like the
/// decoded suite; whole-scheduler coverage lives in
/// `engine_equivalence`).
#[test]
fn library_programs_three_way() {
    for p in [prod(), fib()] {
        for watch in [false, true] {
            three_way(&p, &[], |_, _| {}, &[1, 2, 3, 5, 7, u64::MAX], watch);
        }
    }
}

/// The guarded-update loop (Floyd–Warshall relaxation shape): `head`
/// counts `j` to `n`; `body` loads `heap[hb + ra*stride + j]`, combines
/// it with `dd`, loads `heap[hb + rb*stride + j]`, and compares; `then`
/// conditionally stores the combined value back; `endif` steps `j`.
fn guarded_program(prppt_on: Option<&str>) -> crate::program::Program {
    let mut b = ProgramBuilder::new();
    let (j, n, ra, rb, stride, hb, dd) = (
        b.reg("j"),
        b.reg("n"),
        b.reg("ra"),
        b.reg("rb"),
        b.reg("stride"),
        b.reg("hb"),
        b.reg("dd"),
    );
    let (t, x1, x2, a, cand, x3, x4, bb, c, y1, y2) = (
        b.reg("t"),
        b.reg("x1"),
        b.reg("x2"),
        b.reg("a"),
        b.reg("cand"),
        b.reg("x3"),
        b.reg("x4"),
        b.reg("bb"),
        b.reg("c"),
        b.reg("y1"),
        b.reg("y2"),
    );
    let (head, body, then_b, else_b, endif, exit, handler) = (
        b.label("head"),
        b.label("body"),
        b.label("then_b"),
        b.label("else_b"),
        b.label("endif"),
        b.label("exit"),
        b.label("handler"),
    );
    let op = |dst, op, lhs, rhs| Instr::Op { dst, op, lhs, rhs };
    let head_instrs = vec![
        op(t, BinOp::Lt, j, Operand::Reg(n)),
        Instr::IfJump {
            cond: t,
            target: Operand::Label(body),
        },
        Instr::Jump {
            target: Operand::Label(exit),
        },
    ];
    if prppt_on == Some("head") {
        b.annotated_block("head", Annotation::PromotionReady { handler }, head_instrs);
    } else {
        b.block("head", head_instrs);
    }
    let body_instrs = vec![
        op(x1, BinOp::Mul, ra, Operand::Reg(stride)),
        op(x2, BinOp::Add, x1, Operand::Reg(j)),
        Instr::HLoad {
            dst: a,
            base: hb,
            offset: Operand::Reg(x2),
        },
        op(cand, BinOp::Add, dd, Operand::Reg(a)),
        op(x3, BinOp::Mul, rb, Operand::Reg(stride)),
        op(x4, BinOp::Add, x3, Operand::Reg(j)),
        Instr::HLoad {
            dst: bb,
            base: hb,
            offset: Operand::Reg(x4),
        },
        op(c, BinOp::Lt, cand, Operand::Reg(bb)),
        Instr::IfJump {
            cond: c,
            target: Operand::Label(then_b),
        },
        Instr::Jump {
            target: Operand::Label(else_b),
        },
    ];
    if prppt_on == Some("body") {
        b.annotated_block("body", Annotation::PromotionReady { handler }, body_instrs);
    } else {
        b.block("body", body_instrs);
    }
    let then_instrs = vec![
        op(y1, BinOp::Mul, rb, Operand::Reg(stride)),
        op(y2, BinOp::Add, y1, Operand::Reg(j)),
        Instr::HStore {
            base: hb,
            offset: Operand::Reg(y2),
            src: Operand::Reg(cand),
        },
        Instr::Jump {
            target: Operand::Label(endif),
        },
    ];
    if prppt_on == Some("then") {
        b.annotated_block(
            "then_b",
            Annotation::PromotionReady { handler },
            then_instrs,
        );
    } else {
        b.block("then_b", then_instrs);
    }
    b.block(
        "else_b",
        vec![Instr::Jump {
            target: Operand::Label(endif),
        }],
    );
    b.block(
        "endif",
        vec![
            op(j, BinOp::Add, j, Operand::Int(1)),
            Instr::Jump {
                target: Operand::Label(head),
            },
        ],
    );
    b.block("exit", vec![Instr::Halt]);
    b.block(
        "handler",
        vec![Instr::Jump {
            target: Operand::Label(head),
        }],
    );
    b.entry(head);
    b.build().unwrap()
}

const GUARDED_QUANTA: &[u64] = &[1, 2, 3, 5, 7, 11, 13, 15, 16, 17, 31, u64::MAX];

fn init_guarded(p: &Program, nv: i64) -> impl Fn(&mut TaskState, i64) + '_ {
    move |task, base| {
        for (name, v) in [
            ("j", 0),
            ("n", nv),
            ("ra", 0),
            ("rb", 1),
            ("stride", 4),
            ("dd", 1),
        ] {
            task.regs.write(p.reg(name).unwrap(), Value::Int(v));
        }
        task.regs.write(p.reg("hb").unwrap(), Value::Int(base));
    }
}

/// The guarded-update shape compiles to a whole-loop template on the
/// head span, stays bit-identical under every quantum, and relaxes the
/// right cells.
#[test]
fn guarded_loop_template_installs_and_matches() {
    let p = guarded_program(None);
    let t = ThreadedProgram::compile(&p);
    assert_eq!(t.shape(0), Shape::GuardedLoop);
    // Body tiles as [Op2HLoad, Alu2, Plain, Plain, Fused].
    assert_eq!(t.shape(1), Shape::Op2HLoad);
    assert_eq!(t.shape(2), Shape::Alu2);
    assert_eq!(t.shape(5), Shape::Fused);
    assert_eq!(t.shape(6), Shape::Op2HStore);
    // Row a = [9,7,5,3], row b = [1,2,4,6]; cand = 1 + a[j] beats b[j]
    // only at j = 3 (4 < 6), so exactly one store lands.
    let data: Vec<i64> = vec![9, 7, 5, 3, 1, 2, 4, 6];
    three_way(&p, &data, init_guarded(&p, 4), GUARDED_QUANTA, false);
    let mut stores = Stores::new();
    let base = stores.heap.alloc_init(&data);
    let mut task = TaskState::new(&p, p.entry());
    init_guarded(&p, 4)(&mut task, base);
    let (steps, pause) = t
        .run_until(&mut task, &mut stores, u64::MAX, false)
        .unwrap();
    assert_eq!(pause, RunPause::Boundary);
    // Three fall-through iterations (15 steps), one taken (17), and the
    // 3-step exit check.
    assert_eq!(steps, 3 * 15 + 17 + 3);
    assert_eq!(
        crate::machine::heap::Heap::load_in(stores.heap.words_mut(), base, 7).unwrap(),
        4
    );
}

/// A heap fault mid-template (the guarded loop walking past the
/// allocation) reports the same error at the same partially-advanced
/// position as the reference, under every quantum.
#[test]
fn guarded_loop_fault_positions_match() {
    let p = guarded_program(None);
    // n = 9 walks row b (offsets 4..13) past the 8-word allocation.
    let data: Vec<i64> = vec![9, 7, 5, 3, 1, 2, 4, 6];
    three_way(&p, &data, init_guarded(&p, 9), GUARDED_QUANTA, false);
}

/// Promotion watch over a guarded loop: a `prppt` annotation on the
/// head pauses there; on the body or then block, the template is
/// demoted to a plain loop-head dispatch so the pause is observed at
/// the right block entry. All must match the reference exactly.
#[test]
fn guarded_loop_promotion_watch_matches() {
    for site in ["head", "body", "then"] {
        let p = guarded_program(Some(site));
        let t = ThreadedProgram::compile(&p);
        assert_eq!(
            t.shape(0),
            Shape::GuardedLoop,
            "template still installs with prppt on {site}"
        );
        let data: Vec<i64> = vec![9, 7, 5, 3, 1, 2, 4, 6];
        three_way(&p, &data, init_guarded(&p, 4), GUARDED_QUANTA, true);
    }
}
