//! Threaded-code execution tier: direct-dispatch compilation of the
//! decoded micro-op stream.
//!
//! [`DecodedProgram`] (the second tier) already pays decode costs once,
//! but its execute loop still funnels every micro-op through one
//! centralized `match` — a single indirect branch whose per-opcode
//! pattern the predictor must re-learn at every step, plus per-step
//! operand field extraction. [`ThreadedProgram::compile`] lowers each
//! decoded micro-op into a *pre-bound handler*: an array of
//! `fn(&mut Frame, &OpData) -> u32` function pointers paired with a
//! fixed-layout operand record in which register slots, jump targets,
//! operators, and immediates are all resolved at compile time. The
//! execute loop is then
//!
//! ```text
//! pc = handlers[pc](&mut frame, &ops[pc])
//! ```
//!
//! — one indirect call, no opcode decode, no operand indexing. (Stable
//! Rust has no computed goto and no guaranteed tail calls, so classic
//! direct threading — jumping handler-to-handler — is not expressible;
//! the fn-pointer array with a tight trampoline loop is the closest
//! sound encoding, and keeps every handler a real function the
//! optimizer specializes independently.)
//!
//! On top of the decoded tier's fused superinstructions (which keep
//! their specialized handlers), compilation re-segments each block to
//! merge adjacent plain micro-ops into wider dispatches — ALU pairs,
//! heap-load + ALU, double heap loads, and the two-ops-then-heap-access
//! address-computation triples — and recognizes the canonical reduce
//! loop (loop-head compare + load/accumulate/step body) as a single
//! whole-loop template handler that runs iterations back-to-back
//! without leaving the handler. Merging is sound because validated
//! programs only ever jump to block entries, so span interiors are
//! unreachable as dispatch points.
//!
//! **Equivalence obligations.** The tier preserves the reference
//! interpreter's observable semantics bit-for-bit: the same pause
//! priority (quantum, then promotion watch, then boundary), the same
//! step counting (a merged handler counts one step per covered source
//! instruction, and a quantum that lands inside one falls back to
//! stepwise execution at exactly the reference split point), the same
//! faults with the same partially-advanced task positions, and the
//! same batched cycle/work/span/cost accounting. The `engine_equivalence`
//! and `decoded_prop`/`threaded_quantum` differential suites hold all
//! three tiers to identical outcomes.

use crate::decoded::{DecodedProgram, IntSrc, Src, UOp, UopSource, MID};
use crate::isa::{BinOp, Label, Reg};
use crate::machine::step::{exec_plain, RunPause, Stores, TaskState};
use crate::machine::MachineError;
use crate::program::Program;

mod handlers;

use handlers::*;
pub(crate) use handlers::{Frame, Handler, OpData};

/// The dispatch shape of one threaded span — introspection for tests
/// and stats, never consulted on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Shape {
    /// One plain micro-op.
    Plain,
    /// One decoded fused superinstruction (CmpBranch / CmpBranchBranch /
    /// OpJump / StepCmpBranch).
    Fused,
    /// Two adjacent specialised ALU ops.
    Alu2,
    /// Heap load followed by a specialised ALU op.
    HLoadOp,
    /// Two adjacent heap loads with register offsets.
    HLoad2,
    /// Two ALU ops feeding a heap load through the second destination.
    Op2HLoad,
    /// Two ALU ops feeding a heap store through the second destination.
    Op2HStore,
    /// A whole-loop reduce template installed over a loop-head block.
    ReduceLoop,
    /// A whole-loop guarded-update template (the relaxation shape:
    /// load, combine, compare, conditionally store) installed over a
    /// loop-head block, with its wide payload in the side table.
    GuardedLoop,
    /// A scheduling/allocation boundary.
    Boundary,
}

/// Whether `op` is one of the five specialised operators — total on
/// integer operands, so loop templates can pre-validate iterations.
fn is_specialised(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Lt | BinOp::Le
    )
}

/// Whether the register ids are pairwise distinct (template
/// eligibility: cached locals must not alias).
fn all_distinct(rs: &[Reg]) -> bool {
    rs.iter()
        .enumerate()
        .all(|(k, r)| rs[k + 1..].iter().all(|s| s != r))
}

/// Destructures the five specialised ALU micro-ops.
fn alu_parts(u: UOp) -> Option<(Reg, Reg, Src, BinOp)> {
    match u {
        UOp::OpAdd { dst, lhs, rhs } => Some((dst, lhs, rhs, BinOp::Add)),
        UOp::OpSub { dst, lhs, rhs } => Some((dst, lhs, rhs, BinOp::Sub)),
        UOp::OpMul { dst, lhs, rhs } => Some((dst, lhs, rhs, BinOp::Mul)),
        UOp::OpLt { dst, lhs, rhs } => Some((dst, lhs, rhs, BinOp::Lt)),
        UOp::OpLe { dst, lhs, rhs } => Some((dst, lhs, rhs, BinOp::Le)),
        _ => None,
    }
}

/// How many decoded micro-ops starting at `i` (all within `[i, end)`,
/// one block) merge into a single threaded span, and the span's shape.
fn merge_at(d: &DecodedProgram, i: usize, end: usize) -> (usize, Shape) {
    // Address-computation triples: two register-rhs ALU ops whose second
    // destination indexes a heap access.
    if i + 2 < end {
        if let (Some((_, _, Src::Reg(_), _)), Some((d2, _, Src::Reg(_), _))) =
            (alu_parts(d.uops[i]), alu_parts(d.uops[i + 1]))
        {
            match d.uops[i + 2] {
                UOp::HLoad {
                    offset: IntSrc::Reg(o),
                    ..
                } if o == d2 => return (3, Shape::Op2HLoad),
                UOp::HStore {
                    offset: IntSrc::Reg(o),
                    src: IntSrc::Reg(_),
                    ..
                } if o == d2 => return (3, Shape::Op2HStore),
                _ => {}
            }
        }
    }
    if i + 1 < end {
        match (d.uops[i], d.uops[i + 1]) {
            (UOp::HLoad { offset: o1, .. }, u2) if !matches!(o1, IntSrc::Bad(_)) => {
                if let Some((_, _, rhs, _)) = alu_parts(u2) {
                    if !matches!(rhs, Src::Label(_)) {
                        return (2, Shape::HLoadOp);
                    }
                }
                if let UOp::HLoad {
                    offset: IntSrc::Reg(_),
                    ..
                } = u2
                {
                    if matches!(o1, IntSrc::Reg(_)) {
                        return (2, Shape::HLoad2);
                    }
                }
            }
            (u1, u2) => {
                if let (Some((_, _, r1, _)), Some((_, _, r2, _))) = (alu_parts(u1), alu_parts(u2)) {
                    if !matches!(r1, Src::Label(_)) && !matches!(r2, Src::Label(_)) {
                        return (2, Shape::Alu2);
                    }
                }
            }
        }
    }
    let shape = match d.uops[i] {
        UOp::CmpBranch { .. }
        | UOp::CmpBranchBranch { .. }
        | UOp::OpJump { .. }
        | UOp::StepCmpBranch { .. } => Shape::Fused,
        UOp::Boundary => Shape::Boundary,
        _ => Shape::Plain,
    };
    (1, shape)
}

/// A [`Program`] compiled to directly dispatched handler arrays.
///
/// Owns its [`DecodedProgram`] (for the stepwise-fallback instruction
/// stream and the shared side tables); compile once, share across cores
/// and tasks. Construction is deterministic.
#[derive(Clone)]
pub struct ThreadedProgram {
    /// The decoded form this was compiled from; supplies the flat
    /// instruction stream for stepwise fallback and the per-block
    /// metadata accessors.
    base: DecodedProgram,
    /// Plain-stream handler per threaded pc.
    handlers: Vec<Handler>,
    /// Watch-stream handlers: identical except `prppt` block entries
    /// pause (and loop templates whose body is promotion-ready fall
    /// back to their plain loop-head handler).
    watch_handlers: Vec<Handler>,
    /// Pre-bound operand payload per threaded pc.
    ops: Vec<OpData>,
    /// Source provenance per threaded pc.
    src: Vec<UopSource>,
    /// Per block: threaded pc of its entry.
    block_entry: Vec<u32>,
    /// Per flat instruction index: the threaded pc starting there, or
    /// [`MID`] when interior to a merged/fused span.
    pc_of: Vec<u32>,
    /// `prppt` entry flag per threaded pc.
    prppt_entry: Vec<bool>,
    /// Dispatch shape per threaded pc (tests/stats only).
    shapes: Vec<Shape>,
    /// Guarded-update loop payloads, indexed by the head span's `imm2`.
    guarded: Vec<GuardedLoop>,
}

impl std::fmt::Debug for ThreadedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedProgram")
            .field("spans", &self.ops.len())
            .field("shapes", &self.shapes)
            .field("src", &self.src)
            .field("block_entry", &self.block_entry)
            .finish_non_exhaustive()
    }
}

impl ThreadedProgram {
    /// Compiles a validated program: decode, re-segment each block into
    /// merged spans, bind a handler + operand record per span, then
    /// install whole-loop templates over recognized reduce loops.
    pub fn compile(program: &Program) -> ThreadedProgram {
        let d = DecodedProgram::decode(program);
        let nblocks = d.block_entry.len();
        let nuops = d.uops.len();

        // Pass 1: re-segment every block into merged spans. `d2t` maps
        // a decoded pc to the threaded pc of the span starting there
        // (interior decoded pcs keep MID and are never jump targets).
        let mut spans: Vec<(usize, usize, Shape)> = Vec::with_capacity(nuops);
        let mut d2t = vec![MID; nuops];
        let mut block_entry = Vec::with_capacity(nblocks);
        for b in 0..nblocks {
            let dstart = d.block_entry[b] as usize;
            let dend = if b + 1 < nblocks {
                d.block_entry[b + 1] as usize
            } else {
                nuops
            };
            block_entry.push(spans.len() as u32);
            let mut i = dstart;
            while i < dend {
                let (m, shape) = merge_at(&d, i, dend);
                d2t[i] = spans.len() as u32;
                spans.push((i, m, shape));
                i += m;
            }
        }
        assert!(
            spans.len() < X_QUANTUM as usize,
            "program too large for threaded pc encoding"
        );

        // Pass 2: emit one handler + payload per span.
        let mut handlers: Vec<Handler> = Vec::with_capacity(spans.len());
        let mut ops = Vec::with_capacity(spans.len());
        let mut src = Vec::with_capacity(spans.len());
        let mut prppt_entry = Vec::with_capacity(spans.len());
        let mut shapes = Vec::with_capacity(spans.len());
        let mut pc_of = vec![MID; d.flat.len()];
        let map = |t: u32| d2t[t as usize];
        for (ti, &(i, m, shape)) in spans.iter().enumerate() {
            let s0 = d.src[i];
            let len: u32 = d.src[i..i + m].iter().map(|s| s.len).sum();
            src.push(UopSource {
                block: s0.block,
                instr: s0.instr,
                len,
            });
            pc_of[(d.instr_base[s0.block as usize] + s0.instr) as usize] = ti as u32;
            prppt_entry.push(d.prppt_entry[i]);
            shapes.push(shape);
            let next = (ti + 1) as u32;
            let (h, o) = match shape {
                Shape::Plain | Shape::Fused | Shape::Boundary => emit_single(d.uops[i], next, &map),
                Shape::Alu2 => {
                    let (da, la, ra, opa) = alu_parts(d.uops[i]).expect("alu2 first");
                    let (db, lb, rb, opb) = alu_parts(d.uops[i + 1]).expect("alu2 second");
                    let mut o = OpData::new();
                    o.t[0] = next;
                    o.r[0] = da.index() as u32;
                    o.r[1] = la.index() as u32;
                    o.op_a = opa;
                    o.r[3] = db.index() as u32;
                    o.r[4] = lb.index() as u32;
                    o.op_b = opb;
                    let ka = match ra {
                        Src::Reg(r) => {
                            o.r[2] = r.index() as u32;
                            true
                        }
                        Src::Int(n) => {
                            o.imm = n;
                            false
                        }
                        Src::Label(_) => unreachable!("label rhs never merges"),
                    };
                    let kb = match rb {
                        Src::Reg(r) => {
                            o.r[5] = r.index() as u32;
                            true
                        }
                        Src::Int(n) => {
                            o.imm2 = n;
                            false
                        }
                        Src::Label(_) => unreachable!("label rhs never merges"),
                    };
                    let h: Handler = match (ka, kb) {
                        (true, true) => h_alu2_rr,
                        (true, false) => h_alu2_ri,
                        (false, true) => h_alu2_ir,
                        (false, false) => h_alu2_ii,
                    };
                    (h, o)
                }
                Shape::HLoadOp => {
                    let UOp::HLoad { dst, base, offset } = d.uops[i] else {
                        unreachable!("hload-op first");
                    };
                    let (db, lb, rb, opb) = alu_parts(d.uops[i + 1]).expect("hload-op second");
                    let mut o = OpData::new();
                    o.t[0] = next;
                    o.r[0] = dst.index() as u32;
                    o.r[1] = base.index() as u32;
                    o.r[3] = db.index() as u32;
                    o.r[4] = lb.index() as u32;
                    o.op_b = opb;
                    let ka = match offset {
                        IntSrc::Reg(r) => {
                            o.r[2] = r.index() as u32;
                            true
                        }
                        IntSrc::Imm(n) => {
                            o.imm = n;
                            false
                        }
                        IntSrc::Bad(_) => unreachable!("bad offset never merges"),
                    };
                    let kb = match rb {
                        Src::Reg(r) => {
                            o.r[5] = r.index() as u32;
                            true
                        }
                        Src::Int(n) => {
                            o.imm2 = n;
                            false
                        }
                        Src::Label(_) => unreachable!("label rhs never merges"),
                    };
                    let h: Handler = match (ka, kb) {
                        (true, true) => h_hlop_rr,
                        (true, false) => h_hlop_ri,
                        (false, true) => h_hlop_ir,
                        (false, false) => h_hlop_ii,
                    };
                    (h, o)
                }
                Shape::HLoad2 => {
                    let (
                        UOp::HLoad {
                            dst: d1,
                            base: b1,
                            offset: IntSrc::Reg(o1),
                        },
                        UOp::HLoad {
                            dst: d2,
                            base: b2,
                            offset: IntSrc::Reg(o2),
                        },
                    ) = (d.uops[i], d.uops[i + 1])
                    else {
                        unreachable!("hload pair");
                    };
                    let mut o = OpData::new();
                    o.t[0] = next;
                    o.r = [
                        d1.index() as u32,
                        b1.index() as u32,
                        o1.index() as u32,
                        d2.index() as u32,
                        b2.index() as u32,
                        o2.index() as u32,
                        0,
                        0,
                    ];
                    (h_hl2 as Handler, o)
                }
                Shape::Op2HLoad | Shape::Op2HStore => {
                    let (da, la, ra, opa) = alu_parts(d.uops[i]).expect("op2 first");
                    let (db, lb, rb, opb) = alu_parts(d.uops[i + 1]).expect("op2 second");
                    let (Src::Reg(rra), Src::Reg(rrb)) = (ra, rb) else {
                        unreachable!("op2 rhs are registers");
                    };
                    let mut o = OpData::new();
                    o.t[0] = next;
                    o.r[0] = da.index() as u32;
                    o.r[1] = la.index() as u32;
                    o.r[2] = rra.index() as u32;
                    o.op_a = opa;
                    o.r[3] = db.index() as u32;
                    o.r[4] = lb.index() as u32;
                    o.r[5] = rrb.index() as u32;
                    o.op_b = opb;
                    if shape == Shape::Op2HLoad {
                        let UOp::HLoad { dst, base, .. } = d.uops[i + 2] else {
                            unreachable!("op2-hload third");
                        };
                        o.r[6] = dst.index() as u32;
                        o.r[7] = base.index() as u32;
                        (h_op2_hload as Handler, o)
                    } else {
                        let UOp::HStore {
                            base,
                            src: IntSrc::Reg(sr),
                            ..
                        } = d.uops[i + 2]
                        else {
                            unreachable!("op2-hstore third");
                        };
                        o.r[6] = base.index() as u32;
                        o.r[7] = sr.index() as u32;
                        (h_op2_hstore as Handler, o)
                    }
                }
                Shape::ReduceLoop | Shape::GuardedLoop => unreachable!("installed in pass 3"),
            };
            handlers.push(h);
            ops.push(o);
        }

        // Pass 3: recognize whole loops and install templates over
        // their head spans. Reduce loops get the 8-register OpData
        // payload (and, when statically eligible, the bulk fast path);
        // guarded-update loops are too wide for one OpData, so their
        // roles go to the side table indexed through `imm2`.
        let mut guarded: Vec<GuardedLoop> = Vec::new();
        let mut guarded_prppt: Vec<bool> = Vec::new();
        for ti in 0..spans.len() {
            if let Some((o, fast)) = match_reduce(&d, &spans, &src, &map, ti) {
                ops[ti] = o;
                handlers[ti] = if fast {
                    h_reduce_loop_fast
                } else {
                    h_reduce_loop
                };
                shapes[ti] = Shape::ReduceLoop;
                continue;
            }
            if let Some((g, blocks)) = match_guarded(&d, &spans, &src, &map, ti) {
                ops[ti].imm2 = guarded.len() as i64;
                ops[ti].t[2] = ti as u32;
                guarded_prppt.push(prppt_entry[ti] || blocks.iter().any(|&b| prppt_entry[b]));
                guarded.push(g);
                handlers[ti] = h_guarded_loop;
                shapes[ti] = Shape::GuardedLoop;
            }
        }

        // Watch stream: promotion-ready entries pause; a loop template
        // any of whose loop blocks is promotion-ready must instead
        // dispatch those spans (so the pause is observed at the right
        // block entry), which its plain CmpBranchBranch head handler
        // does with the same payload.
        let mut watch_handlers = handlers.clone();
        for pc in 0..watch_handlers.len() {
            if prppt_entry[pc] {
                watch_handlers[pc] = h_prppt;
            } else if (shapes[pc] == Shape::ReduceLoop && prppt_entry[ops[pc].t[0] as usize])
                || (shapes[pc] == Shape::GuardedLoop && guarded_prppt[ops[pc].imm2 as usize])
            {
                watch_handlers[pc] = h_cbb_r;
            }
        }

        ThreadedProgram {
            base: d,
            handlers,
            watch_handlers,
            ops,
            src,
            block_entry,
            pc_of,
            prppt_entry,
            shapes,
            guarded,
        }
    }

    /// Number of threaded spans (dispatch points).
    pub fn span_count(&self) -> usize {
        self.ops.len()
    }

    /// The decoded program this tier was compiled from.
    pub fn decoded(&self) -> &DecodedProgram {
        &self.base
    }

    /// Source provenance of span `pc`.
    pub fn source(&self, pc: usize) -> UopSource {
        self.src[pc]
    }

    /// Writes `task.block`/`task.instr` to the entry of span `pc`.
    #[inline]
    fn sync(&self, task: &mut TaskState, pc: usize) {
        let s = self.src[pc];
        task.block = Label::from_index(s.block as usize);
        task.instr = s.instr as usize;
    }

    /// The flat instruction index of the task's current position.
    #[inline]
    fn flat_index(&self, task: &TaskState) -> usize {
        self.base.instr_base[task.block.index()] as usize + task.instr
    }

    /// Executes a run of consecutive plain instructions of `task` via
    /// direct dispatch, stopping early at scheduling-relevant points.
    ///
    /// Observably identical to [`crate::machine::run_task_until`] and
    /// [`DecodedProgram::run_until`] — same `(steps, pause)` results,
    /// same priority order, same faults at the same task positions, and
    /// the same batched counter updates.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a transition rule; counters
    /// include the faulting instruction, matching the reference.
    pub fn run_until(
        &self,
        task: &mut TaskState,
        stores: &mut Stores,
        max_steps: u64,
        watch_promotion: bool,
    ) -> Result<(u64, RunPause), MachineError> {
        let mut steps = 0u64;
        let result = if watch_promotion {
            self.run_loop::<true>(task, stores, max_steps, &mut steps)
        } else {
            self.run_loop::<false>(task, stores, max_steps, &mut steps)
        };
        task.cycles += steps;
        task.rel_work += steps;
        task.rel_span += steps;
        if let Some(c) = &mut task.cost {
            c.steps += steps;
        }
        result.map(|pause| (steps, pause))
    }

    fn run_loop<const WATCH: bool>(
        &self,
        task: &mut TaskState,
        stores: &mut Stores,
        max_steps: u64,
        steps: &mut u64,
    ) -> Result<RunPause, MachineError> {
        let handlers = if WATCH {
            self.watch_handlers.as_slice()
        } else {
            self.handlers.as_slice()
        };
        loop {
            // Stepwise phase: the task position is authoritative. Runs
            // one source instruction at a time while the position is
            // interior to a merged/fused span (a resume after a
            // mid-span quantum split) and hands off to direct dispatch
            // at the first span boundary.
            let mut pc: usize = loop {
                if *steps >= max_steps {
                    return Ok(RunPause::Quantum);
                }
                let gi = self.flat_index(task);
                let p = self.pc_of[gi];
                if p != MID {
                    break p as usize;
                }
                match exec_plain(task, stores, &self.base.flat[gi]) {
                    Ok(true) => *steps += 1,
                    Ok(false) => return Ok(RunPause::Boundary),
                    Err(e) => {
                        *steps += 1;
                        return Err(e);
                    }
                }
            };

            // Dispatch phase: `pc` is authoritative; the task position
            // is synced only on exit or fault. The working sets are
            // borrowed once into the frame, and every step of the loop
            // is one indirect call through the handler table.
            let (exit, xpc, remaining, fparts, fpc, fault) = {
                let mut frame = Frame {
                    regs: task.regs.slice_mut(),
                    stacks: &mut stores.stacks,
                    hwords: stores.heap.words_mut(),
                    block_entry: &self.block_entry,
                    guarded: &self.guarded,
                    remaining: max_steps - *steps,
                    fault: None,
                    fault_parts: 0,
                    fault_pc: 0,
                };
                let exit = loop {
                    if frame.remaining == 0 {
                        break X_QUANTUM;
                    }
                    let next = handlers[pc](&mut frame, &self.ops[pc]);
                    if next >= X_QUANTUM {
                        break next;
                    }
                    pc = next as usize;
                };
                (
                    exit,
                    pc,
                    frame.remaining,
                    frame.fault_parts,
                    frame.fault_pc,
                    frame.fault,
                )
            };
            match exit {
                X_QUANTUM => {
                    *steps = max_steps;
                    self.sync(task, xpc);
                    return Ok(RunPause::Quantum);
                }
                X_BOUNDARY => {
                    *steps = max_steps - remaining;
                    self.sync(task, xpc);
                    return Ok(RunPause::Boundary);
                }
                X_PRPPT => {
                    *steps = max_steps - remaining;
                    self.sync(task, xpc);
                    return Ok(RunPause::PromotionReady);
                }
                X_SPLIT => {
                    // A multi-step span the budget cannot cover: honour
                    // the quantum exactly by executing its constituents
                    // stepwise, exactly like the decoded `split!`.
                    *steps = max_steps - remaining;
                    self.sync(task, xpc);
                    let gi = self.flat_index(task);
                    match exec_plain(task, stores, &self.base.flat[gi]) {
                        Ok(true) => *steps += 1,
                        Ok(false) => return Ok(RunPause::Boundary),
                        Err(e) => {
                            *steps += 1;
                            return Err(e);
                        }
                    }
                    // Back to the stepwise phase for the rest.
                }
                _ => {
                    // X_FAULT / X_FAULT_AT: reconstruct the reference
                    // position — the attributed span's source entry,
                    // advanced past the constituents that completed
                    // (the faulting one included).
                    let apc = if exit == X_FAULT_AT {
                        fpc as usize
                    } else {
                        xpc
                    };
                    let s = self.src[apc];
                    task.block = Label::from_index(s.block as usize);
                    task.instr = (s.instr + fparts) as usize;
                    *steps = max_steps - remaining + fparts as u64;
                    return Err(fault.expect("fault exit carries an error"));
                }
            }
        }
    }

    /// Dispatch shape of span `pc` (tests/stats).
    #[cfg(test)]
    pub(crate) fn shape(&self, pc: usize) -> Shape {
        self.shapes[pc]
    }

    /// Whether span `pc` starts a promotion-ready block: its watch-mode
    /// handler pauses instead of executing.
    pub fn is_prppt_entry(&self, pc: usize) -> bool {
        self.prppt_entry[pc]
    }
}

/// Recognizes the canonical reduce loop at head span `ti`: a loop-head
/// `CmpBranchBranch` whose taken block is exactly [HLoadOp(load +
/// accumulate-into-lhs), OpJump back to the head]. Returns the
/// template's payload and whether the bulk fast path is statically
/// eligible (`Lt`/`Le` head, `Add`/`Sub`/`Mul` accumulate, unit-step
/// back edge on the compare-lhs register which is also the load offset,
/// and non-aliasing loop registers).
fn match_reduce(
    d: &DecodedProgram,
    spans: &[(usize, usize, Shape)],
    src: &[UopSource],
    map: &impl Fn(u32) -> u32,
    ti: usize,
) -> Option<(OpData, bool)> {
    let (i, _, shape) = spans[ti];
    if shape != Shape::Fused {
        return None;
    }
    let UOp::CmpBranchBranch {
        dst,
        op,
        lhs,
        rhs: Src::Reg(rr),
        taken,
        fallthrough,
    } = d.uops[i]
    else {
        return None;
    };
    let bt = map(taken) as usize;
    if bt + 1 >= spans.len() || bt == ti {
        return None;
    }
    let (bi, _, bshape) = spans[bt];
    let (ji, _, jshape) = spans[bt + 1];
    if bshape != Shape::HLoadOp || jshape != Shape::Fused {
        return None;
    }
    let UOp::HLoad {
        dst: w,
        base,
        offset: IntSrc::Reg(offr),
    } = d.uops[bi]
    else {
        return None;
    };
    let (acc, acc_lhs, accrs, accop) = alu_parts(d.uops[bi + 1])?;
    let Src::Reg(accr) = accrs else {
        return None;
    };
    if acc != acc_lhs || accr != w {
        return None;
    }
    let UOp::OpJump {
        dst: j,
        op: jop,
        lhs: jl,
        rhs: Src::Int(jimm),
        target,
    } = d.uops[ji]
    else {
        return None;
    };
    if j != jl || map(target) as usize != ti {
        return None;
    }
    // The two spans must be the taken block in its entirety.
    let bs = src[bt];
    let js = src[bt + 1];
    if bs.block != js.block || bs.instr != 0 {
        return None;
    }
    if bt + 2 < spans.len() && src[bt + 2].block == bs.block {
        return None;
    }
    let mut o = OpData::new();
    o.r = [
        dst.index() as u32,
        lhs.index() as u32,
        rr.index() as u32,
        w.index() as u32,
        base.index() as u32,
        offr.index() as u32,
        acc.index() as u32,
        j.index() as u32,
    ];
    o.op_a = op;
    o.op_b = accop;
    o.op_c = jop;
    o.imm = jimm;
    o.t = [bt as u32, map(fallthrough), ti as u32];
    let fast = matches!(op, BinOp::Lt | BinOp::Le)
        && matches!(accop, BinOp::Add | BinOp::Sub | BinOp::Mul)
        && jop == BinOp::Add
        && jimm == 1
        && offr == lhs
        && j == lhs
        && all_distinct(&[dst, lhs, rr, w, base, acc]);
    Some((o, fast))
}

/// Recognizes the guarded-update loop at head span `ti` — the
/// relaxation shape of Floyd–Warshall-style kernels:
///
/// ```text
/// head:  t := j cmp n;           taken -> body, else -> exit
/// body:  x1 := la1 op1 ra1;  x2 := x1 op2 j;  a := heap[hb + x2]
///        cand := lc opc a;   x3 := ld opd rd; x4 := x3 ope j
///        bb := heap[hb2 + x4]
///        c := cand cmp2 bb;      taken -> then, else -> endif
/// then:  y1 := lt1 opf rt1;  y2 := y1 opg j;  heap[hb3 + y2] := cand
/// endif: j := j + 1; jump head
/// ```
///
/// with every operator one of the five specialised (total-on-int) ops,
/// the invariants `{n, la1, ra1, hb, lc, ld, rd, hb2, lt1, rt1, hb3}`
/// never written by the loop, `j` distinct from every written register,
/// and `cand` surviving (unclobbered) from its definition to its last
/// read — the conditions under which [`h_guarded_loop`]'s dry pass over
/// locals observes exactly the values the per-step path would.
/// Returns the side-table payload and the four non-head loop block
/// entry pcs (for the watch-stream promotion check).
fn match_guarded(
    d: &DecodedProgram,
    spans: &[(usize, usize, Shape)],
    src: &[UopSource],
    map: &impl Fn(u32) -> u32,
    ti: usize,
) -> Option<(GuardedLoop, [usize; 4])> {
    let (i, _, shape) = spans[ti];
    if shape != Shape::Fused {
        return None;
    }
    let UOp::CmpBranchBranch {
        dst: t,
        op,
        lhs: j,
        rhs: Src::Reg(n),
        taken,
        ..
    } = d.uops[i]
    else {
        return None;
    };
    if !is_specialised(op) {
        return None;
    }
    // Body block: exactly the five spans
    // [Op2HLoad, Alu2, Plain op, Plain load, Fused branch].
    let bt = map(taken) as usize;
    if bt + 4 >= spans.len() || bt == ti {
        return None;
    }
    let shapes_ok = spans[bt].2 == Shape::Op2HLoad
        && spans[bt + 1].2 == Shape::Alu2
        && spans[bt + 2].2 == Shape::Plain
        && spans[bt + 3].2 == Shape::Plain
        && spans[bt + 4].2 == Shape::Fused;
    if !shapes_ok {
        return None;
    }
    let blk = src[bt].block;
    if src[bt].instr != 0
        || (1..5).any(|k| src[bt + k].block != blk)
        || (bt + 5 < spans.len() && src[bt + 5].block == blk)
    {
        return None;
    }
    let bi = spans[bt].0;
    let (x1, la1, ra1s, op1) = alu_parts(d.uops[bi])?;
    let Src::Reg(ra1) = ra1s else {
        return None;
    };
    let (x2, lb1, rb1s, op2) = alu_parts(d.uops[bi + 1])?;
    let Src::Reg(rb1) = rb1s else {
        return None;
    };
    if lb1 != x1 || rb1 != j {
        return None;
    }
    let UOp::HLoad {
        dst: a,
        base: hb,
        offset: IntSrc::Reg(offa),
    } = d.uops[bi + 2]
    else {
        return None;
    };
    if offa != x2 {
        return None;
    }
    let ci = spans[bt + 1].0;
    let (cand, lc, rcs, opc) = alu_parts(d.uops[ci])?;
    let Src::Reg(rc) = rcs else {
        return None;
    };
    let (x3, ld, rds, opd) = alu_parts(d.uops[ci + 1])?;
    let Src::Reg(rd) = rds else {
        return None;
    };
    if rc != a {
        return None;
    }
    let (x4, le, res, ope) = alu_parts(d.uops[spans[bt + 2].0])?;
    let Src::Reg(re) = res else {
        return None;
    };
    if le != x3 || re != j {
        return None;
    }
    let UOp::HLoad {
        dst: bb,
        base: hb2,
        offset: IntSrc::Reg(offb),
    } = d.uops[spans[bt + 3].0]
    else {
        return None;
    };
    if offb != x4 {
        return None;
    }
    let UOp::CmpBranchBranch {
        dst: c,
        op: cmp2,
        lhs: cl,
        rhs: Src::Reg(cr),
        taken: then_l,
        fallthrough: else_l,
    } = d.uops[spans[bt + 4].0]
    else {
        return None;
    };
    if cl != cand || cr != bb || !is_specialised(cmp2) {
        return None;
    }
    // Then block: [Op2HStore, Jump -> endif], in its entirety.
    let tt = map(then_l) as usize;
    if tt + 1 >= spans.len()
        || spans[tt].2 != Shape::Op2HStore
        || spans[tt + 1].2 != Shape::Plain
        || src[tt].instr != 0
        || src[tt + 1].block != src[tt].block
        || (tt + 2 < spans.len() && src[tt + 2].block == src[tt].block)
    {
        return None;
    }
    let si = spans[tt].0;
    let (y1, lt1, rt1s, opf) = alu_parts(d.uops[si])?;
    let Src::Reg(rt1) = rt1s else {
        return None;
    };
    let (y2, ly2, ry2s, opg) = alu_parts(d.uops[si + 1])?;
    let Src::Reg(ry2) = ry2s else {
        return None;
    };
    if ly2 != y1 || ry2 != j {
        return None;
    }
    let UOp::HStore {
        base: hb3,
        offset: IntSrc::Reg(offs),
        src: IntSrc::Reg(sv),
    } = d.uops[si + 2]
    else {
        return None;
    };
    if offs != y2 || sv != cand {
        return None;
    }
    let UOp::Jump { target: tj } = d.uops[spans[tt + 1].0] else {
        return None;
    };
    // Else block: [Jump -> endif], in its entirety.
    let et = map(else_l) as usize;
    if spans[et].2 != Shape::Plain
        || src[et].instr != 0
        || (et + 1 < spans.len() && src[et + 1].block == src[et].block)
    {
        return None;
    }
    let UOp::Jump { target: ej } = d.uops[spans[et].0] else {
        return None;
    };
    // Endif block: [OpJump j := j + 1 -> head], in its entirety.
    let ei = map(tj) as usize;
    if map(ej) as usize != ei
        || spans[ei].2 != Shape::Fused
        || src[ei].instr != 0
        || (ei + 1 < spans.len() && src[ei + 1].block == src[ei].block)
    {
        return None;
    }
    let UOp::OpJump {
        dst: j2,
        op: BinOp::Add,
        lhs: j3,
        rhs: Src::Int(1),
        target: back,
    } = d.uops[spans[ei].0]
    else {
        return None;
    };
    if j2 != j || j3 != j || map(back) as usize != ti {
        return None;
    }
    // Aliasing discipline (see the handler's soundness argument).
    let writes = [t, x1, x2, a, cand, x3, x4, bb, c, y1, y2];
    if writes.contains(&j) {
        return None;
    }
    let invariants = [n, la1, ra1, hb, lc, ld, rd, hb2, lt1, rt1, hb3];
    if invariants.iter().any(|r| writes.contains(r) || *r == j) {
        return None;
    }
    if [x3, x4, bb, c, y1, y2].contains(&cand) {
        return None;
    }
    let ri = |r: Reg| r.index() as u32;
    let g = GuardedLoop {
        x1: ri(x1),
        la1: ri(la1),
        ra1: ri(ra1),
        op1,
        x2: ri(x2),
        op2,
        a: ri(a),
        hb: ri(hb),
        cand: ri(cand),
        lc: ri(lc),
        opc,
        x3: ri(x3),
        ld: ri(ld),
        rd: ri(rd),
        opd,
        x4: ri(x4),
        ope,
        bb: ri(bb),
        hb2: ri(hb2),
        c: ri(c),
        cmp2,
        y1: ri(y1),
        lt1: ri(lt1),
        rt1: ri(rt1),
        opf,
        y2: ri(y2),
        opg,
        hb3: ri(hb3),
    };
    Some((g, [bt, tt, et, ei]))
}

/// Emits the handler + payload of an unmerged span (one decoded
/// micro-op, plain or fused). `next` is the fall-through threaded pc;
/// `map` converts decoded jump targets to threaded pcs.
fn emit_single(u: UOp, next: u32, map: &impl Fn(u32) -> u32) -> (Handler, OpData) {
    let mut o = OpData::new();
    o.t[0] = next;
    /// Binds a `dst := lhs op rhs` payload with rhs-kind handler choice.
    macro_rules! alu1 {
        ($dst:expr, $lhs:expr, $rhs:expr, $op:expr, $hr:expr, $hi:expr) => {{
            o.r[0] = $dst.index() as u32;
            o.r[1] = $lhs.index() as u32;
            match $rhs {
                Src::Reg(r) => {
                    o.r[2] = r.index() as u32;
                    ($hr as Handler, o)
                }
                Src::Int(n) => {
                    o.imm = n;
                    ($hi as Handler, o)
                }
                Src::Label(l) => {
                    o.r[2] = l.index() as u32;
                    o.op_a = $op;
                    (h_op_l as Handler, o)
                }
            }
        }};
    }
    /// Binds a fused-branch payload (cmp in `r[0..3]`/`op_a`) with
    /// rhs-kind handler choice.
    macro_rules! fused {
        ($dst:expr, $lhs:expr, $rhs:expr, $op:expr, $hr:expr, $hi:expr, $hl:expr) => {{
            o.r[0] = $dst.index() as u32;
            o.r[1] = $lhs.index() as u32;
            o.op_a = $op;
            match $rhs {
                Src::Reg(r) => {
                    o.r[2] = r.index() as u32;
                    ($hr as Handler, o)
                }
                Src::Int(n) => {
                    o.imm = n;
                    ($hi as Handler, o)
                }
                Src::Label(l) => {
                    o.r[2] = l.index() as u32;
                    ($hl as Handler, o)
                }
            }
        }};
    }
    match u {
        UOp::Mov { dst, src } => {
            o.r[0] = dst.index() as u32;
            match src {
                Src::Reg(r) => {
                    o.r[1] = r.index() as u32;
                    (h_mov_r as Handler, o)
                }
                Src::Int(n) => {
                    o.imm = n;
                    (h_mov_i as Handler, o)
                }
                Src::Label(l) => {
                    o.r[1] = l.index() as u32;
                    (h_mov_l as Handler, o)
                }
            }
        }
        UOp::Op { dst, op, lhs, rhs } => {
            o.op_a = op;
            o.r[0] = dst.index() as u32;
            o.r[1] = lhs.index() as u32;
            match rhs {
                Src::Reg(r) => {
                    o.r[2] = r.index() as u32;
                    (h_op_r as Handler, o)
                }
                Src::Int(n) => {
                    o.imm = n;
                    (h_op_i as Handler, o)
                }
                Src::Label(l) => {
                    o.r[2] = l.index() as u32;
                    (h_op_l as Handler, o)
                }
            }
        }
        UOp::OpAdd { dst, lhs, rhs } => alu1!(dst, lhs, rhs, BinOp::Add, h_add_r, h_add_i),
        UOp::OpSub { dst, lhs, rhs } => alu1!(dst, lhs, rhs, BinOp::Sub, h_sub_r, h_sub_i),
        UOp::OpMul { dst, lhs, rhs } => alu1!(dst, lhs, rhs, BinOp::Mul, h_mul_r, h_mul_i),
        UOp::OpLt { dst, lhs, rhs } => alu1!(dst, lhs, rhs, BinOp::Lt, h_lt_r, h_lt_i),
        UOp::OpLe { dst, lhs, rhs } => alu1!(dst, lhs, rhs, BinOp::Le, h_le_r, h_le_i),
        UOp::Jump { target } => {
            o.t[0] = map(target);
            (h_jump as Handler, o)
        }
        UOp::JumpReg { reg } => {
            o.r[0] = reg.index() as u32;
            (h_jump_reg as Handler, o)
        }
        UOp::JumpBad { .. } => (h_jump_bad as Handler, o),
        UOp::IfJump { cond, target } => {
            o.r[0] = cond.index() as u32;
            o.t[1] = next;
            o.t[0] = map(target);
            (h_if_jump as Handler, o)
        }
        UOp::IfJumpReg { cond, reg } => {
            o.r[0] = cond.index() as u32;
            o.r[1] = reg.index() as u32;
            (h_if_jump_reg as Handler, o)
        }
        UOp::IfJumpBad { cond, .. } => {
            o.r[0] = cond.index() as u32;
            (h_if_jump_bad as Handler, o)
        }
        UOp::SAlloc { sp, n } => {
            o.r[0] = sp.index() as u32;
            o.r[1] = n;
            (h_salloc as Handler, o)
        }
        UOp::SFree { sp, n } => {
            o.r[0] = sp.index() as u32;
            o.r[1] = n;
            (h_sfree as Handler, o)
        }
        UOp::Load { dst, base, offset } => {
            o.r[0] = dst.index() as u32;
            o.r[1] = base.index() as u32;
            o.r[2] = offset;
            (h_load as Handler, o)
        }
        UOp::Store { base, offset, src } => {
            o.r[0] = base.index() as u32;
            o.r[1] = offset;
            match src {
                Src::Reg(r) => {
                    o.r[2] = r.index() as u32;
                    (h_store_r as Handler, o)
                }
                Src::Int(n) => {
                    o.imm = n;
                    (h_store_i as Handler, o)
                }
                Src::Label(l) => {
                    o.r[2] = l.index() as u32;
                    (h_store_l as Handler, o)
                }
            }
        }
        UOp::PrmPush { base, offset } => {
            o.r[0] = base.index() as u32;
            o.r[1] = offset;
            (h_prm_push as Handler, o)
        }
        UOp::PrmPop { base, offset } => {
            o.r[0] = base.index() as u32;
            o.r[1] = offset;
            (h_prm_pop as Handler, o)
        }
        UOp::PrmEmpty { dst, sp } => {
            o.r[0] = dst.index() as u32;
            o.r[1] = sp.index() as u32;
            (h_prm_empty as Handler, o)
        }
        UOp::PrmSplit { sp, dst } => {
            o.r[0] = sp.index() as u32;
            o.r[1] = dst.index() as u32;
            (h_prm_split as Handler, o)
        }
        UOp::HLoad { dst, base, offset } => {
            o.r[0] = dst.index() as u32;
            o.r[1] = base.index() as u32;
            match offset {
                IntSrc::Reg(r) => {
                    o.r[2] = r.index() as u32;
                    (h_hload_r as Handler, o)
                }
                IntSrc::Imm(n) => {
                    o.imm = n;
                    (h_hload_i as Handler, o)
                }
                IntSrc::Bad(_) => (h_hload_bad as Handler, o),
            }
        }
        UOp::HStore { base, offset, src } => {
            o.r[0] = base.index() as u32;
            match (offset, src) {
                (IntSrc::Reg(r), IntSrc::Reg(s)) => {
                    o.r[1] = r.index() as u32;
                    o.r[2] = s.index() as u32;
                    (h_hstore_rr as Handler, o)
                }
                (IntSrc::Reg(r), IntSrc::Imm(n)) => {
                    o.r[1] = r.index() as u32;
                    o.imm2 = n;
                    (h_hstore_ri as Handler, o)
                }
                (IntSrc::Imm(n), IntSrc::Reg(s)) => {
                    o.imm = n;
                    o.r[2] = s.index() as u32;
                    (h_hstore_ir as Handler, o)
                }
                (IntSrc::Imm(n), IntSrc::Imm(m)) => {
                    o.imm = n;
                    o.imm2 = m;
                    (h_hstore_ii as Handler, o)
                }
                (off, s) => {
                    // Slow path with kind codes: 0 register, 1
                    // immediate, 2 bad label literal.
                    match off {
                        IntSrc::Reg(r) => o.r[1] = r.index() as u32,
                        IntSrc::Imm(n) => {
                            o.imm = n;
                            o.r[4] = 1;
                        }
                        IntSrc::Bad(_) => o.r[4] = 2,
                    }
                    match s {
                        IntSrc::Reg(r) => o.r[2] = r.index() as u32,
                        IntSrc::Imm(n) => {
                            o.imm2 = n;
                            o.r[5] = 1;
                        }
                        IntSrc::Bad(_) => o.r[5] = 2,
                    }
                    (h_hstore_slow as Handler, o)
                }
            }
        }
        UOp::CmpBranch {
            dst,
            op,
            lhs,
            rhs,
            taken,
        } => {
            o.t[1] = next;
            o.t[0] = map(taken);
            fused!(dst, lhs, rhs, op, h_cb_r, h_cb_i, h_cb_l)
        }
        UOp::CmpBranchBranch {
            dst,
            op,
            lhs,
            rhs,
            taken,
            fallthrough,
        } => {
            o.t[0] = map(taken);
            o.t[1] = map(fallthrough);
            fused!(dst, lhs, rhs, op, h_cbb_r, h_cbb_i, h_cbb_l)
        }
        UOp::OpJump {
            dst,
            op,
            lhs,
            rhs,
            target,
        } => {
            o.t[0] = map(target);
            fused!(dst, lhs, rhs, op, h_oj_r, h_oj_i, h_oj_l)
        }
        UOp::StepCmpBranch {
            step_dst,
            step_op,
            step_lhs,
            step_imm,
            dst,
            op,
            lhs,
            rhs,
            taken,
        } => {
            o.r[3] = step_dst.index() as u32;
            o.r[4] = step_lhs.index() as u32;
            o.op_b = step_op;
            o.imm2 = step_imm;
            o.t[1] = next;
            o.t[0] = map(taken);
            fused!(dst, lhs, rhs, op, h_scb_r, h_scb_i, h_scb_l)
        }
        UOp::PrpptPause => unreachable!("plain stream never holds PrpptPause"),
        UOp::Boundary => (h_boundary as Handler, o),
    }
}

#[cfg(test)]
mod tests;
