//! The pre-bound handler bodies of the threaded tier.
//!
//! Every handler has the uniform signature `fn(&mut Frame, &OpData) ->
//! u32`: it executes one (possibly fused or merged) micro-op against the
//! borrowed working sets in the [`Frame`], decrements the step budget,
//! and returns either the absolute program counter of the next handler
//! (pre-resolved at compile time into the [`OpData`] jump slots) or one
//! of the exit sentinels ([`X_FAULT`], [`X_SPLIT`], [`X_BOUNDARY`],
//! [`X_PRPPT`]). The dispatch loop in the parent module is therefore a
//! single indirect call per micro-op — no opcode decode, no operand
//! matching, no side-table loads.
//!
//! Fault and split behaviour mirrors `DecodedProgram::run_loop` exactly:
//! a handler that cannot fit in the remaining budget returns [`X_SPLIT`]
//! *before* touching any state, and a fault records how many constituent
//! source instructions completed (the faulting one included) so the
//! driver can reconstruct the reference interpreter's task position and
//! step count.

use crate::decoded::{cold_fault, rread};
use crate::isa::{BinOp, Label, Reg};
use crate::machine::heap::Heap;
use crate::machine::stack::{StackRef, StackStore};
use crate::machine::step::eval_binop;
use crate::machine::{MachineError, Value};

/// Exit sentinel: fault at the current dispatch pc; the error is in
/// `Frame::fault` and the constituent count in `Frame::fault_parts`.
pub(crate) const X_FAULT: u32 = u32::MAX;
/// Exit sentinel: fault attributed to `Frame::fault_pc` instead of the
/// dispatch pc (used by loop templates that execute other spans' work).
pub(crate) const X_FAULT_AT: u32 = u32::MAX - 1;
/// Exit sentinel: the remaining budget cannot cover this fused/merged
/// micro-op; the driver falls back to stepwise execution.
pub(crate) const X_SPLIT: u32 = u32::MAX - 2;
/// Exit sentinel: a scheduling/allocation boundary instruction.
pub(crate) const X_BOUNDARY: u32 = u32::MAX - 3;
/// Exit sentinel: a `prppt` block entry in watch mode.
pub(crate) const X_PRPPT: u32 = u32::MAX - 4;
/// Driver-internal sentinel: quantum exhausted at a dispatch point.
/// Never returned by a handler; smallest sentinel, so `>= X_QUANTUM`
/// tests for "any exit".
pub(crate) const X_QUANTUM: u32 = u32::MAX - 5;

/// The borrowed working sets of one dispatch run, plus the live step
/// budget and the fault side-channel. Borrowing once per run (instead of
/// per handler call) lets the compiler keep the slice pointers in
/// machine registers across the indirect calls.
pub(crate) struct Frame<'a> {
    pub(crate) regs: &'a mut [Value],
    pub(crate) stacks: &'a mut StackStore,
    pub(crate) hwords: &'a mut [i64],
    pub(crate) block_entry: &'a [u32],
    /// Guarded-update loop templates, indexed by `OpData::imm2` from
    /// [`h_guarded_loop`] (payloads too wide for one `OpData`).
    pub(crate) guarded: &'a [GuardedLoop],
    /// Steps left in the quantum; counts down like the decoded loop.
    pub(crate) remaining: u64,
    pub(crate) fault: Option<MachineError>,
    pub(crate) fault_parts: u32,
    pub(crate) fault_pc: u32,
}

/// A pre-bound micro-op handler. The return value is the next pc, or an
/// exit sentinel (`>= X_QUANTUM`).
pub(crate) type Handler = fn(&mut Frame<'_>, &OpData) -> u32;

/// The pre-resolved operand payload of one threaded micro-op: register
/// slots, jump targets, operators, and immediates, all bound at compile
/// time. One fixed 64-byte layout for every handler keeps the fetch
/// side of dispatch a single indexed load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct OpData {
    /// Register slots (meaning is per-handler).
    pub(crate) r: [u32; 8],
    /// Jump slots: `t[0]` is the fall-through / taken target, `t[1]` the
    /// alternate target, `t[2]` a loop template's own pc.
    pub(crate) t: [u32; 3],
    pub(crate) op_a: BinOp,
    pub(crate) op_b: BinOp,
    pub(crate) op_c: BinOp,
    pub(crate) imm: i64,
    pub(crate) imm2: i64,
}

impl OpData {
    pub(crate) fn new() -> OpData {
        OpData {
            r: [0; 8],
            t: [0; 3],
            op_a: BinOp::Add,
            op_b: BinOp::Add,
            op_c: BinOp::Add,
            imm: 0,
            imm2: 0,
        }
    }
}

/// Reads a register by pre-resolved index (the threaded counterpart of
/// `decoded::rread`).
#[inline(always)]
fn rget(regs: &[Value], i: u32) -> Result<Value, MachineError> {
    rread(regs, Reg::from_index(i as usize))
}

/// Reads a stack pointer by pre-resolved index.
#[inline(always)]
fn rget_stack(regs: &[Value], i: u32) -> Result<StackRef, MachineError> {
    rget(regs, i)?.as_stack()
}

/// [`eval_binop`] with every specialised operator peeled for the
/// all-integer case. The peels cannot fault and compute the same values
/// as `eval_binop`, so semantics (results and faults) are unchanged —
/// this is the same argument `decoded::eval_binop_fast` makes, extended
/// to `Mul` and `Le`.
#[inline(always)]
fn alu_fast(op: BinOp, l: Value, r: Value) -> Result<Value, MachineError> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        match op {
            BinOp::Add => return Ok(Value::Int(a.wrapping_add(b))),
            BinOp::Sub => return Ok(Value::Int(a.wrapping_sub(b))),
            BinOp::Mul => return Ok(Value::Int(a.wrapping_mul(b))),
            BinOp::Lt => return Ok(Value::Int(if a < b { 0 } else { 1 })),
            BinOp::Le => return Ok(Value::Int(if a <= b { 0 } else { 1 })),
            _ => {}
        }
    }
    eval_binop(op, l, r)
}

/// Records a fault at the current dispatch pc after `$parts` constituent
/// instructions (the faulting one included) and exits.
macro_rules! fail {
    ($f:expr, $parts:expr, $e:expr) => {{
        $f.fault = Some(cold_fault($e));
        $f.fault_parts = $parts;
        return X_FAULT;
    }};
}

/// `?` for handlers: propagates an error as a [`fail!`].
macro_rules! tryf {
    ($f:expr, $parts:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => fail!($f, $parts, e),
        }
    };
}

/// Records a fault attributed to another span's pc (loop templates).
macro_rules! fail_at {
    ($f:expr, $pc:expr, $parts:expr, $e:expr) => {{
        $f.fault = Some(cold_fault($e));
        $f.fault_parts = $parts;
        $f.fault_pc = $pc;
        return X_FAULT_AT;
    }};
}

/// `?` for loop templates: propagates with explicit pc attribution.
macro_rules! tryf_at {
    ($f:expr, $pc:expr, $parts:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => fail_at!($f, $pc, $parts, e),
        }
    };
}

/// A fused shape's pre-resolved rhs operand: `r` reads slot `r[2]`, `i`
/// rebuilds the inlined integer, `l` the inlined label.
macro_rules! rhs_val {
    (r, $f:expr, $o:expr, $parts:expr) => {
        tryf!($f, $parts, rget($f.regs, $o.r[2]))
    };
    (i, $f:expr, $o:expr, $parts:expr) => {
        Value::Int($o.imm)
    };
    (l, $f:expr, $o:expr, $parts:expr) => {
        Value::Label(Label::from_index($o.r[2] as usize))
    };
}

// ---------------------------------------------------------------------
// Plain singles. The driver guarantees `remaining >= 1` on entry, so
// singles never check the budget; they cost exactly one step.
// ---------------------------------------------------------------------

pub(crate) fn h_mov_r(f: &mut Frame, o: &OpData) -> u32 {
    let v = tryf!(f, 1, rget(f.regs, o.r[1]));
    f.regs[o.r[0] as usize] = v;
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_mov_i(f: &mut Frame, o: &OpData) -> u32 {
    f.regs[o.r[0] as usize] = Value::Int(o.imm);
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_mov_l(f: &mut Frame, o: &OpData) -> u32 {
    f.regs[o.r[0] as usize] = Value::Label(Label::from_index(o.r[1] as usize));
    f.remaining -= 1;
    o.t[0]
}

/// Generic `op` with a register / immediate / label rhs, operator in
/// `op_a` (the rarely-used operators; the hot five get stamped
/// specialisations below).
macro_rules! op_single {
    ($name:ident, $k:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = rhs_val!($k, f, o, 1);
            let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            f.remaining -= 1;
            o.t[0]
        }
    };
}
op_single!(h_op_r, r);
op_single!(h_op_i, i);
op_single!(h_op_l, l);

/// Stamps a specialised single-op handler pair (register rhs, immediate
/// rhs) with the operator baked into the code, not fetched from the
/// payload.
macro_rules! alu_single {
    ($name_r:ident, $name_i:ident, $op:ident, $a:ident, $b:ident, $v:expr) => {
        pub(crate) fn $name_r(f: &mut Frame, o: &OpData) -> u32 {
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = tryf!(f, 1, rget(f.regs, o.r[2]));
            let v = match (l, r) {
                (Value::Int($a), Value::Int($b)) => Value::Int($v),
                _ => tryf!(f, 1, eval_binop(BinOp::$op, l, r)),
            };
            f.regs[o.r[0] as usize] = v;
            f.remaining -= 1;
            o.t[0]
        }
        pub(crate) fn $name_i(f: &mut Frame, o: &OpData) -> u32 {
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let v = match l {
                Value::Int($a) => {
                    let $b = o.imm;
                    Value::Int($v)
                }
                _ => tryf!(f, 1, eval_binop(BinOp::$op, l, Value::Int(o.imm))),
            };
            f.regs[o.r[0] as usize] = v;
            f.remaining -= 1;
            o.t[0]
        }
    };
}
alu_single!(h_add_r, h_add_i, Add, a, b, a.wrapping_add(b));
alu_single!(h_sub_r, h_sub_i, Sub, a, b, a.wrapping_sub(b));
alu_single!(h_mul_r, h_mul_i, Mul, a, b, a.wrapping_mul(b));
alu_single!(h_lt_r, h_lt_i, Lt, a, b, if a < b { 0 } else { 1 });
alu_single!(h_le_r, h_le_i, Le, a, b, if a <= b { 0 } else { 1 });

pub(crate) fn h_jump(f: &mut Frame, o: &OpData) -> u32 {
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_jump_reg(f: &mut Frame, o: &OpData) -> u32 {
    let v = tryf!(f, 1, rget(f.regs, o.r[0]));
    match v {
        Value::Label(l) => {
            f.remaining -= 1;
            f.block_entry[l.index()]
        }
        other => fail!(f, 1, MachineError::JumpToNonLabel { got: other.kind() }),
    }
}

pub(crate) fn h_jump_bad(f: &mut Frame, _o: &OpData) -> u32 {
    fail!(f, 1, MachineError::JumpToNonLabel { got: "int" })
}

pub(crate) fn h_if_jump(f: &mut Frame, o: &OpData) -> u32 {
    let c = tryf!(f, 1, rget(f.regs, o.r[0]));
    f.remaining -= 1;
    if c.is_true() {
        o.t[0]
    } else {
        o.t[1]
    }
}

pub(crate) fn h_if_jump_reg(f: &mut Frame, o: &OpData) -> u32 {
    let c = tryf!(f, 1, rget(f.regs, o.r[0]));
    if c.is_true() {
        let v = tryf!(f, 1, rget(f.regs, o.r[1]));
        match v {
            Value::Label(l) => {
                f.remaining -= 1;
                f.block_entry[l.index()]
            }
            other => fail!(f, 1, MachineError::JumpToNonLabel { got: other.kind() }),
        }
    } else {
        f.remaining -= 1;
        o.t[0]
    }
}

pub(crate) fn h_if_jump_bad(f: &mut Frame, o: &OpData) -> u32 {
    let c = tryf!(f, 1, rget(f.regs, o.r[0]));
    if c.is_true() {
        fail!(f, 1, MachineError::JumpToNonLabel { got: "int" });
    }
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_salloc(f: &mut Frame, o: &OpData) -> u32 {
    let cur = tryf!(f, 1, rget_stack(f.regs, o.r[0]));
    let new = tryf!(f, 1, f.stacks.salloc(cur, o.r[1]));
    f.regs[o.r[0] as usize] = Value::Stack(new);
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_sfree(f: &mut Frame, o: &OpData) -> u32 {
    let cur = tryf!(f, 1, rget_stack(f.regs, o.r[0]));
    let new = tryf!(f, 1, f.stacks.sfree(cur, o.r[1]));
    f.regs[o.r[0] as usize] = Value::Stack(new);
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_load(f: &mut Frame, o: &OpData) -> u32 {
    let sp = tryf!(f, 1, rget_stack(f.regs, o.r[1]));
    let v = tryf!(f, 1, f.stacks.load(sp, o.r[2]));
    f.regs[o.r[0] as usize] = v;
    f.remaining -= 1;
    o.t[0]
}

/// Stack store with a register / immediate / label source. Slots:
/// `r[0]` base, `r[1]` offset, `r[2]` source register or label index.
macro_rules! store_single {
    ($name:ident, $k:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            let sp = tryf!(f, 1, rget_stack(f.regs, o.r[0]));
            let v = rhs_val!($k, f, o, 1);
            tryf!(f, 1, f.stacks.store(sp, o.r[1], v));
            f.remaining -= 1;
            o.t[0]
        }
    };
}
store_single!(h_store_r, r);
store_single!(h_store_i, i);
store_single!(h_store_l, l);

pub(crate) fn h_prm_push(f: &mut Frame, o: &OpData) -> u32 {
    let sp = tryf!(f, 1, rget_stack(f.regs, o.r[0]));
    tryf!(f, 1, f.stacks.prmpush(sp, o.r[1]));
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_prm_pop(f: &mut Frame, o: &OpData) -> u32 {
    let sp = tryf!(f, 1, rget_stack(f.regs, o.r[0]));
    tryf!(f, 1, f.stacks.prmpop(sp, o.r[1]));
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_prm_empty(f: &mut Frame, o: &OpData) -> u32 {
    let spv = tryf!(f, 1, rget_stack(f.regs, o.r[1]));
    let v = tryf!(f, 1, f.stacks.prmempty(spv));
    f.regs[o.r[0] as usize] = v;
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_prm_split(f: &mut Frame, o: &OpData) -> u32 {
    let spv = tryf!(f, 1, rget_stack(f.regs, o.r[0]));
    let off = tryf!(f, 1, f.stacks.prmsplit(spv));
    f.regs[o.r[1] as usize] = Value::Int(off);
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_hload_r(f: &mut Frame, o: &OpData) -> u32 {
    let b = tryf!(f, 1, rget(f.regs, o.r[1]).and_then(Value::as_int));
    let off = tryf!(f, 1, rget(f.regs, o.r[2]).and_then(Value::as_int));
    let v = tryf!(f, 1, Heap::load_in(f.hwords, b, off));
    f.regs[o.r[0] as usize] = Value::Int(v);
    f.remaining -= 1;
    o.t[0]
}

pub(crate) fn h_hload_i(f: &mut Frame, o: &OpData) -> u32 {
    let b = tryf!(f, 1, rget(f.regs, o.r[1]).and_then(Value::as_int));
    let v = tryf!(f, 1, Heap::load_in(f.hwords, b, o.imm));
    f.regs[o.r[0] as usize] = Value::Int(v);
    f.remaining -= 1;
    o.t[0]
}

/// `hload` whose offset is a label literal: evaluates the base first
/// (matching the reference order), then faults.
pub(crate) fn h_hload_bad(f: &mut Frame, o: &OpData) -> u32 {
    tryf!(f, 1, rget(f.regs, o.r[1]).and_then(Value::as_int));
    fail!(
        f,
        1,
        MachineError::TypeError {
            expected: "int",
            got: "label",
        }
    )
}

/// Heap store fast paths, named by (offset kind, source kind): offset in
/// `r[1]`/`imm`, source in `r[2]`/`imm2`, base in `r[0]`.
macro_rules! hstore_fast {
    ($name:ident, $off:expr, $src:expr) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            let b = tryf!(f, 1, rget(f.regs, o.r[0]).and_then(Value::as_int));
            let offf: fn(&mut Frame, &OpData) -> Result<i64, MachineError> = $off;
            let srcf: fn(&mut Frame, &OpData) -> Result<i64, MachineError> = $src;
            let off = tryf!(f, 1, offf(f, o));
            let v = tryf!(f, 1, srcf(f, o));
            tryf!(f, 1, Heap::store_in(f.hwords, b, off, v));
            f.remaining -= 1;
            o.t[0]
        }
    };
}
hstore_fast!(
    h_hstore_rr,
    |f, o| rget(f.regs, o.r[1]).and_then(Value::as_int),
    |f, o| rget(f.regs, o.r[2]).and_then(Value::as_int)
);
hstore_fast!(
    h_hstore_ri,
    |f, o| rget(f.regs, o.r[1]).and_then(Value::as_int),
    |_f, o| Ok(o.imm2)
);
hstore_fast!(h_hstore_ir, |_f, o| Ok(o.imm), |f, o| rget(f.regs, o.r[2])
    .and_then(Value::as_int));
hstore_fast!(h_hstore_ii, |_f, o| Ok(o.imm), |_f, o| Ok(o.imm2));

/// Heap store slow path for label-literal operands: kind codes in
/// `r[4]` (offset) and `r[5]` (source): 0 register, 1 immediate, 2 bad
/// label literal. Evaluation order matches the reference: base, offset,
/// source, store.
pub(crate) fn h_hstore_slow(f: &mut Frame, o: &OpData) -> u32 {
    let b = tryf!(f, 1, rget(f.regs, o.r[0]).and_then(Value::as_int));
    let off = match o.r[4] {
        0 => tryf!(f, 1, rget(f.regs, o.r[1]).and_then(Value::as_int)),
        1 => o.imm,
        _ => fail!(
            f,
            1,
            MachineError::TypeError {
                expected: "int",
                got: "label",
            }
        ),
    };
    let v = match o.r[5] {
        0 => tryf!(f, 1, rget(f.regs, o.r[2]).and_then(Value::as_int)),
        1 => o.imm2,
        _ => fail!(
            f,
            1,
            MachineError::TypeError {
                expected: "int",
                got: "label",
            }
        ),
    };
    tryf!(f, 1, Heap::store_in(f.hwords, b, off, v));
    f.remaining -= 1;
    o.t[0]
}

// ---------------------------------------------------------------------
// Fused shapes inherited from the decoded tier. Multi-step handlers
// check the budget *first* and return X_SPLIT untouched if it cannot
// cover them, exactly like the decoded `split!`.
// ---------------------------------------------------------------------

/// Fused compare + branch (2 steps): cmp `r[0] := r[1] op_a rhs`, taken
/// to `t[0]`, fall-through to `t[1]`.
macro_rules! cb_h {
    ($name:ident, $k:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            if f.remaining < 2 {
                return X_SPLIT;
            }
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = rhs_val!($k, f, o, 1);
            let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            f.remaining -= 2;
            if v.is_true() {
                o.t[0]
            } else {
                o.t[1]
            }
        }
    };
}
cb_h!(h_cb_r, r);
cb_h!(h_cb_i, i);
cb_h!(h_cb_l, l);

/// Fused loop-head block (cmp + branch + jump): 2 steps taken, 3 on the
/// fall-through exit.
macro_rules! cbb_h {
    ($name:ident, $k:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            if f.remaining < 3 {
                return X_SPLIT;
            }
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = rhs_val!($k, f, o, 1);
            let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            if v.is_true() {
                f.remaining -= 2;
                o.t[0]
            } else {
                f.remaining -= 3;
                o.t[1]
            }
        }
    };
}
cbb_h!(h_cbb_r, r);
cbb_h!(h_cbb_i, i);
cbb_h!(h_cbb_l, l);

/// Fused op + jump loop tail (2 steps).
macro_rules! oj_h {
    ($name:ident, $k:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            if f.remaining < 2 {
                return X_SPLIT;
            }
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = rhs_val!($k, f, o, 1);
            let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            f.remaining -= 2;
            o.t[0]
        }
    };
}
oj_h!(h_oj_r, r);
oj_h!(h_oj_i, i);
oj_h!(h_oj_l, l);

/// Fused back-edge triple: step `r[3] := r[4] op_b imm2`, then cmp
/// `r[0] := r[1] op_a rhs`, then branch (3 steps).
macro_rules! scb_h {
    ($name:ident, $k:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            if f.remaining < 3 {
                return X_SPLIT;
            }
            let sl = tryf!(f, 1, rget(f.regs, o.r[4]));
            let sv = tryf!(f, 1, alu_fast(o.op_b, sl, Value::Int(o.imm2)));
            f.regs[o.r[3] as usize] = sv;
            let l = tryf!(f, 2, rget(f.regs, o.r[1]));
            let r = rhs_val!($k, f, o, 2);
            let v = tryf!(f, 2, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            f.remaining -= 3;
            if v.is_true() {
                o.t[0]
            } else {
                o.t[1]
            }
        }
    };
}
scb_h!(h_scb_r, r);
scb_h!(h_scb_i, i);
scb_h!(h_scb_l, l);

pub(crate) fn h_boundary(_f: &mut Frame, _o: &OpData) -> u32 {
    X_BOUNDARY
}

pub(crate) fn h_prppt(_f: &mut Frame, _o: &OpData) -> u32 {
    X_PRPPT
}

// ---------------------------------------------------------------------
// Threaded-only merged shapes. These pair or triple adjacent plain
// micro-ops of one block into a single dispatch. Merging is safe for
// control flow because only block entries are jump targets; it is safe
// for quanta because a merged handler splits back to stepwise execution
// exactly like a decoded fused op.
// ---------------------------------------------------------------------

/// A merged shape's second-op rhs: register slot `r[5]` or `imm2`.
macro_rules! rhs2_val {
    (r, $f:expr, $o:expr, $parts:expr) => {
        tryf!($f, $parts, rget($f.regs, $o.r[5]))
    };
    (i, $f:expr, $o:expr, $parts:expr) => {
        Value::Int($o.imm2)
    };
}

/// Two adjacent specialised ALU ops (2 steps): `r[0] := r[1] op_a
/// (r[2]|imm)`, then `r[3] := r[4] op_b (r[5]|imm2)`.
macro_rules! alu2_h {
    ($name:ident, $ka:tt, $kb:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            if f.remaining < 2 {
                return X_SPLIT;
            }
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = rhs_val!($ka, f, o, 1);
            let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            let l2 = tryf!(f, 2, rget(f.regs, o.r[4]));
            let r2 = rhs2_val!($kb, f, o, 2);
            let v2 = tryf!(f, 2, alu_fast(o.op_b, l2, r2));
            f.regs[o.r[3] as usize] = v2;
            f.remaining -= 2;
            o.t[0]
        }
    };
}
alu2_h!(h_alu2_rr, r, r);
alu2_h!(h_alu2_ri, r, i);
alu2_h!(h_alu2_ir, i, r);
alu2_h!(h_alu2_ii, i, i);

/// A merged heap-load offset: register slot `r[2]` or `imm`.
macro_rules! off_val {
    (r, $f:expr, $o:expr, $parts:expr) => {
        tryf!($f, $parts, rget($f.regs, $o.r[2]).and_then(Value::as_int))
    };
    (i, $f:expr, $o:expr, $parts:expr) => {
        $o.imm
    };
}

/// Heap load + specialised ALU op (2 steps): `r[0] := heap[r[1] +
/// (r[2]|imm)]`, then `r[3] := r[4] op_b (r[5]|imm2)`.
macro_rules! hlop_h {
    ($name:ident, $ka:tt, $kb:tt) => {
        pub(crate) fn $name(f: &mut Frame, o: &OpData) -> u32 {
            if f.remaining < 2 {
                return X_SPLIT;
            }
            let b = tryf!(f, 1, rget(f.regs, o.r[1]).and_then(Value::as_int));
            let off = off_val!($ka, f, o, 1);
            let w = tryf!(f, 1, Heap::load_in(f.hwords, b, off));
            f.regs[o.r[0] as usize] = Value::Int(w);
            let l2 = tryf!(f, 2, rget(f.regs, o.r[4]));
            let r2 = rhs2_val!($kb, f, o, 2);
            let v2 = tryf!(f, 2, alu_fast(o.op_b, l2, r2));
            f.regs[o.r[3] as usize] = v2;
            f.remaining -= 2;
            o.t[0]
        }
    };
}
hlop_h!(h_hlop_rr, r, r);
hlop_h!(h_hlop_ri, r, i);
hlop_h!(h_hlop_ir, i, r);
hlop_h!(h_hlop_ii, i, i);

/// Two adjacent heap loads with register offsets (2 steps).
pub(crate) fn h_hl2(f: &mut Frame, o: &OpData) -> u32 {
    if f.remaining < 2 {
        return X_SPLIT;
    }
    let b = tryf!(f, 1, rget(f.regs, o.r[1]).and_then(Value::as_int));
    let off = tryf!(f, 1, rget(f.regs, o.r[2]).and_then(Value::as_int));
    let w = tryf!(f, 1, Heap::load_in(f.hwords, b, off));
    f.regs[o.r[0] as usize] = Value::Int(w);
    let b2 = tryf!(f, 2, rget(f.regs, o.r[4]).and_then(Value::as_int));
    let off2 = tryf!(f, 2, rget(f.regs, o.r[5]).and_then(Value::as_int));
    let w2 = tryf!(f, 2, Heap::load_in(f.hwords, b2, off2));
    f.regs[o.r[3] as usize] = Value::Int(w2);
    f.remaining -= 2;
    o.t[0]
}

/// Two specialised ALU ops feeding a heap load whose offset register is
/// the second op's destination (3 steps) — the address-computation
/// prologue of array indexing: `r[0] := r[1] op_a r[2]`, `r[3] := r[4]
/// op_b r[5]`, `r[6] := heap[r[7] + r[3]]`.
pub(crate) fn h_op2_hload(f: &mut Frame, o: &OpData) -> u32 {
    if f.remaining < 3 {
        return X_SPLIT;
    }
    let l = tryf!(f, 1, rget(f.regs, o.r[1]));
    let r = tryf!(f, 1, rget(f.regs, o.r[2]));
    let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
    f.regs[o.r[0] as usize] = v;
    let l2 = tryf!(f, 2, rget(f.regs, o.r[4]));
    let r2 = tryf!(f, 2, rget(f.regs, o.r[5]));
    let v2 = tryf!(f, 2, alu_fast(o.op_b, l2, r2));
    f.regs[o.r[3] as usize] = v2;
    let b = tryf!(f, 3, rget(f.regs, o.r[7]).and_then(Value::as_int));
    let off = tryf!(f, 3, rget(f.regs, o.r[3]).and_then(Value::as_int));
    let w = tryf!(f, 3, Heap::load_in(f.hwords, b, off));
    f.regs[o.r[6] as usize] = Value::Int(w);
    f.remaining -= 3;
    o.t[0]
}

/// Two specialised ALU ops feeding a heap store whose offset register is
/// the second op's destination (3 steps): `r[0] := r[1] op_a r[2]`,
/// `r[3] := r[4] op_b r[5]`, `heap[r[6] + r[3]] := r[7]`.
pub(crate) fn h_op2_hstore(f: &mut Frame, o: &OpData) -> u32 {
    if f.remaining < 3 {
        return X_SPLIT;
    }
    let l = tryf!(f, 1, rget(f.regs, o.r[1]));
    let r = tryf!(f, 1, rget(f.regs, o.r[2]));
    let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
    f.regs[o.r[0] as usize] = v;
    let l2 = tryf!(f, 2, rget(f.regs, o.r[4]));
    let r2 = tryf!(f, 2, rget(f.regs, o.r[5]));
    let v2 = tryf!(f, 2, alu_fast(o.op_b, l2, r2));
    f.regs[o.r[3] as usize] = v2;
    let b = tryf!(f, 3, rget(f.regs, o.r[6]).and_then(Value::as_int));
    let off = tryf!(f, 3, rget(f.regs, o.r[3]).and_then(Value::as_int));
    let sv = tryf!(f, 3, rget(f.regs, o.r[7]).and_then(Value::as_int));
    tryf!(f, 3, Heap::store_in(f.hwords, b, off, sv));
    f.remaining -= 3;
    o.t[0]
}

/// The whole-loop template for the canonical reduce shape: a
/// loop-head `CmpBranchBranch` whose body block is exactly a heap load,
/// an accumulate into a loop-carried register, and an op+jump back edge.
/// One dispatch runs as many full 6-step iterations as the budget
/// allows; every bail-out path (quantum, split, exit, fault) reproduces
/// the positions, step counts, and errors the per-span handlers would
/// have produced.
///
/// Payload: head cmp `r[0] := r[1] op_a r[2]`; body load `r[3] :=
/// heap[r[4] + r[5]]`; accumulate `r[6] := r[6] op_b r[3]`; back edge
/// `r[7] := r[7] op_c imm`. Jump slots: `t[0]` body entry pc, `t[1]`
/// loop exit pc, `t[2]` this pc.
pub(crate) fn h_reduce_loop(f: &mut Frame, o: &OpData) -> u32 {
    loop {
        if f.remaining < 6 {
            if f.remaining == 0 {
                // Quantum lands exactly at the loop head: hand the pc
                // back so the driver pauses there, as decoded dispatch
                // would at its `remaining == 0` check.
                return o.t[2];
            }
            if f.remaining < 3 {
                return X_SPLIT;
            }
            // Budget covers the head but maybe not the body: run the
            // head as a plain CmpBranchBranch and let the body spans'
            // own handlers (and their split logic) take over.
            let l = tryf!(f, 1, rget(f.regs, o.r[1]));
            let r = tryf!(f, 1, rget(f.regs, o.r[2]));
            let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
            f.regs[o.r[0] as usize] = v;
            return if v.is_true() {
                f.remaining -= 2;
                o.t[0]
            } else {
                f.remaining -= 3;
                o.t[1]
            };
        }
        // Head compare: 2 steps when taken, 3 on exit.
        let l = tryf!(f, 1, rget(f.regs, o.r[1]));
        let r = tryf!(f, 1, rget(f.regs, o.r[2]));
        let v = tryf!(f, 1, alu_fast(o.op_a, l, r));
        f.regs[o.r[0] as usize] = v;
        if !v.is_true() {
            f.remaining -= 3;
            return o.t[1];
        }
        f.remaining -= 2;
        // Body: heap load (1 step) + accumulate (1 step), attributed to
        // the body-entry span on fault. The accumulate's rhs register is
        // the load destination, so the loaded word is used directly —
        // the same value a register read would observe.
        let body = o.t[0];
        let b = tryf_at!(f, body, 1, rget(f.regs, o.r[4]).and_then(Value::as_int));
        let off = tryf_at!(f, body, 1, rget(f.regs, o.r[5]).and_then(Value::as_int));
        let w = tryf_at!(f, body, 1, Heap::load_in(f.hwords, b, off));
        f.regs[o.r[3] as usize] = Value::Int(w);
        let acc = tryf_at!(f, body, 2, rget(f.regs, o.r[6]));
        let v2 = tryf_at!(f, body, 2, alu_fast(o.op_b, acc, Value::Int(w)));
        f.regs[o.r[6] as usize] = v2;
        f.remaining -= 2;
        // Back edge op + jump (2 steps), attributed to the next span.
        let jl = tryf_at!(f, body + 1, 1, rget(f.regs, o.r[7]));
        let jv = tryf_at!(f, body + 1, 1, alu_fast(o.op_c, jl, Value::Int(o.imm)));
        f.regs[o.r[7] as usize] = jv;
        f.remaining -= 2;
    }
}

/// The five specialised operators on raw `i64`s — identical results to
/// [`alu_fast`] on two `Int`s (wrapping arithmetic, zero-is-true
/// comparisons), and total: no operand can make them fault. The fast
/// loop paths below lean on that totality to pre-validate whole
/// iterations.
#[inline(always)]
fn alu_i64(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Lt => {
            if a < b {
                0
            } else {
                1
            }
        }
        // Only the five specialised operators reach the templates.
        _ => {
            if a <= b {
                0
            } else {
                1
            }
        }
    }
}

/// Bulk fast path over [`h_reduce_loop`], installed by the compiler only
/// when the payload is statically eligible: `op_a ∈ {Lt, Le}`, `op_b ∈
/// {Add, Sub, Mul}`, back edge `i := i + 1` whose register is also the
/// compare lhs and the load offset (`r[1] == r[5] == r[7]`), and the six
/// registers `{t, i, n, w, base, acc}` pairwise distinct.
///
/// Under those conditions the loop-carried state is exactly `(i, acc)`
/// plus the per-iteration `t := true` and `w := heap[base + i]`, so the
/// handler computes the number of whole 6-step iterations the budget,
/// the trip count, and the in-bounds heap prefix jointly allow, folds
/// that heap slice in a tight scalar loop, and writes the four registers
/// back once. Every committed iteration is one the per-step path would
/// have executed identically (compare true, load in bounds, total ALU
/// ops), and everything else — exit, quantum, split, any fault — is
/// delegated to [`h_reduce_loop`] untouched.
pub(crate) fn h_reduce_loop_fast(f: &mut Frame, o: &OpData) -> u32 {
    if let (Value::Int(iv), Value::Int(nv), Value::Int(bv), Value::Int(accv)) = (
        f.regs[o.r[1] as usize],
        f.regs[o.r[2] as usize],
        f.regs[o.r[4] as usize],
        f.regs[o.r[6] as usize],
    ) {
        // Trip count and in-bounds prefix in i128: no overflow traps.
        let trip = (nv as i128) - (iv as i128) + (o.op_a == BinOp::Le) as i128;
        let start = (bv as i128) + (iv as i128);
        let avail = if start < 1 {
            0
        } else {
            (f.hwords.len() as i128) - start
        };
        let budget = (f.remaining / 6) as i128;
        let iters = trip.min(avail).min(budget).max(0) as usize;
        if iters > 0 {
            let s = start as usize;
            let slice = &f.hwords[s..s + iters];
            let mut acc = accv;
            match o.op_b {
                BinOp::Add => {
                    for &w in slice {
                        acc = acc.wrapping_add(w);
                    }
                }
                BinOp::Sub => {
                    for &w in slice {
                        acc = acc.wrapping_sub(w);
                    }
                }
                _ => {
                    for &w in slice {
                        acc = acc.wrapping_mul(w);
                    }
                }
            }
            // Committed-iteration register state, in program order:
            // head compare true, last loaded word, accumulator, index.
            f.regs[o.r[0] as usize] = Value::Int(0);
            f.regs[o.r[3] as usize] = Value::Int(slice[iters - 1]);
            f.regs[o.r[6] as usize] = Value::Int(acc);
            f.regs[o.r[1] as usize] = Value::Int(iv.wrapping_add(iters as i64));
            f.remaining -= 6 * iters as u64;
        }
    }
    h_reduce_loop(f, o)
}

/// The side-table payload of one guarded-update loop (the Floyd–Warshall
/// inner-loop shape): too many register roles for a 64-byte [`OpData`],
/// so the head span's `imm2` indexes into [`Frame::guarded`] instead.
///
/// The shape, with `j` the loop counter and every named non-temp
/// register loop-invariant:
///
/// ```text
/// head:  t := j cmp n;            if true -> body else -> exit
/// body:  x1 := la1 op1 ra1;  x2 := x1 op2 j;   a := heap[hb + x2]
///        cand := lc opc a;   x3 := ld opd rd;  x4 := x3 ope j
///        bb := heap[hb2 + x4]
///        c := cand cmp2 bb;       if true -> then else -> endif
/// then:  y1 := lt1 opf rt1;  y2 := y1 opg j;   heap[hb3 + y2] := cand
/// endif: j := j + 1; jump head
/// ```
#[derive(Debug, Clone, Copy)]
pub(crate) struct GuardedLoop {
    pub(crate) x1: u32,
    pub(crate) la1: u32,
    pub(crate) ra1: u32,
    pub(crate) op1: BinOp,
    pub(crate) x2: u32,
    pub(crate) op2: BinOp,
    pub(crate) a: u32,
    pub(crate) hb: u32,
    pub(crate) cand: u32,
    pub(crate) lc: u32,
    pub(crate) opc: BinOp,
    pub(crate) x3: u32,
    pub(crate) ld: u32,
    pub(crate) rd: u32,
    pub(crate) opd: BinOp,
    pub(crate) x4: u32,
    pub(crate) ope: BinOp,
    pub(crate) bb: u32,
    pub(crate) hb2: u32,
    pub(crate) c: u32,
    pub(crate) cmp2: BinOp,
    pub(crate) y1: u32,
    pub(crate) lt1: u32,
    pub(crate) rt1: u32,
    pub(crate) opf: BinOp,
    pub(crate) y2: u32,
    pub(crate) opg: BinOp,
    pub(crate) hb3: u32,
}

/// Steps one guarded-update iteration costs when the inner branch is
/// taken (head 2, address/load 5, compare/load 2, branch 2, store 4,
/// back edge 2) and when it falls through (store block replaced by one
/// jump).
const GUARDED_TAKEN: u64 = 17;
const GUARDED_NOT_TAKEN: u64 = 15;

/// Whole-loop template for the guarded-update shape. The head span's
/// [`OpData`] carries the plain `CmpBranchBranch` payload (so the slow
/// path *is* [`h_cbb_r`]); `imm2` indexes the [`GuardedLoop`] roles.
///
/// Each iteration is **pre-validated** — every operand an `Int`, both
/// loads and the conditional store in bounds, the budget covering the
/// iteration's exact step count — before any state is touched, and the
/// five specialised operators are total on ints, so a committed
/// iteration can neither fault nor pause. Register writes are then
/// committed in program order (so arbitrary temp aliasing matches the
/// per-step path) and the store lands immediately (so later loads
/// observe it). Any disqualifier breaks to the plain head compare and
/// the body spans' own handlers, which reproduce faults, splits, and
/// pauses at exactly the reference positions.
pub(crate) fn h_guarded_loop(f: &mut Frame, o: &OpData) -> u32 {
    let g = f.guarded[o.imm2 as usize];
    'fast: {
        macro_rules! int_of {
            ($i:expr) => {
                match f.regs[$i as usize] {
                    Value::Int(v) => v,
                    _ => break 'fast,
                }
            };
        }
        // Loop-invariant registers (never written by the loop) and the
        // counter; any non-int falls to the slow path, which types them.
        let nv = int_of!(o.r[2]);
        let mut jv = int_of!(o.r[1]);
        let la1 = int_of!(g.la1);
        let ra1 = int_of!(g.ra1);
        let hb = int_of!(g.hb);
        let lc = int_of!(g.lc);
        let ld = int_of!(g.ld);
        let rd = int_of!(g.rd);
        let hb2 = int_of!(g.hb2);
        let lt1 = int_of!(g.lt1);
        let rt1 = int_of!(g.rt1);
        let hb3 = int_of!(g.hb3);
        let len = f.hwords.len() as i64;
        loop {
            if f.remaining < GUARDED_NOT_TAKEN || alu_i64(o.op_a, jv, nv) != 0 {
                break;
            }
            // Dry pass: compute the whole iteration into locals.
            let x1v = alu_i64(g.op1, la1, ra1);
            let x2v = alu_i64(g.op2, x1v, jv);
            let addr_a = hb.wrapping_add(x2v);
            if addr_a <= 0 || addr_a >= len {
                break;
            }
            let av = f.hwords[addr_a as usize];
            let candv = alu_i64(g.opc, lc, av);
            let x3v = alu_i64(g.opd, ld, rd);
            let x4v = alu_i64(g.ope, x3v, jv);
            let addr_b = hb2.wrapping_add(x4v);
            if addr_b <= 0 || addr_b >= len {
                break;
            }
            let bbv = f.hwords[addr_b as usize];
            let cv = alu_i64(g.cmp2, candv, bbv);
            let (cost, y1v, y2v, addr_s) = if cv == 0 {
                let y1v = alu_i64(g.opf, lt1, rt1);
                let y2v = alu_i64(g.opg, y1v, jv);
                let addr_s = hb3.wrapping_add(y2v);
                if addr_s <= 0 || addr_s >= len {
                    break;
                }
                (GUARDED_TAKEN, y1v, y2v, addr_s)
            } else {
                (GUARDED_NOT_TAKEN, 0, 0, 0)
            };
            if f.remaining < cost {
                break;
            }
            // Commit, in program order.
            f.regs[o.r[0] as usize] = Value::Int(0);
            f.regs[g.x1 as usize] = Value::Int(x1v);
            f.regs[g.x2 as usize] = Value::Int(x2v);
            f.regs[g.a as usize] = Value::Int(av);
            f.regs[g.cand as usize] = Value::Int(candv);
            f.regs[g.x3 as usize] = Value::Int(x3v);
            f.regs[g.x4 as usize] = Value::Int(x4v);
            f.regs[g.bb as usize] = Value::Int(bbv);
            f.regs[g.c as usize] = Value::Int(cv);
            if cv == 0 {
                f.regs[g.y1 as usize] = Value::Int(y1v);
                f.regs[g.y2 as usize] = Value::Int(y2v);
                f.hwords[addr_s as usize] = candv;
            }
            jv = jv.wrapping_add(1);
            f.regs[o.r[1] as usize] = Value::Int(jv);
            f.remaining -= cost;
        }
    }
    // Whatever the fast loop could not commit: pause at the head on an
    // exhausted quantum, else run the head as a plain CmpBranchBranch
    // and let the body spans' own handlers take over.
    if f.remaining == 0 {
        return o.t[2];
    }
    h_cbb_r(f, o)
}
