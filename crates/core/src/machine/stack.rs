//! Task stacks (the extension of Figure 21).
//!
//! The formal model represents a stack as an immutable tuple held in a
//! register; `salloc`/`sfree` functionally prepend and drop cells, and
//! pointer arithmetic (`sp + n`) yields views into the same tuple. The
//! paper notes the semantics "is prescriptive only for the high-level
//! behavior of the stack, not to its implementation". We implement the
//! realistic variant the paper's runtime uses: stacks are mutable arrays
//! shared by the tasks of a fork tree, and a stack *pointer* is a pair of
//! a stack identifier and a position measured **from the base**, so that
//! pushes by the owner of the shallow end never invalidate pointers held
//! by the join continuation into the deep end.
//!
//! Conventions (matching `mem[sp + n]` in the paper):
//!
//! * position `pos` is the index, from the base, of the cell `sp` points
//!   at; a fresh empty stack has `pos = -1`;
//! * `mem[sp + n]` addresses position `pos - n` (larger offsets reach
//!   *older* cells);
//! * `sp + n` (pointer arithmetic) moves deeper: `pos - n`; `sp - n`
//!   moves shallower.

use crate::machine::value::{MachineError, Value};

/// Identifier of a stack in a [`StackStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StackId(pub(crate) u32);

impl StackId {
    /// Index into the store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A pointer into a task stack: the `uptr` of the formal grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StackRef {
    /// Which stack.
    pub stack: StackId,
    /// Position from the base of the cell pointed at; `-1` for an empty
    /// stack.
    pub pos: i64,
}

impl StackRef {
    /// `sp + n`: move `n` cells deeper (toward the base).
    pub fn deeper(self, n: i64) -> StackRef {
        StackRef {
            stack: self.stack,
            pos: self.pos - n,
        }
    }

    /// `sp - n`: move `n` cells shallower (away from the base).
    pub fn shallower(self, n: i64) -> StackRef {
        StackRef {
            stack: self.stack,
            pos: self.pos + n,
        }
    }
}

/// Which promotion-ready mark `prmsplit` pops when several are visible.
///
/// The paper's policy (§2.3) is *outermost first*: promoting the oldest
/// mark hands a thief the largest remaining subcomputation, so each
/// heartbeat buys the most parallelism for one fixed promotion cost.
/// [`NewestFirst`](PromotionOrder::NewestFirst) is the ablation foil —
/// innermost-first promotion of the smallest latent subcomputation.
/// Results never depend on the order (both pop a valid mark); work, span,
/// and task counts do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PromotionOrder {
    /// Pop the mark closest to the stack base (the paper's policy).
    #[default]
    OldestFirst,
    /// Pop the mark closest to `sp` (ablation: innermost first).
    NewestFirst,
}

/// The store of all task stacks of a machine.
#[derive(Debug, Default, Clone)]
pub struct StackStore {
    stacks: Vec<Vec<Value>>,
    order: PromotionOrder,
}

impl StackStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        StackStore::default()
    }

    /// `snew`: allocates a fresh, empty stack.
    pub fn snew(&mut self) -> StackRef {
        let id = StackId(self.stacks.len() as u32);
        self.stacks.push(Vec::new());
        StackRef { stack: id, pos: -1 }
    }

    /// Number of stacks ever allocated.
    pub fn stack_count(&self) -> usize {
        self.stacks.len()
    }

    fn cells(&self, id: StackId) -> &Vec<Value> {
        &self.stacks[id.index()]
    }

    fn cells_mut(&mut self, id: StackId) -> &mut Vec<Value> {
        &mut self.stacks[id.index()]
    }

    /// `salloc sp, n`: allocates `n` zero-initialised cells shallower than
    /// `sp`, returning the updated pointer (which addresses the newest
    /// cell). Cells above `sp` that were abandoned by pointer arithmetic
    /// (e.g. the promoted frame skipped by `joink`) are reclaimed.
    #[inline]
    pub fn salloc(&mut self, sp: StackRef, n: u32) -> Result<StackRef, MachineError> {
        let cells = self.cells_mut(sp.stack);
        let live = (sp.pos + 1) as usize;
        if sp.pos < -1 || live > cells.len() {
            return Err(MachineError::StackOutOfRange {
                pos: sp.pos,
                len: cells.len(),
            });
        }
        cells.truncate(live);
        cells.extend(std::iter::repeat_n(Value::Int(0), n as usize));
        Ok(StackRef {
            stack: sp.stack,
            pos: sp.pos + n as i64,
        })
    }

    /// `sfree sp, n`: frees `n` cells from the front of the view, returning
    /// the updated pointer.
    #[inline]
    pub fn sfree(&mut self, sp: StackRef, n: u32) -> Result<StackRef, MachineError> {
        let new_pos = sp.pos - n as i64;
        if new_pos < -1 {
            return Err(MachineError::StackUnderflow);
        }
        // Physically pop the cells if sp is the true top; otherwise this is
        // a view adjustment and the cells become dead (reclaimed by the
        // next salloc at or below new_pos).
        let cells = self.cells_mut(sp.stack);
        if sp.pos + 1 == cells.len() as i64 {
            cells.truncate((new_pos + 1) as usize);
        }
        Ok(StackRef {
            stack: sp.stack,
            pos: new_pos,
        })
    }

    fn check(&self, sp: StackRef, offset: u32) -> Result<usize, MachineError> {
        let pos = sp.pos - offset as i64;
        let len = self.cells(sp.stack).len();
        if pos < 0 || pos as usize >= len {
            return Err(MachineError::StackOutOfRange { pos, len });
        }
        Ok(pos as usize)
    }

    /// `r := mem[sp + offset]`: loads a cell.
    ///
    /// (Hot path: a negative position casts to a `usize` far beyond any
    /// length, so the single `get` doubles as the upper *and* lower range
    /// check of [`Self::check`].)
    #[inline]
    pub fn load(&self, sp: StackRef, offset: u32) -> Result<Value, MachineError> {
        let cells = &self.stacks[sp.stack.index()];
        let pos = sp.pos - offset as i64;
        cells
            .get(pos as usize)
            .copied()
            .ok_or(MachineError::StackOutOfRange {
                pos,
                len: cells.len(),
            })
    }

    /// `mem[sp + offset] := v`: stores to a cell.
    #[inline]
    pub fn store(&mut self, sp: StackRef, offset: u32, v: Value) -> Result<(), MachineError> {
        let cells = &mut self.stacks[sp.stack.index()];
        let pos = sp.pos - offset as i64;
        let len = cells.len();
        match cells.get_mut(pos as usize) {
            Some(cell) => {
                *cell = v;
                Ok(())
            }
            None => Err(MachineError::StackOutOfRange { pos, len }),
        }
    }

    /// `prmpush mem[sp + offset]`: places a promotion-ready mark.
    pub fn prmpush(&mut self, sp: StackRef, offset: u32) -> Result<(), MachineError> {
        self.store(sp, offset, Value::Mark)
    }

    /// `prmpop mem[sp + offset]`: removes a promotion-ready mark.
    ///
    /// # Errors
    ///
    /// [`MachineError::NotAMark`] if the cell does not hold a mark.
    pub fn prmpop(&mut self, sp: StackRef, offset: u32) -> Result<(), MachineError> {
        let pos = self.check(sp, offset)?;
        let cells = self.cells_mut(sp.stack);
        if cells[pos] != Value::Mark {
            return Err(MachineError::NotAMark);
        }
        cells[pos] = Value::Int(0);
        Ok(())
    }

    /// `r := prmempty sp`: `0` (true) if no cell visible from `sp` holds a
    /// mark, `1` otherwise.
    pub fn prmempty(&self, sp: StackRef) -> Result<Value, MachineError> {
        let cells = self.cells(sp.stack);
        let top = sp.pos.min(cells.len() as i64 - 1);
        let any = (0..=top).rev().any(|i| cells[i as usize] == Value::Mark);
        Ok(Value::Int(if any { 1 } else { 0 }))
    }

    /// Selects which mark `prmsplit` pops (default:
    /// [`PromotionOrder::OldestFirst`], the paper's policy).
    pub fn set_promotion_order(&mut self, order: PromotionOrder) {
        self.order = order;
    }

    /// `prmsplit sp, dst`: pops the *oldest* mark visible from `sp`
    /// (smallest position from the base, i.e. the outermost latent
    /// parallelism), returning its offset relative to `sp`. Under
    /// [`PromotionOrder::NewestFirst`] it pops the newest mark instead.
    ///
    /// # Errors
    ///
    /// [`MachineError::NoMark`] if no mark is visible.
    pub fn prmsplit(&mut self, sp: StackRef) -> Result<i64, MachineError> {
        let top = {
            let cells = self.cells(sp.stack);
            sp.pos.min(cells.len() as i64 - 1)
        };
        let order = self.order;
        let cells = self.cells_mut(sp.stack);
        let found = match order {
            PromotionOrder::OldestFirst => {
                (0..=top.max(-1)).find(|&i| i >= 0 && cells[i as usize] == Value::Mark)
            }
            PromotionOrder::NewestFirst => (0..=top.max(-1))
                .rev()
                .find(|&i| i >= 0 && cells[i as usize] == Value::Mark),
        };
        match found {
            Some(i) => {
                cells[i as usize] = Value::Int(0);
                Ok(sp.pos - i)
            }
            None => Err(MachineError::NoMark),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snew_then_salloc_and_addressing() {
        let mut st = StackStore::new();
        let sp = st.snew();
        assert_eq!(sp.pos, -1);
        let sp = st.salloc(sp, 3).unwrap();
        assert_eq!(sp.pos, 2);
        // Fresh cells are zero.
        for k in 0..3 {
            assert_eq!(st.load(sp, k).unwrap(), Value::Int(0));
        }
        st.store(sp, 0, Value::Int(10)).unwrap();
        st.store(sp, 2, Value::Int(12)).unwrap();
        assert_eq!(st.load(sp, 0).unwrap(), Value::Int(10));
        assert_eq!(st.load(sp, 2).unwrap(), Value::Int(12));
    }

    #[test]
    fn nested_frames_lifo() {
        let mut st = StackStore::new();
        let sp = st.snew();
        let sp = st.salloc(sp, 2).unwrap();
        st.store(sp, 0, Value::Int(1)).unwrap();
        let sp = st.salloc(sp, 2).unwrap();
        st.store(sp, 0, Value::Int(2)).unwrap();
        // Deeper frame's cell is at offset 2 now.
        assert_eq!(st.load(sp, 2).unwrap(), Value::Int(1));
        let sp = st.sfree(sp, 2).unwrap();
        assert_eq!(st.load(sp, 0).unwrap(), Value::Int(1));
    }

    #[test]
    fn out_of_range_load_rejected() {
        let mut st = StackStore::new();
        let sp = st.snew();
        let sp = st.salloc(sp, 1).unwrap();
        assert!(matches!(
            st.load(sp, 1),
            Err(MachineError::StackOutOfRange { .. })
        ));
    }

    #[test]
    fn sfree_underflow_rejected() {
        let mut st = StackStore::new();
        let sp = st.snew();
        let sp = st.salloc(sp, 1).unwrap();
        assert!(matches!(st.sfree(sp, 2), Err(MachineError::StackUnderflow)));
    }

    #[test]
    fn marks_push_pop_empty() {
        let mut st = StackStore::new();
        let sp = st.snew();
        let sp = st.salloc(sp, 3).unwrap();
        assert_eq!(st.prmempty(sp).unwrap(), Value::Int(0)); // empty = true(0)
        st.prmpush(sp, 1).unwrap();
        assert_eq!(st.prmempty(sp).unwrap(), Value::Int(1));
        st.prmpop(sp, 1).unwrap();
        assert_eq!(st.prmempty(sp).unwrap(), Value::Int(0));
        assert!(matches!(st.prmpop(sp, 1), Err(MachineError::NotAMark)));
    }

    #[test]
    fn prmsplit_takes_oldest_mark() {
        let mut st = StackStore::new();
        let sp = st.snew();
        // Two frames, each with a mark at its offset 1 (as in fib).
        let sp = st.salloc(sp, 3).unwrap();
        st.prmpush(sp, 1).unwrap();
        let sp = st.salloc(sp, 3).unwrap();
        st.prmpush(sp, 1).unwrap();
        // Oldest mark is in the deep frame: relative offset 4.
        assert_eq!(st.prmsplit(sp).unwrap(), 4);
        // The remaining (newer) mark:
        assert_eq!(st.prmsplit(sp).unwrap(), 1);
        assert!(matches!(st.prmsplit(sp), Err(MachineError::NoMark)));
    }

    #[test]
    fn prmsplit_newest_first_inverts_the_order() {
        let mut st = StackStore::new();
        st.set_promotion_order(PromotionOrder::NewestFirst);
        let sp = st.snew();
        let sp = st.salloc(sp, 3).unwrap();
        st.prmpush(sp, 1).unwrap();
        let sp = st.salloc(sp, 3).unwrap();
        st.prmpush(sp, 1).unwrap();
        // Newest mark is in the shallow frame: relative offset 1.
        assert_eq!(st.prmsplit(sp).unwrap(), 1);
        assert_eq!(st.prmsplit(sp).unwrap(), 4);
        assert!(matches!(st.prmsplit(sp), Err(MachineError::NoMark)));
    }

    #[test]
    fn prmsplit_orders_agree_on_a_single_mark() {
        for order in [PromotionOrder::OldestFirst, PromotionOrder::NewestFirst] {
            let mut st = StackStore::new();
            st.set_promotion_order(order);
            let sp = st.snew();
            let sp = st.salloc(sp, 5).unwrap();
            st.prmpush(sp, 2).unwrap();
            assert_eq!(st.prmsplit(sp).unwrap(), 2, "{order:?}");
        }
    }

    #[test]
    fn view_sfree_then_salloc_reclaims_dead_cells() {
        let mut st = StackStore::new();
        let sp = st.snew();
        let sp = st.salloc(sp, 4).unwrap();
        st.store(sp, 3, Value::Int(99)).unwrap();
        // Move the pointer deeper (as joink does) without freeing.
        let view = sp.deeper(3);
        assert_eq!(st.load(view, 0).unwrap(), Value::Int(99));
        // salloc from the view reclaims the 3 dead cells above it.
        let sp2 = st.salloc(view, 2).unwrap();
        assert_eq!(sp2.pos, view.pos + 2);
        assert_eq!(st.load(sp2, 2).unwrap(), Value::Int(99));
    }

    #[test]
    fn pointer_arithmetic_roundtrip() {
        let r = StackRef {
            stack: StackId(0),
            pos: 10,
        };
        assert_eq!(r.deeper(3).pos, 7);
        assert_eq!(r.deeper(3).shallower(3), r);
    }
}
