//! The reference executor: runs a TPAL program's task set under a
//! deterministic scheduling policy with heartbeat promotion and cost
//! accounting.
//!
//! This executor models a single abstract processor multiplexing the task
//! set (the big-step evaluation of Figure 30 linearised into small steps).
//! True multicore execution, with per-core heartbeat timers, steal costs,
//! and delivery-latency models, lives in the `tpal-sim` crate and reuses
//! the same single-step semantics.

use std::collections::VecDeque;

use crate::cost::CostGraph;
use crate::isa::Label;
use crate::machine::stack::PromotionOrder;
use crate::machine::step::{
    resolve_join, step_task, JoinResolution, RunPause, StepOutcome, Stores, TaskCost, TaskState,
};
use crate::machine::value::{MachineError, RegFile, Value};
use crate::program::Program;
use crate::tier::{ExecBackend, ExecTier};

/// How the reference executor interleaves runnable tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// After a fork, keep running the parent; children queue FIFO. This is
    /// the serial-like order a single worker produces under work stealing
    /// with no thieves.
    #[default]
    ParentFirst,
    /// After a fork, run the child immediately; the parent queues. (The
    /// depth-first order of Cilk-style continuation stealing.)
    ChildFirst,
    /// Rotate through runnable tasks every `quantum` instructions.
    RoundRobin {
        /// Instructions per turn.
        quantum: u64,
    },
    /// Pick a random runnable task every `quantum` instructions, from a
    /// deterministic seed.
    Random {
        /// RNG seed.
        seed: u64,
        /// Instructions per turn.
        quantum: u64,
    },
}

/// Configuration of a [`Machine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// The heartbeat threshold ♥, in instructions. A task triggers a
    /// heartbeat interrupt at the next promotion-ready program point once
    /// its cycle counter exceeds this. `u64::MAX` disables heartbeats
    /// (serial-by-default execution).
    ///
    /// ♥ must exceed the length of the longest heartbeat-handler *abort*
    /// path in the program, or a task at a promotion-ready point with no
    /// promotable parallelism re-triggers the interrupt forever — the
    /// formal model has the same requirement, which real deployments meet
    /// trivially (♥ ≈ 100µs versus a handler of a few dozen cycles). The
    /// executor's step limit converts such livelocks into
    /// [`MachineError::StepLimitExceeded`].
    pub heartbeat: u64,
    /// The fork-join cost weight τ of the cost semantics (Figure 28),
    /// charged to work and span at every join merge.
    pub tau: u64,
    /// Abort execution after this many total instructions.
    pub step_limit: u64,
    /// Task interleaving policy.
    pub policy: SchedulePolicy,
    /// Build the explicit series-parallel cost graph of the execution
    /// (Figure 28) alongside the incremental work/span counters; the
    /// graph is returned in [`Outcome::cost_graph`]. Costs O(forks)
    /// memory.
    pub build_cost_graph: bool,
    /// Which promotion-ready mark `prmsplit` pops: the paper's
    /// outermost-first policy, or its innermost-first ablation foil.
    pub promotion_order: PromotionOrder,
    /// Which interpreter tier executes straight-line stretches. All
    /// tiers are bit-identical in outcome (see [`crate::tier`]).
    pub exec_tier: ExecTier,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            heartbeat: 100,
            tau: 10,
            step_limit: 500_000_000,
            policy: SchedulePolicy::ParentFirst,
            build_cost_graph: false,
            promotion_order: PromotionOrder::OldestFirst,
            exec_tier: ExecTier::default(),
        }
    }
}

impl MachineConfig {
    /// A configuration with heartbeats disabled: the program runs its
    /// serial-by-default path only.
    pub fn serial() -> Self {
        MachineConfig {
            heartbeat: u64::MAX,
            ..MachineConfig::default()
        }
    }

    /// Sets the heartbeat threshold.
    pub fn with_heartbeat(mut self, heartbeat: u64) -> Self {
        self.heartbeat = heartbeat;
        self
    }

    /// Sets the fork-join cost weight.
    pub fn with_tau(mut self, tau: u64) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Enables explicit cost-graph construction.
    pub fn with_cost_graph(mut self) -> Self {
        self.build_cost_graph = true;
        self
    }

    /// Sets the promotion order (default: the paper's outermost-first).
    pub fn with_promotion_order(mut self, order: PromotionOrder) -> Self {
        self.promotion_order = order;
        self
    }

    /// Sets the execution tier (default: threaded).
    pub fn with_exec_tier(mut self, tier: ExecTier) -> Self {
        self.exec_tier = tier;
        self
    }
}

/// Counters collected during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total instructions executed across all tasks.
    pub instructions: u64,
    /// Number of `fork` instructions executed (tasks created).
    pub forks: u64,
    /// Number of heartbeat interrupts serviced (handler diversions).
    pub promotions: u64,
    /// Number of `join` instructions executed.
    pub joins: u64,
    /// Number of pair merges performed during join resolution.
    pub merges: u64,
    /// High-water mark of simultaneously live tasks.
    pub max_live_tasks: usize,
}

/// The result of running a machine to completion.
#[derive(Debug, Clone)]
pub struct Outcome {
    final_regs: Option<RegFile>,
    reg_names: Vec<String>,
    /// Execution counters.
    pub stats: ExecStats,
    /// Total work per the cost semantics: every instruction weighs 1 and
    /// every fork-join weighs τ.
    pub work: u64,
    /// Critical-path length (span) per the cost semantics.
    pub span: u64,
    /// The explicit cost graph, when
    /// [`MachineConfig::build_cost_graph`] was set. Its
    /// [`CostGraph::work`]/[`CostGraph::span`] at the configured τ equal
    /// [`Outcome::work`]/[`Outcome::span`].
    pub cost_graph: Option<CostGraph>,
}

impl Outcome {
    /// Reads an integer register from the halting task's register file.
    ///
    /// Returns `None` if the machine did not halt through a `halt`
    /// instruction, the name is unknown, or the register holds a
    /// non-integer.
    pub fn read_reg(&self, name: &str) -> Option<i64> {
        let idx = self.reg_names.iter().position(|n| n == name)?;
        match self
            .final_regs
            .as_ref()?
            .read_raw(crate::isa::Reg(idx as u32))
        {
            Value::Int(n) => Some(n),
            _ => None,
        }
    }

    /// The halting task's full register file, if the machine halted.
    pub fn final_regs(&self) -> Option<&RegFile> {
        self.final_regs.as_ref()
    }

    /// Average parallelism: work divided by span.
    pub fn parallelism(&self) -> f64 {
        self.work as f64 / self.span.max(1) as f64
    }
}

/// A tiny deterministic RNG (SplitMix64) for the random schedule policy;
/// kept internal so core has no external dependencies.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The reference executor for TPAL programs.
///
/// See the crate-level example for typical use: construct, seed argument
/// registers with [`Machine::set_reg`], then [`Machine::run`].
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    backend: ExecBackend,
    config: MachineConfig,
    stores: Stores,
    initial: Option<TaskState>,
}

impl<'p> Machine<'p> {
    /// Creates a machine whose initial task starts at the program's entry
    /// block.
    pub fn new(program: &'p Program, config: MachineConfig) -> Self {
        Machine::with_entry(program, config, program.entry())
    }

    /// Creates a machine whose initial task starts at `entry`.
    pub fn with_entry(program: &'p Program, config: MachineConfig, entry: Label) -> Self {
        let mut initial = TaskState::new(program, entry);
        if config.build_cost_graph {
            initial.cost = Some(TaskCost::new());
        }
        let mut stores = Stores::new();
        stores.stacks.set_promotion_order(config.promotion_order);
        Machine {
            program,
            backend: ExecBackend::new(program, config.exec_tier),
            config,
            stores,
            initial: Some(initial),
        }
    }

    /// Seeds an integer argument register of the initial task.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownName`] if the program never names `name`.
    pub fn set_reg(&mut self, name: &str, value: i64) -> Result<(), MachineError> {
        self.set_value(name, Value::Int(value))
    }

    /// Seeds an arbitrary value into an argument register.
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownName`] if the program never names `name`.
    pub fn set_value(&mut self, name: &str, value: Value) -> Result<(), MachineError> {
        let reg = self.program.reg(name).ok_or(MachineError::UnknownName)?;
        self.initial
            .as_mut()
            .expect("machine already run")
            .regs
            .write(reg, value);
        Ok(())
    }

    /// Gives the initial task a fresh stack in register `name` (equivalent
    /// to an `snew` performed by a caller).
    ///
    /// # Errors
    ///
    /// [`MachineError::UnknownName`] if the program never names `name`.
    pub fn set_fresh_stack(&mut self, name: &str) -> Result<(), MachineError> {
        let sp = self.stores.stacks.snew();
        self.set_value(name, Value::Stack(sp))
    }

    /// Allocates and initialises a heap array before the run, returning
    /// its base address (typically then seeded into an argument register
    /// with [`Machine::set_reg`]).
    pub fn alloc_array(&mut self, data: &[i64]) -> i64 {
        self.stores.heap.alloc_init(data)
    }

    /// Allocates a zeroed heap array of `len` words before the run.
    pub fn alloc_zeroed(&mut self, len: usize) -> i64 {
        self.stores.heap.alloc(len)
    }

    /// Read access to the machine's heap (e.g. to extract output arrays
    /// after [`Machine::run`]).
    pub fn heap(&self) -> &crate::machine::heap::Heap {
        &self.stores.heap
    }

    /// Runs the machine to completion.
    ///
    /// # Errors
    ///
    /// Any [`MachineError`] raised by a task; [`MachineError::Deadlock`]
    /// if the task set drains without a `halt`;
    /// [`MachineError::StepLimitExceeded`] if the step limit is hit.
    pub fn run(&mut self) -> Result<Outcome, MachineError> {
        let program = self.program;
        let config = self.config;
        let mut stats = ExecStats::default();
        let mut rng = match config.policy {
            SchedulePolicy::Random { seed, .. } => SplitMix64(seed ^ 0xA076_1D64_78BD_642F),
            _ => SplitMix64(0),
        };

        let mut queue: VecDeque<TaskState> = VecDeque::new();
        queue.push_back(self.initial.take().expect("machine already run"));

        let mut halted: Option<TaskState> = None;

        'outer: while let Some(mut task) = {
            // Pick the next task per policy.
            match config.policy {
                SchedulePolicy::Random { quantum: _, .. } if queue.len() > 1 => {
                    let i = rng.below(queue.len());
                    queue.swap(0, i);
                    queue.pop_front()
                }
                _ => queue.pop_front(),
            }
        } {
            let mut slice: u64 = 0;
            let quantum = match config.policy {
                SchedulePolicy::RoundRobin { quantum } | SchedulePolicy::Random { quantum, .. } => {
                    quantum
                }
                _ => u64::MAX,
            };
            // Straight-line stretches run batched through the decoded
            // micro-op stream; the batch budget is the least of the three
            // events the per-step reference loop would notice — heartbeat
            // expiry (the poll fires once `cycles` exceeds ♥), the end of
            // the scheduling slice, and the global step limit. Boundaries
            // and promotions are then handled exactly as the per-step
            // loop handles them.
            'inner: loop {
                let watch = task.cycles > config.heartbeat;
                let until_hb = if watch {
                    u64::MAX
                } else {
                    (config.heartbeat - task.cycles).saturating_add(1)
                };
                let until_quantum = if queue.is_empty() {
                    u64::MAX
                } else {
                    quantum.saturating_sub(slice).max(1)
                };
                let until_limit = config
                    .step_limit
                    .saturating_add(1)
                    .saturating_sub(stats.instructions);
                let max_steps = until_hb.min(until_quantum).min(until_limit);

                let (steps, pause) = self.backend.run_until(
                    self.program,
                    &mut task,
                    &mut self.stores,
                    max_steps,
                    watch,
                )?;
                stats.instructions += steps;
                if stats.instructions > config.step_limit {
                    return Err(MachineError::StepLimitExceeded {
                        limit: config.step_limit,
                    });
                }
                slice += steps;

                match pause {
                    RunPause::Quantum => {}
                    RunPause::PromotionReady => {
                        let handler = task
                            .at_promotion_point(program)
                            .expect("PromotionReady pause implies a prppt entry");
                        task.divert_to_handler(handler);
                        stats.promotions += 1;
                    }
                    RunPause::Boundary => match step_task(program, &mut task, &mut self.stores)? {
                        StepOutcome::Ran => {
                            stats.instructions += 1;
                            if stats.instructions > config.step_limit {
                                return Err(MachineError::StepLimitExceeded {
                                    limit: config.step_limit,
                                });
                            }
                            slice += 1;
                        }
                        StepOutcome::Halted => {
                            stats.instructions += 1;
                            halted = Some(task);
                            break 'outer;
                        }
                        StepOutcome::Forked { child } => {
                            stats.forks += 1;
                            match config.policy {
                                SchedulePolicy::ChildFirst => {
                                    queue.push_front(task);
                                    task = *child;
                                }
                                _ => queue.push_back(*child),
                            }
                            stats.max_live_tasks = stats.max_live_tasks.max(queue.len() + 1);
                            stats.instructions += 1;
                            if stats.instructions > config.step_limit {
                                return Err(MachineError::StepLimitExceeded {
                                    limit: config.step_limit,
                                });
                            }
                            slice += 1;
                        }
                        StepOutcome::Joined { jr } => {
                            stats.instructions += 1;
                            stats.joins += 1;
                            match resolve_join(program, task, jr, &mut self.stores, config.tau)? {
                                JoinResolution::TaskDied => continue 'outer,
                                JoinResolution::Merged(resumed) => {
                                    stats.merges += 1;
                                    task = *resumed;
                                    continue 'inner;
                                }
                                JoinResolution::Completed(resumed) => {
                                    task = *resumed;
                                    continue 'inner;
                                }
                            }
                        }
                    },
                }
                if slice >= quantum && !queue.is_empty() {
                    queue.push_back(task);
                    continue 'outer;
                }
            }
        }

        let (work, span, final_regs, cost_graph) = match halted {
            Some(mut t) => (
                t.rel_work,
                t.rel_span,
                Some(t.regs),
                t.cost.as_mut().map(TaskCost::flush),
            ),
            None => {
                if queue.is_empty() {
                    return Err(MachineError::Deadlock);
                }
                unreachable!("loop exits only on halt or empty queue")
            }
        };

        Ok(Outcome {
            final_regs,
            reg_names: (0..program.reg_count())
                .map(|i| program.reg_name(crate::isa::Reg(i as u32)).to_owned())
                .collect(),
            stats,
            work,
            span,
            cost_graph,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, Operand};
    use crate::program::ProgramBuilder;

    fn const_program(n: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let r = b.reg("r");
        b.block(
            "main",
            vec![
                Instr::Move {
                    dst: r,
                    src: Operand::Int(n),
                },
                Instr::Halt,
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn run_constant_program() {
        let p = const_program(99);
        let mut m = Machine::new(&p, MachineConfig::default());
        let out = m.run().unwrap();
        assert_eq!(out.read_reg("r"), Some(99));
        assert_eq!(out.stats.instructions, 2);
        assert_eq!(out.work, 2);
        assert_eq!(out.span, 2);
    }

    #[test]
    fn set_reg_unknown_name() {
        let p = const_program(0);
        let mut m = Machine::new(&p, MachineConfig::default());
        assert!(matches!(
            m.set_reg("nope", 1),
            Err(MachineError::UnknownName)
        ));
    }

    #[test]
    fn step_limit_enforced() {
        // An infinite loop.
        let mut b = ProgramBuilder::new();
        let l = b.label("spin");
        b.block(
            "spin",
            vec![Instr::Jump {
                target: Operand::Label(l),
            }],
        );
        let p = b.build().unwrap();
        let mut m = Machine::new(
            &p,
            MachineConfig {
                step_limit: 1000,
                ..MachineConfig::default()
            },
        );
        assert!(matches!(
            m.run(),
            Err(MachineError::StepLimitExceeded { limit: 1000 })
        ));
    }

    #[test]
    fn outcome_parallelism_is_work_over_span() {
        let p = const_program(0);
        let out = Machine::new(&p, MachineConfig::default()).run().unwrap();
        assert!((out.parallelism() - 1.0).abs() < 1e-9);
    }
}
