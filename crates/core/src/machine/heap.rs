//! The shared heap (the extension the paper's Appendix B.2 notes is
//! "also possible" but omits): a single word-addressed store of 64-bit
//! integers, shared by all tasks. Addresses are plain integers; address 0
//! is null. Allocation is a bump allocator; workloads are bounded, so
//! nothing is freed.

use crate::machine::value::MachineError;

/// The shared heap of a machine.
#[derive(Debug, Clone, Default)]
pub struct Heap {
    words: Vec<i64>,
}

impl Heap {
    /// Creates an empty heap. Word address 0 is reserved as null.
    pub fn new() -> Self {
        Heap { words: vec![0] }
    }

    /// Allocates `size` zero-initialised words, returning the base
    /// address.
    pub fn alloc(&mut self, size: usize) -> i64 {
        if self.words.is_empty() {
            self.words.push(0);
        }
        let base = self.words.len() as i64;
        self.words.resize(self.words.len() + size, 0);
        base
    }

    /// Allocates and initialises an array, returning its base address.
    pub fn alloc_init(&mut self, data: &[i64]) -> i64 {
        let base = self.alloc(data.len());
        self.words[base as usize..base as usize + data.len()].copy_from_slice(data);
        base
    }

    fn check(&self, addr: i64) -> Result<usize, MachineError> {
        if addr <= 0 || addr as usize >= self.words.len() {
            return Err(MachineError::HeapOutOfRange { addr });
        }
        Ok(addr as usize)
    }

    /// Loads the word at `base + offset`.
    #[inline]
    pub fn load(&self, base: i64, offset: i64) -> Result<i64, MachineError> {
        Self::load_in(&self.words, base, offset)
    }

    /// Stores a word at `base + offset`.
    #[inline]
    pub fn store(&mut self, base: i64, offset: i64, v: i64) -> Result<(), MachineError> {
        Self::store_in(&mut self.words, base, offset, v)
    }

    /// [`Heap::load`] over a borrowed word slice. Hot interpreter loops
    /// borrow the words once (nothing allocates between scheduling
    /// boundaries) so the slice stays in machine registers.
    ///
    /// (A negative address casts to a `usize` far beyond any length, so
    /// the single `get` doubles as the upper *and* lower range check;
    /// only null needs testing separately.)
    #[inline(always)]
    pub(crate) fn load_in(words: &[i64], base: i64, offset: i64) -> Result<i64, MachineError> {
        let addr = base.wrapping_add(offset);
        if addr == 0 {
            return Err(MachineError::HeapOutOfRange { addr });
        }
        words
            .get(addr as usize)
            .copied()
            .ok_or(MachineError::HeapOutOfRange { addr })
    }

    /// [`Heap::store`] over a borrowed word slice.
    #[inline(always)]
    pub(crate) fn store_in(
        words: &mut [i64],
        base: i64,
        offset: i64,
        v: i64,
    ) -> Result<(), MachineError> {
        let addr = base.wrapping_add(offset);
        if addr == 0 {
            return Err(MachineError::HeapOutOfRange { addr });
        }
        match words.get_mut(addr as usize) {
            Some(w) => {
                *w = v;
                Ok(())
            }
            None => Err(MachineError::HeapOutOfRange { addr }),
        }
    }

    /// The raw word slice, for hot loops that pair with
    /// [`Heap::load_in`]/[`Heap::store_in`].
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [i64] {
        &mut self.words
    }

    /// A view of `len` words starting at `base` (for reading results back
    /// out of a finished machine).
    pub fn slice(&self, base: i64, len: usize) -> Result<&[i64], MachineError> {
        let a = self.check(base)?;
        if a + len > self.words.len() {
            return Err(MachineError::HeapOutOfRange {
                addr: (a + len) as i64 - 1,
            });
        }
        Ok(&self.words[a..a + len])
    }

    /// Total words allocated (including the null word).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if nothing beyond the null word was allocated.
    pub fn is_empty(&self) -> bool {
        self.words.len() <= 1
    }

    /// A deterministic checksum over the whole heap (an FNV-1a-style
    /// wrapping fold over every word, position included). Differential
    /// tests use it to compare two heaps without materialising both.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for &w in &self.words {
            h ^= w as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_load_store() {
        let mut h = Heap::new();
        let a = h.alloc(4);
        assert!(a > 0);
        h.store(a, 2, 42).unwrap();
        assert_eq!(h.load(a, 2).unwrap(), 42);
        assert_eq!(h.load(a, 0).unwrap(), 0);
    }

    #[test]
    fn null_and_out_of_range_rejected() {
        let mut h = Heap::new();
        let a = h.alloc(2);
        assert!(matches!(
            h.load(0, 0),
            Err(MachineError::HeapOutOfRange { .. })
        ));
        assert!(matches!(
            h.load(a, 2),
            Err(MachineError::HeapOutOfRange { .. })
        ));
        assert!(matches!(
            h.store(-1, 0, 1),
            Err(MachineError::HeapOutOfRange { .. })
        ));
    }

    #[test]
    fn alloc_init_roundtrip() {
        let mut h = Heap::new();
        let a = h.alloc_init(&[5, 6, 7]);
        assert_eq!(h.slice(a, 3).unwrap(), &[5, 6, 7]);
    }

    #[test]
    fn distinct_allocations_do_not_overlap() {
        let mut h = Heap::new();
        let a = h.alloc(3);
        let b = h.alloc(3);
        h.store(a, 2, 1).unwrap();
        h.store(b, 0, 2).unwrap();
        assert_eq!(h.load(a, 2).unwrap(), 1);
        assert!(a + 3 <= b);
    }
}
