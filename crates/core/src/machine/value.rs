//! Machine values, register files, and errors.

use std::fmt;

use crate::isa::{BinOp, Label, Reg};
use crate::machine::join::JoinId;
use crate::machine::stack::StackRef;

/// A runtime value of the abstract machine (Figure 26, with the stack
/// extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A code label (labels are first-class; `jump` accepts a register
    /// holding one).
    Label(Label),
    /// A join-record identifier produced by `jralloc`.
    Join(JoinId),
    /// A pointer into a task stack (`uptr` in the formal grammar).
    Stack(StackRef),
    /// A promotion-ready mark (`prmark`); lives only in stack cells, but is
    /// representable as a value so loads surface it faithfully.
    Mark,
    /// An uninitialised register or stack cell that has never been written.
    ///
    /// Reading an uninitialised *register* is a [`MachineError`]; freshly
    /// `salloc`ed stack cells are `Int(0)` per the formal rule, so `Uninit`
    /// never appears in stacks.
    Uninit,
}

impl Value {
    /// The paper's truth encoding: zero is true, everything else false.
    #[inline]
    pub fn is_true(self) -> bool {
        matches!(self, Value::Int(0))
    }

    /// Extracts an integer, or reports a type error.
    #[inline]
    pub fn as_int(self) -> Result<i64, MachineError> {
        match self {
            Value::Int(n) => Ok(n),
            other => Err(MachineError::TypeError {
                expected: "int",
                got: other.kind(),
            }),
        }
    }

    /// Extracts a label, or reports a type error.
    pub fn as_label(self) -> Result<Label, MachineError> {
        match self {
            Value::Label(l) => Ok(l),
            other => Err(MachineError::TypeError {
                expected: "label",
                got: other.kind(),
            }),
        }
    }

    /// Extracts a join-record identifier, or reports a type error.
    pub fn as_join(self) -> Result<JoinId, MachineError> {
        match self {
            Value::Join(j) => Ok(j),
            other => Err(MachineError::TypeError {
                expected: "join record",
                got: other.kind(),
            }),
        }
    }

    /// Extracts a stack pointer, or reports a type error.
    pub fn as_stack(self) -> Result<StackRef, MachineError> {
        match self {
            Value::Stack(s) => Ok(s),
            other => Err(MachineError::TypeError {
                expected: "stack pointer",
                got: other.kind(),
            }),
        }
    }

    /// A short name for the value's kind, used in error messages.
    pub fn kind(self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Label(_) => "label",
            Value::Join(_) => "join record",
            Value::Stack(_) => "stack pointer",
            Value::Mark => "promotion mark",
            Value::Uninit => "uninitialised",
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

/// A task-private register file: a dense map from [`Reg`] to [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    regs: Vec<Value>,
}

impl RegFile {
    /// Creates a register file with `count` uninitialised registers.
    pub fn new(count: usize) -> Self {
        RegFile {
            regs: vec![Value::Uninit; count],
        }
    }

    /// Reads a register.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UninitRegister`] if the register has never
    /// been written.
    #[inline]
    pub fn read(&self, r: Reg) -> Result<Value, MachineError> {
        match self.regs[r.index()] {
            Value::Uninit => Err(MachineError::UninitRegister { reg: r }),
            v => Ok(v),
        }
    }

    /// Reads a register without the initialisation check (used by merge,
    /// which copies whole files).
    #[inline]
    pub fn read_raw(&self, r: Reg) -> Value {
        self.regs[r.index()]
    }

    /// Writes a register.
    #[inline]
    pub fn write(&mut self, r: Reg, v: Value) {
        self.regs[r.index()] = v;
    }

    /// The raw register slice (hot interpreter loops borrow it once so
    /// the slice pointer and length stay in machine registers across
    /// heap and stack stores).
    #[inline]
    pub(crate) fn slice_mut(&mut self) -> &mut [Value] {
        &mut self.regs
    }

    /// The number of register slots.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns `true` if the file has no register slots.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Merges this (parent) file with a child's file under `ΔR`
    /// (`MergeR` of Figure 27): the result is the parent's file with, for
    /// each `(src, dst)` pair, the child's value of `src` written to `dst`.
    pub fn merge(parent: &RegFile, child: &RegFile, delta: &crate::isa::RegMap) -> RegFile {
        let mut merged = parent.clone();
        for &(src, dst) in &delta.pairs {
            merged.write(dst, child.read_raw(src));
        }
        merged
    }
}

/// A runtime fault of the abstract machine.
///
/// Well-formed TPAL programs never fault; these errors exist to give
/// front ends and hand-written assembly precise diagnostics instead of
/// undefined behaviour.
///
/// The type is deliberately `Copy` (no owned payloads): results carrying
/// it need no drop glue or unwind edges, which keeps the interpreter
/// dispatch loops free of cleanup paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineError {
    /// A register was read before ever being written.
    UninitRegister {
        /// The offending register.
        reg: Reg,
    },
    /// An operand had the wrong kind for the operation.
    TypeError {
        /// What the operation needed.
        expected: &'static str,
        /// What it got.
        got: &'static str,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// `op` was applied to operands it does not support.
    UnsupportedOperands {
        /// The operation.
        op: BinOp,
        /// Left operand kind.
        lhs: &'static str,
        /// Right operand kind.
        rhs: &'static str,
    },
    /// A stack access fell outside the live cells.
    StackOutOfRange {
        /// Position (from the stack base) that was accessed.
        pos: i64,
        /// Number of live cells.
        len: usize,
    },
    /// `sfree` tried to free more cells than are live.
    StackUnderflow,
    /// `prmpop` targeted a cell that does not hold a mark.
    NotAMark,
    /// A heap access fell outside any allocation.
    HeapOutOfRange {
        /// The faulting word address.
        addr: i64,
    },
    /// `prmsplit` found no promotion-ready mark.
    NoMark,
    /// `join` was issued by a task with no registered dependency on the
    /// record (no preceding `fork`).
    JoinWithoutFork,
    /// A task reached the join root while other dependency edges were
    /// still outstanding — a malformed join protocol.
    JoinNotReady,
    /// A jump targeted a value that is not a label.
    JumpToNonLabel {
        /// The kind of the value jumped to.
        got: &'static str,
    },
    /// The configured step limit was exceeded (likely livelock or runaway
    /// program).
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
    /// A named register or label was not found (API-level lookups; the
    /// caller holds the name it asked for, so the error carries none —
    /// keeping [`MachineError`] `Copy`).
    UnknownName,
    /// The machine deadlocked: live tasks remain but none can run.
    Deadlock,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::UninitRegister { reg } => {
                write!(f, "register r{} read before initialisation", reg.index())
            }
            MachineError::TypeError { expected, got } => {
                write!(f, "type error: expected {expected}, got {got}")
            }
            MachineError::DivisionByZero => write!(f, "division by zero"),
            MachineError::UnsupportedOperands { op, lhs, rhs } => {
                write!(f, "operator `{op}` not supported on {lhs} and {rhs}")
            }
            MachineError::StackOutOfRange { pos, len } => {
                write!(
                    f,
                    "stack access at position {pos} outside live cells (len {len})"
                )
            }
            MachineError::StackUnderflow => write!(f, "stack underflow in sfree"),
            MachineError::NotAMark => write!(f, "prmpop on a cell that is not a mark"),
            MachineError::HeapOutOfRange { addr } => {
                write!(
                    f,
                    "heap access at word address {addr} outside any allocation"
                )
            }
            MachineError::NoMark => write!(f, "prmsplit found no promotion-ready mark"),
            MachineError::JoinWithoutFork => {
                write!(f, "join issued without a registered dependency edge")
            }
            MachineError::JoinNotReady => {
                write!(f, "join reached the root with outstanding dependency edges")
            }
            MachineError::JumpToNonLabel { got } => write!(f, "jump to a {got}, not a label"),
            MachineError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} instructions exceeded")
            }
            MachineError::UnknownName => write!(f, "unknown register or label name"),
            MachineError::Deadlock => write!(f, "machine deadlocked with live tasks"),
        }
    }
}

impl std::error::Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::RegMap;

    #[test]
    fn truth_encoding_zero_is_true() {
        assert!(Value::Int(0).is_true());
        assert!(!Value::Int(1).is_true());
        assert!(!Value::Int(-1).is_true());
        assert!(!Value::Label(Label(0)).is_true());
        assert!(!Value::Mark.is_true());
    }

    #[test]
    fn regfile_uninit_read_is_error() {
        let rf = RegFile::new(2);
        assert_eq!(
            rf.read(Reg(0)),
            Err(MachineError::UninitRegister { reg: Reg(0) })
        );
    }

    #[test]
    fn regfile_write_then_read() {
        let mut rf = RegFile::new(2);
        rf.write(Reg(1), Value::Int(42));
        assert_eq!(rf.read(Reg(1)), Ok(Value::Int(42)));
    }

    #[test]
    fn merge_overwrites_targets_with_child_sources() {
        // Parent: r0=10, r1=11. Child: r0=20, r1=21. ΔR = { r0 ↦ r1 }.
        // Merged file keeps the parent's r0 and receives the child's r0 in r1.
        let mut parent = RegFile::new(2);
        parent.write(Reg(0), Value::Int(10));
        parent.write(Reg(1), Value::Int(11));
        let mut child = RegFile::new(2);
        child.write(Reg(0), Value::Int(20));
        child.write(Reg(1), Value::Int(21));
        let delta = RegMap::new().with(Reg(0), Reg(1));
        let merged = RegFile::merge(&parent, &child, &delta);
        assert_eq!(merged.read(Reg(0)), Ok(Value::Int(10)));
        assert_eq!(merged.read(Reg(1)), Ok(Value::Int(20)));
    }

    #[test]
    fn value_kind_names() {
        assert_eq!(Value::Int(1).kind(), "int");
        assert_eq!(Value::Mark.kind(), "promotion mark");
        assert_eq!(Value::Uninit.kind(), "uninitialised");
    }

    #[test]
    fn error_display_is_informative() {
        let e = MachineError::TypeError {
            expected: "int",
            got: "label",
        };
        assert_eq!(e.to_string(), "type error: expected int, got label");
        assert!(MachineError::DivisionByZero.to_string().contains("zero"));
    }
}
