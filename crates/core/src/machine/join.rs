//! Join records and join resolution (the paper's §2.2 "Join resolution"
//! and the `[fork]`/`[join-block]`/`[join-continue]` rules of Figure 30).
//!
//! While a program executes, the runtime keeps a record of the tree
//! induced by the `fork` instructions. Each `fork` on a join record adds a
//! *node* with two slots — slot 0 for the parent's side, slot 1 for the
//! child's — whose parent pointer is the forking task's previous position
//! in the tree (or the root for the first fork). When a task issues
//! `join`, it stashes its register file in its slot; the first of a pair
//! to arrive terminates, the second triggers a *merge*: the register files
//! are combined under the continuation block's `ΔR` (`MergeR`, Figure 27)
//! and a combined task resumes at the combining block, positioned one
//! level up the tree. A task joining at the root jumps to the record's
//! continuation label.

use crate::cost::CostGraph;
use crate::isa::Label;
use crate::machine::value::{MachineError, RegFile};

/// Identifier of a join record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinId(pub(crate) u32);

impl JoinId {
    /// Index into the store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a fork-tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Index into the record's node arena (stable for the record's
    /// lifetime — usable as an external key, e.g. in trace events).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A task's position in the fork tree of one join record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Assoc {
    /// The task is at the root: its `join` completes the record.
    Root,
    /// The task occupies `slot` (0 = parent side, 1 = child side) of a
    /// node.
    Node {
        /// The node.
        node: NodeId,
        /// Which slot (0 or 1).
        slot: u8,
    },
}

/// A stashed join participant: its register file plus the cost counters
/// accumulated since its side of the fork (used by work/span accounting).
#[derive(Debug, Clone)]
pub struct Stash {
    /// The task's register file at the join.
    pub regs: RegFile,
    /// Relative work since the fork.
    pub rel_work: u64,
    /// Relative span since the fork.
    pub rel_span: u64,
    /// The task's other join-record associations, inherited by the merged
    /// task.
    pub assocs: Vec<(JoinId, Assoc)>,
    /// Explicit cost graph of the task's side since the fork, when the
    /// executor builds graphs (see
    /// [`MachineConfig::build_cost_graph`](crate::machine::MachineConfig)).
    pub graph: Option<CostGraph>,
}

#[derive(Debug)]
struct Node {
    record: JoinId,
    parent: Assoc,
    slots: [Option<Stash>; 2],
    /// Work/span prefix of the forking task at the fork point.
    prefix_work: u64,
    prefix_span: u64,
    /// Explicit-graph prefix (when graphs are being built).
    prefix_graph: Option<CostGraph>,
}

#[derive(Debug)]
struct Record {
    cont: Label,
    open_edges: u32,
}

/// What happened when a task issued `join`.
///
/// The `Merge` variant carries both stashes by value — it is constructed
/// once per fork and consumed immediately, so boxing would only add an
/// allocation to the join hot path.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum JoinOutcome {
    /// The task was the first of its pair: it stashed its state and
    /// terminates (`[join-block]`).
    Stashed,
    /// The task was the second of its pair: a merged task must resume at
    /// the record's combining block.
    Merge {
        /// Parent-side stash.
        parent: Stash,
        /// Child-side stash.
        child: Stash,
        /// Association of the merged task for this record (one level up).
        up: Assoc,
        /// Work/span prefix recorded at the fork.
        prefix: (u64, u64),
        /// Explicit-graph prefix recorded at the fork.
        prefix_graph: Option<CostGraph>,
        /// The record's continuation label (whose `jtppt` annotation names
        /// the combining block and `ΔR`).
        cont: Label,
    },
    /// The task was at the root and the record is complete: control
    /// continues at the record's continuation label (`[join-continue]`).
    Continue {
        /// The continuation label.
        cont: Label,
    },
}

/// The store of join records and fork-tree nodes of a machine.
#[derive(Debug, Default)]
pub struct JoinStore {
    records: Vec<Record>,
    nodes: Vec<Node>,
}

impl JoinStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        JoinStore::default()
    }

    /// `jralloc`: allocates a record with the given continuation label.
    pub fn alloc(&mut self, cont: Label) -> JoinId {
        let id = JoinId(self.records.len() as u32);
        self.records.push(Record {
            cont,
            open_edges: 0,
        });
        id
    }

    /// The continuation label of a record.
    pub fn cont(&self, j: JoinId) -> Label {
        self.records[j.index()].cont
    }

    /// Number of records allocated.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Number of dependency edges still open on `j`.
    pub fn open_edges(&self, j: JoinId) -> u32 {
        self.records[j.index()].open_edges
    }

    /// `fork`: registers a dependency edge on `j` by a task currently
    /// associated as `current` (or `Assoc::Root` if it has none —
    /// the record's allocator before its first fork).
    ///
    /// Returns `(parent_assoc, child_assoc)`: the forking task's new
    /// association and the child's.
    pub fn fork(
        &mut self,
        j: JoinId,
        current: Assoc,
        prefix_work: u64,
        prefix_span: u64,
        prefix_graph: Option<CostGraph>,
    ) -> (Assoc, Assoc) {
        let node = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            record: j,
            parent: current,
            slots: [None, None],
            prefix_work,
            prefix_span,
            prefix_graph,
        });
        self.records[j.index()].open_edges += 1;
        (Assoc::Node { node, slot: 0 }, Assoc::Node { node, slot: 1 })
    }

    /// `join`: a task associated as `assoc` on record `j` arrives with its
    /// stash.
    ///
    /// # Errors
    ///
    /// [`MachineError::JoinNotReady`] if a root join happens while edges
    /// remain open — a malformed program.
    pub fn join(
        &mut self,
        j: JoinId,
        assoc: Assoc,
        stash: Stash,
    ) -> Result<JoinOutcome, MachineError> {
        match assoc {
            Assoc::Root => {
                if self.records[j.index()].open_edges != 0 {
                    return Err(MachineError::JoinNotReady);
                }
                Ok(JoinOutcome::Continue {
                    cont: self.records[j.index()].cont,
                })
            }
            Assoc::Node { node, slot } => {
                let n = &mut self.nodes[node.0 as usize];
                debug_assert_eq!(n.record, j, "association crosses join records");
                n.slots[slot as usize] = Some(stash);
                if n.slots[0].is_some() && n.slots[1].is_some() {
                    let parent = n.slots[0].take().expect("slot 0 filled");
                    let child = n.slots[1].take().expect("slot 1 filled");
                    let up = n.parent;
                    let prefix = (n.prefix_work, n.prefix_span);
                    let prefix_graph = n.prefix_graph.take();
                    self.records[j.index()].open_edges -= 1;
                    Ok(JoinOutcome::Merge {
                        parent,
                        child,
                        up,
                        prefix,
                        prefix_graph,
                        cont: self.records[j.index()].cont,
                    })
                } else {
                    Ok(JoinOutcome::Stashed)
                }
            }
        }
    }

    /// Merges the association maps of the two sides of a pair, dropping
    /// their entries for `j` (replaced by `up`).
    pub fn merge_assocs(
        j: JoinId,
        up: Assoc,
        parent: &[(JoinId, Assoc)],
        child: &[(JoinId, Assoc)],
    ) -> Vec<(JoinId, Assoc)> {
        let mut out: Vec<(JoinId, Assoc)> = Vec::with_capacity(parent.len() + 1);
        for &(id, a) in parent.iter().chain(child.iter()) {
            if id != j {
                debug_assert!(
                    !out.iter().any(|&(o, _)| o == id),
                    "conflicting associations for record {id:?}"
                );
                out.push((id, a));
            }
        }
        out.push((j, up));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::value::Value;

    fn stash(marker: i64) -> Stash {
        let mut regs = RegFile::new(1);
        regs.write(crate::isa::Reg(0), Value::Int(marker));
        Stash {
            regs,
            rel_work: 0,
            rel_span: 0,
            assocs: vec![],
            graph: None,
        }
    }

    #[test]
    fn single_fork_pair_merges() {
        let mut js = JoinStore::new();
        let j = js.alloc(Label(7));
        let (pa, ca) = js.fork(j, Assoc::Root, 5, 5, None);
        assert_eq!(js.open_edges(j), 1);
        // First joiner stashes.
        match js.join(j, ca, stash(2)).unwrap() {
            JoinOutcome::Stashed => {}
            other => panic!("expected stash, got {other:?}"),
        }
        // Second joiner merges; merged task moves to the root.
        match js.join(j, pa, stash(1)).unwrap() {
            JoinOutcome::Merge {
                parent, child, up, ..
            } => {
                assert_eq!(parent.regs.read_raw(crate::isa::Reg(0)), Value::Int(1));
                assert_eq!(child.regs.read_raw(crate::isa::Reg(0)), Value::Int(2));
                assert_eq!(up, Assoc::Root);
            }
            other => panic!("expected merge, got {other:?}"),
        }
        assert_eq!(js.open_edges(j), 0);
        // Root join continues to the record's continuation.
        match js.join(j, Assoc::Root, stash(3)).unwrap() {
            JoinOutcome::Continue { cont } => assert_eq!(cont, Label(7)),
            other => panic!("expected continue, got {other:?}"),
        }
    }

    #[test]
    fn nested_forks_resolve_bottom_up() {
        let mut js = JoinStore::new();
        let j = js.alloc(Label(0));
        let (a1, b) = js.fork(j, Assoc::Root, 0, 0, None); // A forks B
        let (a2, c) = js.fork(j, a1, 0, 0, None); // A forks C
        assert_eq!(js.open_edges(j), 2);
        // C joins, then A joins: merge at the inner node, up = a1.
        assert!(matches!(
            js.join(j, c, stash(3)).unwrap(),
            JoinOutcome::Stashed
        ));
        let up = match js.join(j, a2, stash(1)).unwrap() {
            JoinOutcome::Merge { up, .. } => up,
            other => panic!("{other:?}"),
        };
        assert_eq!(up, a1);
        assert_eq!(js.open_edges(j), 1);
        // B joins, merged(A,C) joins as a1: outer merge, up = Root.
        assert!(matches!(
            js.join(j, b, stash(2)).unwrap(),
            JoinOutcome::Stashed
        ));
        match js.join(j, up, stash(13)).unwrap() {
            JoinOutcome::Merge { up, .. } => assert_eq!(up, Assoc::Root),
            other => panic!("{other:?}"),
        }
        assert_eq!(js.open_edges(j), 0);
    }

    #[test]
    fn premature_root_join_is_error() {
        let mut js = JoinStore::new();
        let j = js.alloc(Label(0));
        js.fork(j, Assoc::Root, 0, 0, None);
        assert_eq!(
            js.join(j, Assoc::Root, stash(0)).unwrap_err(),
            MachineError::JoinNotReady
        );
    }

    #[test]
    fn merge_assocs_carries_other_records() {
        let j0 = JoinId(0);
        let j1 = JoinId(1);
        let parent = vec![(j0, Assoc::Root), (j1, Assoc::Root)];
        let child: Vec<(JoinId, Assoc)> = vec![(j0, Assoc::Root)];
        let merged = JoinStore::merge_assocs(
            j0,
            Assoc::Node {
                node: NodeId(0),
                slot: 0,
            },
            &parent,
            &child,
        );
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().any(|&(id, a)| id == j1 && a == Assoc::Root));
        assert!(merged
            .iter()
            .any(|&(id, a)| id == j0 && matches!(a, Assoc::Node { .. })));
    }
}
