//! The TPAL abstract machine.
//!
//! The machine implements the formal model of the paper's Appendix C:
//! sequential transitions over `(pc, H, R, I)` configurations (Figures 29
//! and 31), multi-task evaluation with heartbeat interrupts and join
//! resolution (Figure 30), and the metafunctions of Figure 27.
//!
//! Two levels of API are offered:
//!
//! * [`Machine`] — a ready-to-use executor with a deterministic scheduler,
//!   heartbeat accounting, and cost (work/span) instrumentation. This is
//!   what tests and examples use.
//! * The *micro* interface ([`TaskState`], [`Stores`], [`step_task`],
//!   [`JoinStore`]) — the single-step semantics, exposed so that external
//!   executors (notably the `tpal-sim` multicore simulator) can drive
//!   tasks under their own scheduling, interrupt, and cost models.

mod exec;
pub(crate) mod heap;
mod join;
pub(crate) mod stack;
pub(crate) mod step;
mod value;

pub use exec::{ExecStats, Machine, MachineConfig, Outcome, SchedulePolicy};
pub use heap::Heap;
pub use join::{Assoc, JoinId, JoinOutcome, JoinStore};
pub use stack::{PromotionOrder, StackId, StackRef, StackStore};
pub use step::{
    resolve_join, run_task_until, step_task, JoinResolution, RunPause, StepOutcome, Stores,
    TaskCost, TaskState,
};
pub use value::{MachineError, RegFile, Value};
