//! Single-step task semantics: the sequential transitions of Figures 29
//! and 31, plus fork/join effects surfaced to the executor.
//!
//! This is the *micro* interface of the machine. An executor (the
//! [`crate::machine::Machine`] here, or the `tpal-sim` multicore
//! simulator) owns a set of [`TaskState`]s and the shared [`Stores`], and
//! repeatedly:
//!
//! 1. polls for a heartbeat interrupt at promotion-ready program points
//!    ([`TaskState::poll_heartbeat`] or, with an external interrupt source,
//!    [`TaskState::at_promotion_point`] + [`TaskState::divert_to_handler`]);
//! 2. calls [`step_task`] to execute one instruction;
//! 3. reacts to the returned [`StepOutcome`] — scheduling forked children
//!    and resolving joins with [`resolve_join`].

use crate::cost::CostGraph;
use crate::isa::{Annotation, BinOp, Instr, Label, Operand, Reg};
use crate::machine::heap::Heap;
use crate::machine::join::{Assoc, JoinId, JoinOutcome, JoinStore, Stash};
use crate::machine::stack::StackStore;
use crate::machine::value::{MachineError, RegFile, Value};
use crate::program::Program;

/// The shared mutable state of a machine: stacks and join records.
///
/// (The formal model's heap `H` also contains code blocks; those are the
/// immutable [`Program`].)
#[derive(Debug)]
pub struct Stores {
    /// Task stacks.
    pub stacks: StackStore,
    /// Join records and the fork tree.
    pub joins: JoinStore,
    /// The shared heap.
    pub heap: Heap,
}

impl Default for Stores {
    fn default() -> Self {
        Stores {
            stacks: StackStore::new(),
            joins: JoinStore::new(),
            heap: Heap::new(),
        }
    }
}

impl Stores {
    /// Creates empty stores.
    pub fn new() -> Self {
        Stores::default()
    }
}

/// The state of one task: program counter, heartbeat cycle counter `⋄`,
/// private register file, fork-tree associations, and cost counters.
#[derive(Debug, Clone)]
pub struct TaskState {
    /// Current block.
    pub block: Label,
    /// Index of the next instruction within the block.
    pub instr: usize,
    /// Heartbeat cycle counter `⋄`: instructions since the last heartbeat
    /// event on this task.
    pub cycles: u64,
    /// The task-private register file.
    pub regs: RegFile,
    /// Fork-tree association per join record this task participates in.
    pub assocs: Vec<(JoinId, Assoc)>,
    /// Work accumulated since this task's side of its most recent fork.
    pub rel_work: u64,
    /// Span accumulated since this task's side of its most recent fork.
    pub rel_span: u64,
    /// Explicit cost-graph accumulator, when graph building is enabled
    /// (`None` costs nothing; executors that do not need graphs — the
    /// simulator — leave it off).
    pub cost: Option<TaskCost>,
}

/// The cost-graph accumulator of one task: a structured prefix plus a
/// run-length-compressed count of sequential steps since the last
/// structural event.
#[derive(Debug, Clone)]
pub struct TaskCost {
    /// Graph of everything before the pending steps.
    pub prefix: CostGraph,
    /// Unit steps executed since `prefix`.
    pub steps: u64,
}

impl TaskCost {
    /// A fresh, empty accumulator.
    pub fn new() -> TaskCost {
        TaskCost {
            prefix: CostGraph::Empty,
            steps: 0,
        }
    }

    /// Flushes pending steps into the structured prefix and returns the
    /// whole graph.
    pub fn flush(&mut self) -> CostGraph {
        let mut g = std::mem::replace(&mut self.prefix, CostGraph::Empty);
        if self.steps > 0 {
            g = g.then(CostGraph::Steps(self.steps));
            self.steps = 0;
        }
        g
    }
}

impl Default for TaskCost {
    fn default() -> Self {
        TaskCost::new()
    }
}

impl TaskState {
    /// Creates the initial task of a program, positioned at `entry`.
    pub fn new(program: &Program, entry: Label) -> Self {
        TaskState {
            block: entry,
            instr: 0,
            cycles: 0,
            regs: RegFile::new(program.reg_count()),
            assocs: Vec::new(),
            rel_work: 0,
            rel_span: 0,
            cost: None,
        }
    }

    /// Looks up this task's association on a join record.
    pub fn assoc(&self, j: JoinId) -> Option<Assoc> {
        self.assocs
            .iter()
            .find(|&&(id, _)| id == j)
            .map(|&(_, a)| a)
    }

    fn set_assoc(&mut self, j: JoinId, a: Assoc) {
        if let Some(slot) = self.assocs.iter_mut().find(|(id, _)| *id == j) {
            slot.1 = a;
        } else {
            self.assocs.push((j, a));
        }
    }

    fn remove_assoc(&mut self, j: JoinId) {
        self.assocs.retain(|&(id, _)| id != j);
    }

    /// Repositions the task at the start of `block`.
    pub fn goto(&mut self, block: Label) {
        self.block = block;
        self.instr = 0;
    }

    /// If the task is at the entry of a promotion-ready block, returns the
    /// handler label of its `prppt` annotation.
    pub fn at_promotion_point(&self, program: &Program) -> Option<Label> {
        if self.instr == 0 {
            program.block(self.block).annotation.handler()
        } else {
            None
        }
    }

    /// Diverts control to `handler` and resets the cycle counter, as the
    /// `[try-promote]` rule does. The caller must have checked
    /// [`Self::at_promotion_point`].
    pub fn divert_to_handler(&mut self, handler: Label) {
        self.goto(handler);
        self.cycles = 0;
    }

    /// The complete heartbeat check of the formal model
    /// (`PromotionReady`, Figure 27): if the task sits at a
    /// promotion-ready program point and its cycle counter has exceeded
    /// `heartbeat` (♥), divert to the handler and return `true`.
    pub fn poll_heartbeat(&mut self, program: &Program, heartbeat: u64) -> bool {
        if self.cycles > heartbeat {
            if let Some(handler) = self.at_promotion_point(program) {
                self.divert_to_handler(handler);
                return true;
            }
        }
        false
    }

    pub(crate) fn read_operand(&self, v: Operand) -> Result<Value, MachineError> {
        match v {
            Operand::Reg(r) => self.regs.read(r),
            Operand::Label(l) => Ok(Value::Label(l)),
            Operand::Int(n) => Ok(Value::Int(n)),
        }
    }

    pub(crate) fn jump_target(&self, v: Operand) -> Result<Label, MachineError> {
        match self.read_operand(v)? {
            Value::Label(l) => Ok(l),
            other => Err(MachineError::JumpToNonLabel { got: other.kind() }),
        }
    }

    pub(crate) fn stack_reg(
        &self,
        r: Reg,
    ) -> Result<crate::machine::stack::StackRef, MachineError> {
        self.regs.read(r)?.as_stack()
    }
}

/// The observable effect of executing one instruction.
#[derive(Debug)]
pub enum StepOutcome {
    /// An ordinary instruction ran; the task continues.
    Ran,
    /// `halt`: the whole machine terminates.
    Halted,
    /// `fork`: a child task was created and must be scheduled; the parent
    /// continues.
    Forked {
        /// The new child task, positioned at the fork's target block.
        child: Box<TaskState>,
    },
    /// `join`: the task entered join resolution on the given record; the
    /// executor must call [`resolve_join`].
    Joined {
        /// The join record.
        jr: JoinId,
    },
}

/// Evaluates a primitive binary operation (`[binop]`, plus the pointer
/// arithmetic used by the stack extension).
#[inline]
pub fn eval_binop(op: BinOp, lhs: Value, rhs: Value) -> Result<Value, MachineError> {
    use BinOp::*;
    let bool_to_val = |b: bool| Value::Int(if b { 0 } else { 1 }); // 0 = true
    match (lhs, rhs) {
        (Value::Int(a), Value::Int(b)) => {
            let v = match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(MachineError::DivisionByZero);
                    }
                    Value::Int(a.wrapping_div(b))
                }
                Mod => {
                    if b == 0 {
                        return Err(MachineError::DivisionByZero);
                    }
                    Value::Int(a.wrapping_rem(b))
                }
                Lt => bool_to_val(a < b),
                Le => bool_to_val(a <= b),
                Gt => bool_to_val(a > b),
                Ge => bool_to_val(a >= b),
                EqOp => bool_to_val(a == b),
                Ne => bool_to_val(a != b),
                And => Value::Int(a & b),
                Or => Value::Int(a | b),
                Xor => Value::Int(a ^ b),
                Shl => Value::Int(a.wrapping_shl((b & 63) as u32)),
                Shr => Value::Int(a.wrapping_shr((b & 63) as u32)),
                Min => Value::Int(a.min(b)),
                Max => Value::Int(a.max(b)),
            };
            Ok(v)
        }
        // Stack-pointer arithmetic: `sp + n` moves deeper, `sp - n`
        // shallower (see module docs of `stack`).
        (Value::Stack(s), Value::Int(n)) if op == Add => Ok(Value::Stack(s.deeper(n))),
        (Value::Stack(s), Value::Int(n)) if op == Sub => Ok(Value::Stack(s.shallower(n))),
        // Equality is defined on any pair of values of the same kind.
        (a, b) if op == EqOp => Ok(bool_to_val(a == b)),
        (a, b) if op == Ne => Ok(bool_to_val(a != b)),
        (a, b) => Err(MachineError::UnsupportedOperands {
            op,
            lhs: a.kind(),
            rhs: b.kind(),
        }),
    }
}

/// Executes one *plain* instruction: any instruction that is neither a
/// control boundary (`halt`, `fork`, `join`) nor an allocation against a
/// globally ordered store (`jralloc`, `snew`, `halloc`).
///
/// Plain instructions only touch the task's own registers, its stack
/// cells, and heap cells — effects whose fine-grained interleaving across
/// cores is unobservable for data-race-free programs. That property is
/// what lets [`run_task_until`] execute runs of them without returning to
/// the scheduler.
///
/// Executes one plain instruction, advancing `task.instr` past it first
/// (jumps then overwrite the position), and returns `Ok(true)`. If
/// `instr` is a *boundary* — it transfers control between tasks (`halt`,
/// `fork`, `join`) or allocates from a store whose allocation order is
/// observable in results (`jralloc` issues [`JoinId`]s, `snew` issues
/// stack ids, `halloc` issues heap base addresses) — nothing is touched
/// and the result is `Ok(false)`; folding that test into the dispatch
/// keeps the batched executor at exactly one match per instruction.
/// Cycle/cost counters are the caller's job.
#[inline]
pub(crate) fn exec_plain(
    task: &mut TaskState,
    stores: &mut Stores,
    instr: &Instr,
) -> Result<bool, MachineError> {
    match *instr {
        Instr::Move { dst, src } => {
            task.instr += 1;
            let v = task.read_operand(src)?;
            task.regs.write(dst, v);
        }
        Instr::Op { dst, op, lhs, rhs } => {
            task.instr += 1;
            let l = task.regs.read(lhs)?;
            let r = task.read_operand(rhs)?;
            task.regs.write(dst, eval_binop(op, l, r)?);
        }
        Instr::IfJump { cond, target } => {
            task.instr += 1;
            if task.regs.read(cond)?.is_true() {
                let l = task.jump_target(target)?;
                task.goto(l);
            }
        }
        Instr::Jump { target } => {
            task.instr += 1;
            let l = task.jump_target(target)?;
            task.goto(l);
        }
        Instr::SAlloc { sp, n } => {
            task.instr += 1;
            let cur = task.stack_reg(sp)?;
            let new = stores.stacks.salloc(cur, n)?;
            task.regs.write(sp, Value::Stack(new));
        }
        Instr::SFree { sp, n } => {
            task.instr += 1;
            let cur = task.stack_reg(sp)?;
            let new = stores.stacks.sfree(cur, n)?;
            task.regs.write(sp, Value::Stack(new));
        }
        Instr::Load { dst, addr } => {
            task.instr += 1;
            let sp = task.stack_reg(addr.base)?;
            let v = stores.stacks.load(sp, addr.offset)?;
            task.regs.write(dst, v);
        }
        Instr::Store { addr, src } => {
            task.instr += 1;
            let sp = task.stack_reg(addr.base)?;
            let v = task.read_operand(src)?;
            stores.stacks.store(sp, addr.offset, v)?;
        }
        Instr::PrmPush { addr } => {
            task.instr += 1;
            let sp = task.stack_reg(addr.base)?;
            stores.stacks.prmpush(sp, addr.offset)?;
        }
        Instr::PrmPop { addr } => {
            task.instr += 1;
            let sp = task.stack_reg(addr.base)?;
            stores.stacks.prmpop(sp, addr.offset)?;
        }
        Instr::PrmEmpty { dst, sp } => {
            task.instr += 1;
            let spv = task.stack_reg(sp)?;
            let v = stores.stacks.prmempty(spv)?;
            task.regs.write(dst, v);
        }
        Instr::PrmSplit { sp, dst } => {
            task.instr += 1;
            let spv = task.stack_reg(sp)?;
            let off = stores.stacks.prmsplit(spv)?;
            task.regs.write(dst, Value::Int(off));
        }
        Instr::HLoad { dst, base, offset } => {
            task.instr += 1;
            let b = task.regs.read(base)?.as_int()?;
            let off = task.read_operand(offset)?.as_int()?;
            let v = stores.heap.load(b, off)?;
            task.regs.write(dst, Value::Int(v));
        }
        Instr::HStore { base, offset, src } => {
            task.instr += 1;
            let b = task.regs.read(base)?.as_int()?;
            let off = task.read_operand(offset)?.as_int()?;
            let v = task.read_operand(src)?.as_int()?;
            stores.heap.store(b, off, v)?;
        }
        Instr::Halt
        | Instr::Fork { .. }
        | Instr::Join { .. }
        | Instr::JrAlloc { .. }
        | Instr::SNew { .. }
        | Instr::HAlloc { .. } => return Ok(false),
    }
    Ok(true)
}

/// Why [`run_task_until`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPause {
    /// `max_steps` instructions were executed.
    Quantum,
    /// The *next* instruction is a scheduling or allocation boundary
    /// (`halt`, `fork`, `join`, `jralloc`, `snew`, `halloc`); it was not
    /// executed. The caller should run it with [`step_task`].
    Boundary,
    /// `watch_promotion` was set and the task arrived at the entry of a
    /// promotion-ready block; nothing at that point was executed. The
    /// caller should deliver the pending heartbeat
    /// ([`TaskState::divert_to_handler`]).
    PromotionReady,
}

/// Executes a run of consecutive plain instructions of `task`, stopping
/// early at scheduling-relevant points.
///
/// Semantically identical to calling [`step_task`] in a loop, but without
/// the per-instruction outcome dispatch — executors use it to batch the
/// long straight-line stretches between forks, joins and heartbeats. The
/// run ends when, in priority order:
///
/// 1. `watch_promotion` is set and the task sits at a promotion-ready
///    block entry ([`RunPause::PromotionReady`]) — checked *before* each
///    instruction, so a pending heartbeat is delivered at exactly the
///    program point where [`step_task`]-per-cycle execution would deliver
///    it;
/// 2. the next instruction is a boundary ([`RunPause::Boundary`]) — it is
///    left unexecuted for the caller;
/// 3. `max_steps` instructions have run ([`RunPause::Quantum`]).
///
/// Returns the number of instructions executed (each counted in the
/// task's cycle/work/span/cost counters exactly as [`step_task`] counts
/// them) and the reason for stopping.
///
/// # Errors
///
/// Any [`MachineError`] raised by a transition rule; counters include the
/// faulting instruction, matching [`step_task`].
pub fn run_task_until(
    program: &Program,
    task: &mut TaskState,
    stores: &mut Stores,
    max_steps: u64,
    watch_promotion: bool,
) -> Result<(u64, RunPause), MachineError> {
    // The block lookup is hoisted out of the loop: a plain instruction
    // changes `task.block` only through a jump, so the instruction slice
    // is reloaded only when the label actually changes. Counters are
    // batched into one addition per run (no plain instruction reads
    // them), keeping the hot loop to fetch + dispatch.
    let mut steps = 0u64;
    let mut cur = task.block;
    let mut instrs: &[Instr] = &program.block(cur).instrs;
    let result = loop {
        if steps >= max_steps {
            break Ok(RunPause::Quantum);
        }
        if task.block != cur {
            cur = task.block;
            instrs = &program.block(cur).instrs;
        }
        if watch_promotion && task.instr == 0 && program.block(cur).annotation.handler().is_some() {
            break Ok(RunPause::PromotionReady);
        }
        match exec_plain(task, stores, &instrs[task.instr]) {
            Ok(true) => steps += 1,
            Ok(false) => break Ok(RunPause::Boundary),
            Err(e) => {
                // The faulting instruction counts, as in `step_task`.
                steps += 1;
                break Err(e);
            }
        }
    };
    task.cycles += steps;
    task.rel_work += steps;
    task.rel_span += steps;
    if let Some(c) = &mut task.cost {
        c.steps += steps;
    }
    result.map(|pause| (steps, pause))
}

/// Executes one instruction of `task`.
///
/// Increments the task's cycle and cost counters, then applies the
/// matching transition rule. Control-relevant effects (`halt`, `fork`,
/// `join`) are surfaced in the returned [`StepOutcome`].
///
/// # Errors
///
/// Any [`MachineError`] raised by the transition rules; the task should be
/// considered faulted and the machine stopped.
pub fn step_task(
    program: &Program,
    task: &mut TaskState,
    stores: &mut Stores,
) -> Result<StepOutcome, MachineError> {
    task.cycles += 1;
    task.rel_work += 1;
    task.rel_span += 1;
    if let Some(c) = &mut task.cost {
        c.steps += 1;
    }

    let block = program.block(task.block);
    let instr = block.instrs[task.instr];

    // Each arm advances past the instruction first; jumps overwrite the
    // position. (Plain instructions advance inside `exec_plain`.)
    match instr {
        Instr::Halt => {
            task.instr += 1;
            Ok(StepOutcome::Halted)
        }
        Instr::JrAlloc { dst, cont } => {
            task.instr += 1;
            let l = task.jump_target(cont)?;
            let j = stores.joins.alloc(l);
            task.regs.write(dst, Value::Join(j));
            Ok(StepOutcome::Ran)
        }
        Instr::Fork { jr, target } => {
            task.instr += 1;
            let j = task.regs.read(jr)?.as_join()?;
            let l = task.jump_target(target)?;
            let current = task.assoc(j).unwrap_or(Assoc::Root);
            // Snapshot the forking task's cost prefix (including the fork
            // instruction itself) at the new tree node, then restart both
            // sides' counters, per the cost semantics of Figure 28.
            let prefix_graph = task.cost.as_mut().map(TaskCost::flush);
            let (pa, ca) =
                stores
                    .joins
                    .fork(j, current, task.rel_work, task.rel_span, prefix_graph);
            task.set_assoc(j, pa);
            task.rel_work = 0;
            task.rel_span = 0;
            task.cycles = 0;

            let mut child = TaskState {
                block: l,
                instr: 0,
                cycles: 0,
                regs: task.regs.clone(),
                assocs: vec![(j, ca)],
                rel_work: 0,
                rel_span: 0,
                cost: task.cost.as_ref().map(|_| TaskCost::new()),
            };
            child.goto(l);
            Ok(StepOutcome::Forked {
                child: Box::new(child),
            })
        }
        Instr::Join { jr } => {
            task.instr += 1;
            let j = task.regs.read(jr)?.as_join()?;
            Ok(StepOutcome::Joined { jr: j })
        }
        Instr::SNew { dst } => {
            task.instr += 1;
            let sp = stores.stacks.snew();
            task.regs.write(dst, Value::Stack(sp));
            Ok(StepOutcome::Ran)
        }
        Instr::HAlloc { dst, size } => {
            task.instr += 1;
            let n = task.read_operand(size)?.as_int()?;
            if n < 0 {
                return Err(MachineError::HeapOutOfRange { addr: n });
            }
            let base = stores.heap.alloc(n as usize);
            task.regs.write(dst, Value::Int(base));
            Ok(StepOutcome::Ran)
        }
        ref plain => {
            exec_plain(task, stores, plain)?;
            Ok(StepOutcome::Ran)
        }
    }
}

/// The result of [`resolve_join`].
#[derive(Debug)]
pub enum JoinResolution {
    /// The task was first at its join point; it stashed its state and is
    /// gone.
    TaskDied,
    /// The task was second: the pair merged, and the returned task resumes
    /// at the record's combining block.
    Merged(Box<TaskState>),
    /// The task was at the root: the record completed and the task resumes
    /// at the record's continuation label.
    Completed(Box<TaskState>),
}

/// Performs join resolution for a task that just executed `join jr`
/// (rules `[join-block]`, `[join-continue]`, and the merge step of
/// `[fork]` in Figure 30).
///
/// `tau` is the fork-join cost weight `τ` added to the merged task's work
/// and span, per the cost semantics.
///
/// # Errors
///
/// [`MachineError::JoinWithoutFork`] if the task has no registered
/// dependency on `jr`; [`MachineError::JoinNotReady`] on a premature root
/// join; a type error if the record's continuation block lacks a `jtppt`
/// annotation.
pub fn resolve_join(
    program: &Program,
    mut task: TaskState,
    jr: JoinId,
    stores: &mut Stores,
    tau: u64,
) -> Result<JoinResolution, MachineError> {
    let assoc = task.assoc(jr).ok_or(MachineError::JoinWithoutFork)?;
    match assoc {
        Assoc::Root => {
            let outcome = stores.joins.join(
                jr,
                Assoc::Root,
                Stash {
                    regs: RegFile::new(0),
                    rel_work: 0,
                    rel_span: 0,
                    assocs: Vec::new(),
                    graph: None,
                },
            )?;
            match outcome {
                JoinOutcome::Continue { cont } => {
                    task.remove_assoc(jr);
                    task.goto(cont);
                    Ok(JoinResolution::Completed(Box::new(task)))
                }
                other => unreachable!("root join produced {other:?}"),
            }
        }
        node_assoc => {
            let mut assocs = task.assocs.clone();
            assocs.retain(|&(id, _)| id != jr);
            let stash = Stash {
                regs: task.regs,
                rel_work: task.rel_work,
                rel_span: task.rel_span,
                assocs,
                graph: task.cost.as_mut().map(TaskCost::flush),
            };
            match stores.joins.join(jr, node_assoc, stash)? {
                JoinOutcome::Stashed => Ok(JoinResolution::TaskDied),
                JoinOutcome::Merge {
                    mut parent,
                    mut child,
                    up,
                    prefix,
                    prefix_graph,
                    cont,
                } => {
                    let (delta, comb) = match &program.block(cont).annotation {
                        Annotation::JoinTarget { merge, comb, .. } => (merge, *comb),
                        _ => {
                            return Err(MachineError::TypeError {
                                expected: "join-target (jtppt) continuation block",
                                got: "plain block",
                            })
                        }
                    };
                    let regs = RegFile::merge(&parent.regs, &child.regs, delta);
                    let assocs = JoinStore::merge_assocs(jr, up, &parent.assocs, &child.assocs);
                    // Explicit graph: prefix · (parent ∥ child), the τ
                    // weight being applied at evaluation of the Par node.
                    let cost = match (prefix_graph, parent.graph.take(), child.graph.take()) {
                        (Some(pg), Some(a), Some(b)) => Some(TaskCost {
                            prefix: pg.then(a.beside(b)),
                            steps: 0,
                        }),
                        _ => None,
                    };
                    let merged = TaskState {
                        block: comb,
                        instr: 0,
                        cycles: 0,
                        regs,
                        assocs,
                        rel_work: prefix.0 + parent.rel_work + child.rel_work + tau,
                        rel_span: prefix.1 + parent.rel_span.max(child.rel_span) + tau,
                        cost,
                    };
                    Ok(JoinResolution::Merged(Box::new(merged)))
                }
                JoinOutcome::Continue { .. } => unreachable!("node join continued"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn binop_truth_encoding() {
        assert_eq!(
            eval_binop(BinOp::Lt, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Int(0) // true
        );
        assert_eq!(
            eval_binop(BinOp::Lt, Value::Int(2), Value::Int(1)).unwrap(),
            Value::Int(1) // false
        );
        assert_eq!(
            eval_binop(BinOp::EqOp, Value::Int(3), Value::Int(3)).unwrap(),
            Value::Int(0)
        );
    }

    #[test]
    fn binop_division_by_zero() {
        assert_eq!(
            eval_binop(BinOp::Div, Value::Int(1), Value::Int(0)),
            Err(MachineError::DivisionByZero)
        );
        assert_eq!(
            eval_binop(BinOp::Mod, Value::Int(1), Value::Int(0)),
            Err(MachineError::DivisionByZero)
        );
    }

    #[test]
    fn binop_wrapping_semantics() {
        assert_eq!(
            eval_binop(BinOp::Add, Value::Int(i64::MAX), Value::Int(1)).unwrap(),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            eval_binop(BinOp::Shl, Value::Int(1), Value::Int(64)).unwrap(),
            Value::Int(1) // shift masked to 0
        );
    }

    #[test]
    fn binop_pointer_arithmetic() {
        let sp = Value::Stack(crate::machine::stack::StackRef {
            stack: crate::machine::stack::StackId(0),
            pos: 5,
        });
        match eval_binop(BinOp::Add, sp, Value::Int(2)).unwrap() {
            Value::Stack(s) => assert_eq!(s.pos, 3),
            other => panic!("{other:?}"),
        }
        match eval_binop(BinOp::Sub, sp, Value::Int(2)).unwrap() {
            Value::Stack(s) => assert_eq!(s.pos, 7),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn binop_unsupported_reports_kinds() {
        let sp = Value::Stack(crate::machine::stack::StackRef {
            stack: crate::machine::stack::StackId(0),
            pos: 0,
        });
        match eval_binop(BinOp::Mul, sp, Value::Int(2)) {
            Err(MachineError::UnsupportedOperands { lhs, .. }) => {
                assert_eq!(lhs, "stack pointer")
            }
            other => panic!("{other:?}"),
        }
    }

    fn tiny_program() -> (Program, Reg) {
        let mut b = ProgramBuilder::new();
        let r = b.reg("r");
        let next = b.label("next");
        b.block(
            "main",
            vec![
                Instr::Move {
                    dst: r,
                    src: Operand::Int(5),
                },
                Instr::Jump {
                    target: Operand::Label(next),
                },
            ],
        );
        b.block("next", vec![Instr::Halt]);
        (b.build().unwrap(), r)
    }

    #[test]
    fn step_move_jump_halt() {
        let (p, r) = tiny_program();
        let mut stores = Stores::new();
        let mut t = TaskState::new(&p, p.entry());
        assert!(matches!(
            step_task(&p, &mut t, &mut stores).unwrap(),
            StepOutcome::Ran
        ));
        assert_eq!(t.regs.read(r).unwrap(), Value::Int(5));
        assert!(matches!(
            step_task(&p, &mut t, &mut stores).unwrap(),
            StepOutcome::Ran
        ));
        assert_eq!(p.label_name(t.block), "next");
        assert!(matches!(
            step_task(&p, &mut t, &mut stores).unwrap(),
            StepOutcome::Halted
        ));
        assert_eq!(t.cycles, 3);
        assert_eq!(t.rel_work, 3);
    }

    #[test]
    fn heartbeat_poll_diverts_only_at_promotion_points() {
        let mut b = ProgramBuilder::new();
        let handler = b.label("handler");
        b.annotated_block(
            "main",
            Annotation::PromotionReady { handler },
            vec![Instr::Halt],
        );
        b.block("handler", vec![Instr::Halt]);
        let p = b.build().unwrap();

        let mut t = TaskState::new(&p, p.entry());
        // Below threshold: no divert.
        t.cycles = 3;
        assert!(!t.poll_heartbeat(&p, 10));
        // Above threshold at a prppt block entry: divert, counter resets.
        t.cycles = 11;
        assert!(t.poll_heartbeat(&p, 10));
        assert_eq!(p.label_name(t.block), "handler");
        assert_eq!(t.cycles, 0);
        // Mid-block: no divert even above threshold.
        let mut t2 = TaskState::new(&p, p.entry());
        t2.instr = 1;
        t2.cycles = 100;
        assert!(!t2.poll_heartbeat(&p, 10));
    }

    #[test]
    fn join_without_fork_is_error() {
        let (p, _) = tiny_program();
        let mut stores = Stores::new();
        let t = TaskState::new(&p, p.entry());
        let j = stores.joins.alloc(p.entry());
        assert!(matches!(
            resolve_join(&p, t, j, &mut stores, 0),
            Err(MachineError::JoinWithoutFork)
        ));
    }
}
