//! The Task Parallel Assembly Language (TPAL).
//!
//! This crate implements the primary contribution of *"Task Parallel
//! Assembly Language for Uncompromising Parallelism"* (Rainey et al.,
//! PLDI 2021): a compact, RISC-like assembly language with **native task
//! parallelism**, specified as an abstract machine, together with the
//! *heartbeat scheduling* execution model that promotes latent parallelism
//! into actual tasks only at periodic heartbeats.
//!
//! The crate contains:
//!
//! * [`isa`] — the instruction set (Figure 1 of the paper, plus the stack
//!   extension of Figure 21): registers, labels, join records, block
//!   annotations (`prppt` promotion-ready program points and `jtppt`
//!   join-target program points), and instructions including `fork`,
//!   `join`, `jralloc`, and the promotion-mark operations.
//! * [`program`] — validated TPAL programs (labelled blocks) and a builder.
//! * [`asm`] — a textual assembler and pretty-printer for the concrete
//!   syntax used in the paper's listings.
//! * [`machine`] — the abstract machine: sequential transitions
//!   (Figures 29 and 31), multi-task parallel evaluation with heartbeat
//!   interrupts and join resolution (Figures 27 and 30), and typed errors.
//! * [`cost`] — the cost semantics of Figure 28: series-parallel cost
//!   graphs summarised as work and span, with the fork-join weight `τ`.
//! * [`programs`] — the paper's example programs (`prod`, `pow`, `fib`)
//!   built programmatically, used throughout tests and documentation.
//!
//! # Truth encoding
//!
//! Following Appendix D of the paper, **zero represents true**: comparison
//! operators produce `0` for true and `1` for false, and `if-jump r, l`
//! branches to `l` when `r` holds zero. This makes `if-jump a, exit` exit a
//! counting loop when `a` reaches zero, exactly as in the paper's listings.
//!
//! # Example
//!
//! Run the paper's running example, `prod` (computes `c = a * b` by
//! repeated addition), with heartbeat-driven promotion:
//!
//! ```
//! use tpal_core::machine::{Machine, MachineConfig};
//! use tpal_core::programs::prod;
//!
//! # fn main() -> Result<(), tpal_core::machine::MachineError> {
//! let program = prod();
//! let mut machine = Machine::new(&program, MachineConfig::default());
//! machine.set_reg("a", 6)?;
//! machine.set_reg("b", 7)?;
//! let outcome = machine.run()?;
//! assert_eq!(outcome.read_reg("c"), Some(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cost;
pub mod decoded;
pub mod isa;
pub mod machine;
pub mod program;
pub mod programs;
pub mod threaded;
pub mod tier;

pub use decoded::DecodedProgram;
pub use isa::{Annotation, BinOp, Block, Instr, JoinPolicy, Label, Operand, Reg, RegMap};
pub use machine::{Machine, MachineConfig, MachineError, Outcome, Value};
pub use program::{Program, ProgramBuilder, ValidationError};
pub use threaded::ThreadedProgram;
pub use tier::{ExecBackend, ExecTier};
