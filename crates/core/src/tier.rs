//! Execution-tier selection: one enum naming the three interpreter
//! tiers, and a pre-compiled backend that dispatches a task quantum to
//! the selected tier.
//!
//! The three tiers are bit-identical in observable behaviour — same
//! step and cycle accounting, same pause points, same fault positions —
//! and differ only in dispatch cost:
//!
//! * [`ExecTier::Reference`] — the specification interpreter
//!   ([`crate::machine::run_task_until`]): one `match` over
//!   [`crate::isa::Instr`] per step, operands read through the register
//!   map each time. Slowest; the semantic ground truth.
//! * [`ExecTier::Decoded`] — the pre-decoded micro-op stream
//!   ([`crate::decoded::DecodedProgram`]): operands resolved at decode
//!   time, hot multi-instruction shapes fused into superinstructions,
//!   dispatched by a `match` over the micro-op enum.
//! * [`ExecTier::Threaded`] — the threaded-code tier
//!   ([`crate::threaded::ThreadedProgram`]): each micro-op span lowered
//!   to a pre-bound handler function pointer with a fixed-layout
//!   operand payload, so the execute loop is an indirect call per
//!   dispatch with no opcode decode or operand indexing. Fastest; the
//!   default.
//!
//! Equivalence across the tiers is enforced by three-way differential
//! suites (`engine_equivalence`, `decoded_prop`, `threaded_quantum`).

use crate::decoded::DecodedProgram;
use crate::machine::step::{run_task_until, RunPause, Stores, TaskState};
use crate::machine::MachineError;
use crate::program::Program;
use crate::threaded::ThreadedProgram;

/// Which interpreter tier executes task quanta.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecTier {
    /// The specification interpreter: per-step `match` on [`crate::isa::Instr`].
    Reference,
    /// Pre-decoded micro-ops with fused superinstructions.
    Decoded,
    /// Direct-dispatch threaded code over pre-bound handler pointers (default).
    #[default]
    Threaded,
}

impl ExecTier {
    /// Parses a tier name as accepted by `--exec-tier`:
    /// `ref`/`reference`, `decoded`, or `threaded`.
    pub fn parse(s: &str) -> Option<ExecTier> {
        match s {
            "ref" | "reference" => Some(ExecTier::Reference),
            "decoded" => Some(ExecTier::Decoded),
            "threaded" => Some(ExecTier::Threaded),
            _ => None,
        }
    }

    /// Canonical short name (`ref`, `decoded`, `threaded`), as used in
    /// bench columns and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            ExecTier::Reference => "ref",
            ExecTier::Decoded => "decoded",
            ExecTier::Threaded => "threaded",
        }
    }

    /// All tiers, in increasing order of dispatch sophistication.
    pub const ALL: [ExecTier; 3] = [ExecTier::Reference, ExecTier::Decoded, ExecTier::Threaded];
}

impl std::fmt::Display for ExecTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A program compiled for one execution tier.
///
/// Construction pays the tier's compile cost once (nothing for the
/// reference tier); [`ExecBackend::run_until`] then dispatches each
/// quantum with no per-call branching beyond one enum match.
#[derive(Debug, Clone)]
pub enum ExecBackend {
    /// No pre-compilation; quanta run through the specification interpreter.
    Reference,
    /// Pre-decoded micro-op stream (boxed, same as `Threaded`).
    Decoded(Box<DecodedProgram>),
    /// Threaded-code handler stream (boxed: the handler tables make
    /// it the largest variant by far, and it is built once per program).
    Threaded(Box<ThreadedProgram>),
}

impl ExecBackend {
    /// Compiles `program` for the requested tier.
    pub fn new(program: &Program, tier: ExecTier) -> ExecBackend {
        match tier {
            ExecTier::Reference => ExecBackend::Reference,
            ExecTier::Decoded => ExecBackend::Decoded(Box::new(DecodedProgram::decode(program))),
            ExecTier::Threaded => {
                ExecBackend::Threaded(Box::new(ThreadedProgram::compile(program)))
            }
        }
    }

    /// The tier this backend was compiled for.
    pub fn tier(&self) -> ExecTier {
        match self {
            ExecBackend::Reference => ExecTier::Reference,
            ExecBackend::Decoded(_) => ExecTier::Decoded,
            ExecBackend::Threaded(_) => ExecTier::Threaded,
        }
    }

    /// Runs `task` for up to `max_steps` machine steps through this
    /// backend's tier. Semantics are identical across tiers; see
    /// [`crate::machine::run_task_until`] for the contract (`watch`
    /// enables promotion-ready pauses at `prppt` block entries).
    #[inline]
    pub fn run_until(
        &self,
        program: &Program,
        task: &mut TaskState,
        stores: &mut Stores,
        max_steps: u64,
        watch: bool,
    ) -> Result<(u64, RunPause), MachineError> {
        match self {
            ExecBackend::Reference => run_task_until(program, task, stores, max_steps, watch),
            ExecBackend::Decoded(d) => d.run_until(task, stores, max_steps, watch),
            ExecBackend::Threaded(t) => t.run_until(task, stores, max_steps, watch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Value;
    use crate::programs::prod;

    #[test]
    fn parse_and_label_round_trip() {
        for tier in ExecTier::ALL {
            assert_eq!(ExecTier::parse(tier.label()), Some(tier));
        }
        assert_eq!(ExecTier::parse("reference"), Some(ExecTier::Reference));
        assert_eq!(ExecTier::parse("jit"), None);
        assert_eq!(ExecTier::default(), ExecTier::Threaded);
    }

    #[test]
    fn backends_agree_on_prod() {
        let p = prod();
        let mut results = Vec::new();
        for tier in ExecTier::ALL {
            let backend = ExecBackend::new(&p, tier);
            assert_eq!(backend.tier(), tier);
            let mut task = TaskState::new(&p, p.entry());
            task.regs.write(p.reg("a").unwrap(), Value::Int(6));
            task.regs.write(p.reg("b").unwrap(), Value::Int(7));
            let mut stores = Stores::new();
            let r = backend.run_until(&p, &mut task, &mut stores, u64::MAX, false);
            results.push((format!("{r:?}"), task.block, task.instr, task.cycles));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }
}
