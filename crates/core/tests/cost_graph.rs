//! Cross-validation of the cost semantics (Figure 28): the executor's
//! incremental work/span accounting must agree exactly with evaluating
//! the explicit series-parallel cost graph it can optionally build —
//! for every program, heartbeat setting, schedule, and τ.

use tpal_core::cost::{lower_bound, CostGraph};
use tpal_core::machine::{Machine, MachineConfig, SchedulePolicy};
use tpal_core::program::Program;
use tpal_core::programs::{fib, pow, prod};

fn check(program: &Program, inputs: &[(&str, i64)], cfg: MachineConfig) -> (u64, u64) {
    let mut m = Machine::new(program, cfg);
    for (name, v) in inputs {
        m.set_reg(name, *v).unwrap();
    }
    let out = m.run().unwrap();
    let g: CostGraph = out.cost_graph.clone().expect("graph built");
    assert_eq!(
        g.work(cfg.tau),
        out.work,
        "explicit graph work disagrees with incremental accounting"
    );
    assert_eq!(
        g.span(cfg.tau),
        out.span,
        "explicit graph span disagrees with incremental accounting"
    );
    (out.work, out.span)
}

#[test]
fn prod_graph_matches_counters() {
    let p = prod();
    for hb in [8u64, 50, 333, u64::MAX] {
        for tau in [0u64, 1, 25] {
            let cfg = MachineConfig::default()
                .with_heartbeat(hb)
                .with_tau(tau)
                .with_cost_graph();
            let (w, s) = check(&p, &[("a", 700), ("b", 3)], cfg);
            assert!(s <= w);
        }
    }
}

#[test]
fn prod_graph_matches_under_schedules() {
    let p = prod();
    for policy in [
        SchedulePolicy::ParentFirst,
        SchedulePolicy::ChildFirst,
        SchedulePolicy::RoundRobin { quantum: 4 },
        SchedulePolicy::Random {
            seed: 5,
            quantum: 6,
        },
    ] {
        let cfg = MachineConfig::default()
            .with_heartbeat(20)
            .with_policy(policy)
            .with_cost_graph();
        check(&p, &[("a", 400), ("b", 2)], cfg);
    }
}

#[test]
fn fib_graph_matches_counters() {
    let p = fib();
    let cfg = MachineConfig::default()
        .with_heartbeat(35)
        .with_tau(7)
        .with_cost_graph();
    let (w, s) = check(&p, &[("n", 15)], cfg);
    assert!(s < w, "promoted fib must have span < work");
}

#[test]
fn pow_graph_matches_counters() {
    let p = pow();
    let cfg = MachineConfig::default()
        .with_heartbeat(40)
        .with_tau(3)
        .with_cost_graph();
    check(&p, &[("d", 2), ("e", 16)], cfg);
}

#[test]
fn span_is_schedule_invariant() {
    // Work and span are properties of the induced computation DAG under
    // a fixed promotion pattern; with deterministic per-task heartbeats
    // the DAG itself is schedule-invariant, so (work, span) must be too.
    let p = prod();
    let mut seen = None;
    for policy in [
        SchedulePolicy::ParentFirst,
        SchedulePolicy::ChildFirst,
        SchedulePolicy::Random {
            seed: 1,
            quantum: 3,
        },
    ] {
        let cfg = MachineConfig::default()
            .with_heartbeat(16)
            .with_policy(policy)
            .with_cost_graph();
        let ws = check(&p, &[("a", 300), ("b", 5)], cfg);
        match seen {
            None => seen = Some(ws),
            Some(prev) => assert_eq!(prev, ws, "{policy:?}"),
        }
    }
}

#[test]
fn heartbeat_trades_span_for_work() {
    // Smaller ♥ ⇒ more promotions ⇒ more total work (handlers, τ) but
    // shorter critical path: the fundamental trade heartbeat scheduling
    // navigates.
    let p = prod();
    let run = |hb: u64| {
        let cfg = MachineConfig::default()
            .with_heartbeat(hb)
            .with_cost_graph();
        check(&p, &[("a", 3000), ("b", 1)], cfg)
    };
    let (w_fast, s_fast) = run(16);
    let (w_slow, s_slow) = run(1024);
    assert!(w_fast > w_slow, "more promotions cost more work");
    assert!(s_fast < s_slow, "more promotions shorten the span");
}

#[test]
fn parallelism_bounds_hold() {
    let p = fib();
    let cfg = MachineConfig::default()
        .with_heartbeat(30)
        .with_cost_graph();
    let mut m = Machine::new(&p, cfg);
    m.set_reg("n", 16).unwrap();
    let out = m.run().unwrap();
    // Completion on p processors is bounded below by max(work/p, span).
    for cores in 1..=16 {
        assert!(lower_bound(out.work, out.span, cores) >= out.span);
        assert!(lower_bound(out.work, out.span, cores) * cores >= out.work);
    }
}
