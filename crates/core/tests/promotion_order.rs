//! Promotion-order differential tests.
//!
//! `prmsplit` may pop the oldest (the paper's §2.3 outermost-first
//! policy) or the newest visible mark; either is a sound promotion, so
//! program results must be identical under both — only the cost profile
//! (task counts, work, span) may move. These tests pin that invariant on
//! the three paper programs, and check the direction the paper predicts:
//! outermost-first promotion extracts at least as much parallelism per
//! promotion, so it never needs *more* promotions to reach an equal or
//! better span.

use tpal_core::machine::{Machine, MachineConfig, Outcome, PromotionOrder};
use tpal_core::program::Program;
use tpal_core::programs;

fn run(program: &Program, heartbeat: u64, order: PromotionOrder, args: &[(&str, i64)]) -> Outcome {
    let config = MachineConfig::default()
        .with_heartbeat(heartbeat)
        .with_promotion_order(order);
    let mut m = Machine::new(program, config);
    for (name, v) in args {
        m.set_reg(name, *v).unwrap();
    }
    m.run().unwrap()
}

#[test]
fn prod_result_is_order_independent() {
    let program = programs::prod();
    for hb in [8, 32, 128] {
        let old = run(
            &program,
            hb,
            PromotionOrder::OldestFirst,
            &[("a", 7), ("b", 400)],
        );
        let new = run(
            &program,
            hb,
            PromotionOrder::NewestFirst,
            &[("a", 7), ("b", 400)],
        );
        assert_eq!(old.read_reg("c"), Some(2800));
        assert_eq!(new.read_reg("c"), Some(2800));
        // A flat loop exposes one mark at a time: identical schedules.
        assert_eq!(old.stats.forks, new.stats.forks, "♥={hb}");
        assert_eq!(old.work, new.work, "♥={hb}");
    }
}

#[test]
fn fib_result_is_order_independent_costs_are_not() {
    let program = programs::fib();
    let old = run(&program, 60, PromotionOrder::OldestFirst, &[("n", 18)]);
    let new = run(&program, 60, PromotionOrder::NewestFirst, &[("n", 18)]);
    assert_eq!(old.read_reg("f"), Some(2584));
    assert_eq!(new.read_reg("f"), Some(2584));
    assert!(old.stats.forks > 0 && new.stats.forks > 0);
    // Recursion builds a deep mark list, so the two policies genuinely
    // diverge: newest-first promotes leaf-sized continuations.
    assert_ne!(
        (old.stats.forks, old.span),
        (new.stats.forks, new.span),
        "policies should produce different schedules on deep recursion"
    );
    // The paper's policy promotes the largest latent subcomputation, so
    // the span it reaches per promotion is at least as good.
    assert!(
        old.span <= new.span,
        "outermost-first span {} should not exceed innermost-first span {}",
        old.span,
        new.span
    );
}

#[test]
fn pow_nested_loops_order_independent() {
    let program = programs::pow();
    for order in [PromotionOrder::OldestFirst, PromotionOrder::NewestFirst] {
        let out = run(&program, 25, order, &[("d", 3), ("e", 9)]);
        assert_eq!(out.read_reg("f"), Some(19_683), "{order:?}");
        assert!(out.stats.forks > 0, "{order:?} should promote");
    }
}

#[test]
fn fib_sweep_outermost_never_worse_on_span() {
    let program = programs::fib();
    for hb in [40, 80, 160] {
        let old = run(&program, hb, PromotionOrder::OldestFirst, &[("n", 16)]);
        let new = run(&program, hb, PromotionOrder::NewestFirst, &[("n", 16)]);
        assert_eq!(old.read_reg("f"), new.read_reg("f"), "♥={hb}");
        assert!(old.span <= new.span, "♥={hb}: {} vs {}", old.span, new.span);
    }
}
