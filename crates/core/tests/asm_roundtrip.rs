//! Property tests of the assembler: randomly generated well-formed TPAL
//! programs must survive `print → parse` losslessly, and parsing is
//! deterministic.

use proptest::prelude::*;

use tpal_core::asm::{parse_program, print_program};
use tpal_core::isa::{Annotation, BinOp, Instr, JoinPolicy, MemAddr, Operand, RegMap};
use tpal_core::program::{Program, ProgramBuilder};

const REGS: [&str; 6] = ["r", "a", "b", "sp", "x_1", "sp_top"];

#[derive(Debug, Clone)]
enum GenInstr {
    Move(usize, GenOperand),
    Op(usize, BinOp, usize, GenOperand),
    IfJump(usize, usize), // cond reg, target block
    SNew(usize),
    SAlloc(usize, u32),
    SFree(usize, u32),
    Load(usize, usize, u32),
    Store(usize, u32, GenOperand),
    PrmPush(usize, u32),
    PrmEmpty(usize, usize),
    HAlloc(usize, GenOperand),
    HLoad(usize, usize, GenOperand),
    HStore(usize, GenOperand, GenOperand),
}

#[derive(Debug, Clone)]
enum GenOperand {
    Reg(usize),
    Int(i64),
    Label(usize),
}

fn operand_strategy() -> impl Strategy<Value = GenOperand> {
    prop_oneof![
        (0..REGS.len()).prop_map(GenOperand::Reg),
        (-1000i64..1000).prop_map(GenOperand::Int),
        (0usize..4).prop_map(GenOperand::Label),
    ]
}

fn instr_strategy() -> impl Strategy<Value = GenInstr> {
    let reg = 0..REGS.len();
    let off = 0u32..5;
    prop_oneof![
        (reg.clone(), operand_strategy()).prop_map(|(d, s)| GenInstr::Move(d, s)),
        (
            reg.clone(),
            proptest::sample::select(BinOp::all()),
            reg.clone(),
            operand_strategy()
        )
            .prop_map(|(d, o, l, r)| GenInstr::Op(d, o, l, r)),
        (reg.clone(), 0usize..4).prop_map(|(c, t)| GenInstr::IfJump(c, t)),
        reg.clone().prop_map(GenInstr::SNew),
        (reg.clone(), 0u32..4).prop_map(|(s, n)| GenInstr::SAlloc(s, n)),
        (reg.clone(), 0u32..4).prop_map(|(s, n)| GenInstr::SFree(s, n)),
        (reg.clone(), reg.clone(), off.clone()).prop_map(|(d, b, o)| GenInstr::Load(d, b, o)),
        (reg.clone(), off.clone(), operand_strategy())
            .prop_map(|(b, o, s)| GenInstr::Store(b, o, s)),
        (reg.clone(), off).prop_map(|(b, o)| GenInstr::PrmPush(b, o)),
        (reg.clone(), reg.clone()).prop_map(|(d, s)| GenInstr::PrmEmpty(d, s)),
        (reg.clone(), operand_strategy()).prop_map(|(d, s)| GenInstr::HAlloc(d, s)),
        (reg.clone(), reg.clone(), operand_strategy())
            .prop_map(|(d, b, o)| GenInstr::HLoad(d, b, o)),
        (reg, operand_strategy(), operand_strategy())
            .prop_map(|(b, o, s)| GenInstr::HStore(b, o, s)),
    ]
}

/// Four blocks with random bodies, random annotations, and random
/// terminators (structurally valid by construction).
fn program_strategy() -> impl Strategy<Value = Program> {
    let block = proptest::collection::vec(instr_strategy(), 0..8);
    (
        proptest::collection::vec(block, 4..5),
        proptest::collection::vec(0usize..4, 4..5), // jump targets
        proptest::collection::vec(0usize..3, 4..5), // annotation selector
        0usize..4,                                  // jtppt comb target
        proptest::sample::select(&[JoinPolicy::Assoc, JoinPolicy::AssocComm][..]),
    )
        .prop_map(|(bodies, jumps, anns, comb, policy)| {
            let mut b = ProgramBuilder::new();
            let names = ["blk0", "blk1", "blk2", "blk3"];
            let labels: Vec<_> = names.iter().map(|n| b.label(n)).collect();
            let regs: Vec<_> = REGS.iter().map(|r| b.reg(r)).collect();
            let to_op = |op: &GenOperand| -> Operand {
                match op {
                    GenOperand::Reg(i) => Operand::Reg(regs[*i]),
                    GenOperand::Int(n) => Operand::Int(*n),
                    GenOperand::Label(l) => Operand::Label(labels[*l]),
                }
            };
            for (i, body) in bodies.iter().enumerate() {
                let mut instrs: Vec<Instr> = Vec::new();
                for gi in body {
                    instrs.push(match gi {
                        GenInstr::Move(d, s) => Instr::Move {
                            dst: regs[*d],
                            src: to_op(s),
                        },
                        GenInstr::Op(d, o, l, r) => Instr::Op {
                            dst: regs[*d],
                            op: *o,
                            lhs: regs[*l],
                            rhs: to_op(r),
                        },
                        GenInstr::IfJump(c, t) => Instr::IfJump {
                            cond: regs[*c],
                            target: Operand::Label(labels[*t]),
                        },
                        GenInstr::SNew(d) => Instr::SNew { dst: regs[*d] },
                        GenInstr::SAlloc(s, n) => Instr::SAlloc {
                            sp: regs[*s],
                            n: *n,
                        },
                        GenInstr::SFree(s, n) => Instr::SFree {
                            sp: regs[*s],
                            n: *n,
                        },
                        GenInstr::Load(d, base, o) => Instr::Load {
                            dst: regs[*d],
                            addr: MemAddr {
                                base: regs[*base],
                                offset: *o,
                            },
                        },
                        GenInstr::Store(base, o, s) => Instr::Store {
                            addr: MemAddr {
                                base: regs[*base],
                                offset: *o,
                            },
                            src: to_op(s),
                        },
                        GenInstr::PrmPush(base, o) => Instr::PrmPush {
                            addr: MemAddr {
                                base: regs[*base],
                                offset: *o,
                            },
                        },
                        GenInstr::PrmEmpty(d, s) => Instr::PrmEmpty {
                            dst: regs[*d],
                            sp: regs[*s],
                        },
                        GenInstr::HAlloc(d, s) => Instr::HAlloc {
                            dst: regs[*d],
                            size: to_op(s),
                        },
                        GenInstr::HLoad(d, base, o) => Instr::HLoad {
                            dst: regs[*d],
                            base: regs[*base],
                            offset: to_op(o),
                        },
                        GenInstr::HStore(base, o, s) => Instr::HStore {
                            base: regs[*base],
                            offset: to_op(o),
                            src: to_op(s),
                        },
                    });
                }
                // Terminator: a jump to a random block (always valid).
                instrs.push(Instr::Jump {
                    target: Operand::Label(labels[jumps[i]]),
                });
                let ann = match anns[i] {
                    1 => Annotation::PromotionReady {
                        handler: labels[(i + 1) % 4],
                    },
                    2 => Annotation::JoinTarget {
                        policy,
                        merge: RegMap::new().with(regs[0], regs[1]),
                        comb: labels[comb],
                    },
                    _ => Annotation::None,
                };
                b.annotated_block(names[i], ann, instrs);
            }
            b.build().expect("structurally valid by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(p in program_strategy()) {
        let text = print_program(&p);
        let p2 = parse_program(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let text2 = print_program(&p2);
        prop_assert_eq!(&text, &text2, "printing is not a fixed point");
        prop_assert_eq!(p.block_count(), p2.block_count());
        prop_assert_eq!(p.instr_count(), p2.instr_count());
        // Block-by-block structural equality.
        for (l, blk) in p.iter() {
            let l2 = p2.label(p.label_name(l)).expect("label preserved");
            let blk2 = p2.block(l2);
            prop_assert_eq!(blk.instrs.len(), blk2.instrs.len());
        }
    }

    #[test]
    fn parsing_is_deterministic(p in program_strategy()) {
        let text = print_program(&p);
        let a = parse_program(&text).unwrap();
        let b = parse_program(&text).unwrap();
        prop_assert_eq!(print_program(&a), print_program(&b));
    }
}
