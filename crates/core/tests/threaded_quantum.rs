//! Quantum-split edge cases of the threaded tier.
//!
//! The threaded compiler merges adjacent micro-ops into multi-step
//! dispatches (ALU pairs, load+accumulate, op-op-heap triples) and
//! installs a whole-loop template on reduce-shaped loops, so a quantum
//! boundary can land *inside* a merged span far more often than on the
//! decoded tier. This suite drives reduce-loop programs — the shape
//! with the deepest merging — chunk by chunk under adversarial quanta
//! (1, 2, small primes, exact-fusion-boundary multiples), asserting
//! **per-chunk** three-way equality of `(steps, pause)`, task position,
//! and cycle count between the reference interpreter, the decoded tier,
//! and the threaded tier, and final-state equality of the registers —
//! including runs that fault out of the template mid-iteration.

use proptest::prelude::*;

use tpal_core::isa::{BinOp, Instr, Operand};
use tpal_core::machine::{Stores, TaskState, Value};
use tpal_core::program::{Program, ProgramBuilder};
use tpal_core::tier::{ExecBackend, ExecTier};

/// A reduce loop with a configurable accumulate operator and a
/// `pairs`-long straight-line prologue of specialised ALU ops (which
/// the threaded tier merges two at a time, so odd quantum remainders
/// land mid-span).
fn reduce_program(cmp: BinOp, acc_op: BinOp, pairs: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let (i, n, a, w, acc, t) = (
        b.reg("i"),
        b.reg("n"),
        b.reg("a"),
        b.reg("w"),
        b.reg("acc"),
        b.reg("t"),
    );
    let (head, body, exit) = (b.label("head"), b.label("body"), b.label("exit"));

    let mut prologue = Vec::new();
    for k in 0..pairs * 2 {
        prologue.push(Instr::Op {
            dst: acc,
            op: if k % 2 == 0 { BinOp::Add } else { BinOp::Sub },
            lhs: acc,
            rhs: Operand::Int(k as i64 + 1),
        });
    }
    prologue.push(Instr::Jump {
        target: Operand::Label(head),
    });
    b.block("entry", prologue);

    b.block(
        "head",
        vec![
            Instr::Op {
                dst: t,
                op: cmp,
                lhs: i,
                rhs: Operand::Reg(n),
            },
            Instr::IfJump {
                cond: t,
                target: Operand::Label(body),
            },
            Instr::Jump {
                target: Operand::Label(exit),
            },
        ],
    );
    b.block(
        "body",
        vec![
            Instr::HLoad {
                dst: w,
                base: a,
                offset: Operand::Reg(i),
            },
            Instr::Op {
                dst: acc,
                op: acc_op,
                lhs: acc,
                rhs: Operand::Reg(w),
            },
            Instr::Op {
                dst: i,
                op: BinOp::Add,
                lhs: i,
                rhs: Operand::Int(1),
            },
            Instr::Jump {
                target: Operand::Label(head),
            },
        ],
    );
    b.block("exit", vec![Instr::Halt]);
    let entry = b.label("entry");
    b.entry(entry);
    b.build().unwrap()
}

/// One engine's harness: a task plus stores with the array installed.
struct Engine {
    backend: ExecBackend,
    task: TaskState,
    stores: Stores,
}

fn engine(p: &Program, tier: ExecTier, data: &[i64], n: i64) -> Engine {
    let backend = ExecBackend::new(p, tier);
    let mut stores = Stores::new();
    let base = stores.heap.alloc_init(data);
    let mut task = TaskState::new(p, p.entry());
    for (name, v) in [("i", 0), ("n", n), ("a", base), ("acc", 0)] {
        task.regs.write(p.reg(name).unwrap(), Value::Int(v));
    }
    Engine {
        backend,
        task,
        stores,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Per-chunk three-way agreement on reduce loops: steps, pause (or
    /// fault, with its position), cycles, and final registers, under
    /// quanta that slice merged spans and the loop template at every
    /// offset. `n > len` runs fault on a heap load mid-template.
    #[test]
    fn threaded_quantum_splits_match(
        len in 0usize..12,
        n in 0i64..24,
        cmp in proptest::sample::select(&[BinOp::Lt, BinOp::Le][..]),
        acc_op in proptest::sample::select(&[BinOp::Add, BinOp::Sub, BinOp::Mul][..]),
        pairs in 0usize..3,
        quanta in proptest::collection::vec(
            // 1 and 2 split every pair; 3/5/7/11/13 walk the 6-step
            // loop template through every interior offset; 6 and 12
            // are exact template boundaries; MAX never splits.
            proptest::sample::select(&[1u64, 2, 3, 5, 6, 7, 11, 12, 13, u64::MAX][..]),
            1..6),
    ) {
        let p = reduce_program(cmp, acc_op, pairs);
        let data: Vec<i64> = (0..len as i64).map(|x| x * 3 - 5).collect();
        let mut engines = [
            engine(&p, ExecTier::Reference, &data, n),
            engine(&p, ExecTier::Decoded, &data, n),
            engine(&p, ExecTier::Threaded, &data, n),
        ];

        let mut ci = 0usize;
        let mut guard = 0u32;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "failed to terminate");
            let q = quanta[ci % quanta.len()];
            ci += 1;
            let results: Vec<String> = engines
                .iter_mut()
                .map(|e| {
                    let r = e.backend.run_until(&p, &mut e.task, &mut e.stores, q, false);
                    format!("{r:?}")
                })
                .collect();
            prop_assert_eq!(&results[0], &results[1], "decoded vs ref, quantum {}", q);
            prop_assert_eq!(&results[0], &results[2], "threaded vs ref, quantum {}", q);
            let positions: Vec<_> = engines
                .iter()
                .map(|e| (e.task.block, e.task.instr, e.task.cycles))
                .collect();
            prop_assert_eq!(positions[0], positions[1], "decoded position, quantum {}", q);
            prop_assert_eq!(positions[0], positions[2], "threaded position, quantum {}", q);
            // All agree, so inspect engine 0's result for termination.
            if results[0].contains("Err") || results[0].contains("Boundary") {
                break;
            }
        }
        prop_assert_eq!(&engines[0].task.regs, &engines[1].task.regs);
        prop_assert_eq!(&engines[0].task.regs, &engines[2].task.regs);
        prop_assert_eq!(
            engines[0].stores.heap.checksum(),
            engines[2].stores.heap.checksum()
        );
    }
}

/// The guarded-update shape (Floyd–Warshall relaxation): two strided
/// loads, a compare, and a conditional store-back, all merged into a
/// whole-loop template by the threaded tier.
fn guarded_program() -> Program {
    let mut b = ProgramBuilder::new();
    let (j, n, ra, rb, stride, hb, dd) = (
        b.reg("j"),
        b.reg("n"),
        b.reg("ra"),
        b.reg("rb"),
        b.reg("stride"),
        b.reg("hb"),
        b.reg("dd"),
    );
    let (t, x1, x2, a, cand, x3, x4, bb, c, y1, y2) = (
        b.reg("t"),
        b.reg("x1"),
        b.reg("x2"),
        b.reg("a"),
        b.reg("cand"),
        b.reg("x3"),
        b.reg("x4"),
        b.reg("bb"),
        b.reg("c"),
        b.reg("y1"),
        b.reg("y2"),
    );
    let (head, body, then_b, else_b, endif, exit) = (
        b.label("head"),
        b.label("body"),
        b.label("then_b"),
        b.label("else_b"),
        b.label("endif"),
        b.label("exit"),
    );
    let op = |dst, op, lhs, rhs| Instr::Op { dst, op, lhs, rhs };
    b.block(
        "head",
        vec![
            op(t, BinOp::Lt, j, Operand::Reg(n)),
            Instr::IfJump {
                cond: t,
                target: Operand::Label(body),
            },
            Instr::Jump {
                target: Operand::Label(exit),
            },
        ],
    );
    b.block(
        "body",
        vec![
            op(x1, BinOp::Mul, ra, Operand::Reg(stride)),
            op(x2, BinOp::Add, x1, Operand::Reg(j)),
            Instr::HLoad {
                dst: a,
                base: hb,
                offset: Operand::Reg(x2),
            },
            op(cand, BinOp::Add, dd, Operand::Reg(a)),
            op(x3, BinOp::Mul, rb, Operand::Reg(stride)),
            op(x4, BinOp::Add, x3, Operand::Reg(j)),
            Instr::HLoad {
                dst: bb,
                base: hb,
                offset: Operand::Reg(x4),
            },
            op(c, BinOp::Lt, cand, Operand::Reg(bb)),
            Instr::IfJump {
                cond: c,
                target: Operand::Label(then_b),
            },
            Instr::Jump {
                target: Operand::Label(else_b),
            },
        ],
    );
    b.block(
        "then_b",
        vec![
            op(y1, BinOp::Mul, rb, Operand::Reg(stride)),
            op(y2, BinOp::Add, y1, Operand::Reg(j)),
            Instr::HStore {
                base: hb,
                offset: Operand::Reg(y2),
                src: Operand::Reg(cand),
            },
            Instr::Jump {
                target: Operand::Label(endif),
            },
        ],
    );
    b.block(
        "else_b",
        vec![Instr::Jump {
            target: Operand::Label(endif),
        }],
    );
    b.block(
        "endif",
        vec![
            op(j, BinOp::Add, j, Operand::Int(1)),
            Instr::Jump {
                target: Operand::Label(head),
            },
        ],
    );
    b.block("exit", vec![Instr::Halt]);
    b.entry(head);
    b.build().unwrap()
}

/// `[n, ra, rb, stride, dd]` initial register values.
fn guarded_engine(p: &Program, tier: ExecTier, data: &[i64], init: [i64; 5]) -> Engine {
    let [n, ra, rb, stride, dd] = init;
    let backend = ExecBackend::new(p, tier);
    let mut stores = Stores::new();
    let base = stores.heap.alloc_init(data);
    let mut task = TaskState::new(p, p.entry());
    for (name, v) in [
        ("j", 0),
        ("n", n),
        ("ra", ra),
        ("rb", rb),
        ("stride", stride),
        ("hb", base),
        ("dd", dd),
    ] {
        task.regs.write(p.reg(name).unwrap(), Value::Int(v));
    }
    Engine {
        backend,
        task,
        stores,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Per-chunk three-way agreement on guarded-update loops: the
    /// template commits whole iterations (15 steps untaken, 17 taken),
    /// so these quanta land at every interior offset of both paths, and
    /// row indices that run past the allocation fault mid-template.
    #[test]
    fn guarded_quantum_splits_match(
        len in 0usize..12,
        n in 0i64..10,
        ra in 0i64..4,
        rb in 0i64..4,
        stride in 0i64..5,
        dd in -3i64..4,
        quanta in proptest::collection::vec(
            proptest::sample::select(
                &[1u64, 2, 3, 5, 7, 11, 13, 15, 16, 17, 31, u64::MAX][..]),
            1..6),
    ) {
        let p = guarded_program();
        let data: Vec<i64> = (0..len as i64).map(|x| (x * 7) % 5 - 2).collect();
        let mut engines = [
            guarded_engine(&p, ExecTier::Reference, &data, [n, ra, rb, stride, dd]),
            guarded_engine(&p, ExecTier::Decoded, &data, [n, ra, rb, stride, dd]),
            guarded_engine(&p, ExecTier::Threaded, &data, [n, ra, rb, stride, dd]),
        ];

        let mut ci = 0usize;
        let mut guard = 0u32;
        loop {
            guard += 1;
            prop_assert!(guard < 10_000, "failed to terminate");
            let q = quanta[ci % quanta.len()];
            ci += 1;
            let results: Vec<String> = engines
                .iter_mut()
                .map(|e| {
                    let r = e.backend.run_until(&p, &mut e.task, &mut e.stores, q, false);
                    format!("{r:?}")
                })
                .collect();
            prop_assert_eq!(&results[0], &results[1], "decoded vs ref, quantum {}", q);
            prop_assert_eq!(&results[0], &results[2], "threaded vs ref, quantum {}", q);
            let positions: Vec<_> = engines
                .iter()
                .map(|e| (e.task.block, e.task.instr, e.task.cycles))
                .collect();
            prop_assert_eq!(positions[0], positions[1], "decoded position, quantum {}", q);
            prop_assert_eq!(positions[0], positions[2], "threaded position, quantum {}", q);
            if results[0].contains("Err") || results[0].contains("Boundary") {
                break;
            }
        }
        prop_assert_eq!(&engines[0].task.regs, &engines[1].task.regs);
        prop_assert_eq!(&engines[0].task.regs, &engines[2].task.regs);
        prop_assert_eq!(
            engines[0].stores.heap.checksum(),
            engines[1].stores.heap.checksum()
        );
        prop_assert_eq!(
            engines[0].stores.heap.checksum(),
            engines[2].stores.heap.checksum()
        );
    }
}
