//! Ordered join resolution under the `assoc` (non-commutative) policy.
//!
//! The program folds the composition of the affine maps
//! `f_i(x) = m_i·x + c_i` with `m_i = (i mod 3) + 1`, `c_i = i`, over
//! `i ∈ [0, n)` — composition of affine maps is associative but **not**
//! commutative, so the result is only correct if join resolution always
//! combines the parent (earlier iterations) on the left and the child
//! (later iterations) on the right, in fork-tree order, whatever the
//! promotion pattern. The composed map is carried in two registers,
//! exercising multi-pair `ΔR` merging.

use tpal_core::asm::parse_program;
use tpal_core::machine::{Machine, MachineConfig, SchedulePolicy};

const AFFINE: &str = r#"
// Fold f_(n-1) ∘ … ∘ f_1 ∘ f_0 where f_i(x) = ((i%3)+1)·x + i.
// Result: the composed map's coefficients in (pa, pb).
affine: [.]
    pa := 1
    pb := 0
    jump loop
exit: [jtppt assoc; {pa -> pa2, pb -> pb2}; comb]
    halt
loop: [prppt try_promote]
    t := hi - lo
    if-jump t, exit
    m := lo % 3
    m := m + 1
    pa := pa * m
    pb := pb * m
    pb := pb + lo
    lo := lo + 1
    jump loop
try_promote: [.]
    t := hi - lo
    t := t < 2
    if-jump t, loop
    jr := jralloc exit
    jump promote
par_try_promote: [.]
    t := hi - lo
    t := t < 2
    if-jump t, loop_par
    jump promote
promote: [.]
    rem := hi - lo
    half := rem / 2
    mid := hi - half
    tl := lo
    ta := pa
    tb := pb
    lo := mid
    pa := 1
    pb := 0
    fork jr, loop_par
    lo := tl
    hi := mid
    pa := ta
    pb := tb
    jump loop_par
loop_par: [prppt par_try_promote]
    t := hi - lo
    if-jump t, exit_par
    m := lo % 3
    m := m + 1
    pa := pa * m
    pb := pb * m
    pb := pb + lo
    lo := lo + 1
    jump loop_par
comb: [.]
    // child ∘ parent: pa := pa2·pa ; pb := pa2·pb + pb2
    pb := pb * pa2
    pb := pb + pb2
    pa := pa * pa2
    join jr
exit_par: [.]
    join jr
"#;

/// Reference fold in Rust (i64 wrapping, matching the machine).
fn reference(n: i64) -> (i64, i64) {
    let (mut pa, mut pb) = (1i64, 0i64);
    for i in 0..n {
        let m = (i % 3) + 1;
        pa = pa.wrapping_mul(m);
        pb = pb.wrapping_mul(m).wrapping_add(i);
    }
    (pa, pb)
}

fn run(n: i64, heartbeat: u64, policy: SchedulePolicy) -> (i64, i64, u64) {
    let p = parse_program(AFFINE).expect("affine parses");
    let mut m = Machine::new(
        &p,
        MachineConfig::default()
            .with_heartbeat(heartbeat)
            .with_policy(policy),
    );
    m.set_reg("lo", 0).unwrap();
    m.set_reg("hi", n).unwrap();
    let out = m.run().unwrap();
    (
        out.read_reg("pa").unwrap(),
        out.read_reg("pb").unwrap(),
        out.stats.forks,
    )
}

#[test]
fn serial_matches_reference() {
    for n in [0, 1, 2, 7, 50] {
        let (pa, pb, forks) = run(n, u64::MAX, SchedulePolicy::ParentFirst);
        assert_eq!((pa, pb), reference(n), "n={n}");
        assert_eq!(forks, 0);
    }
}

#[test]
fn promoted_composition_stays_ordered() {
    let n = 600;
    let expect = reference(n);
    for hb in [25u64, 60, 144, 999] {
        for policy in [
            SchedulePolicy::ParentFirst,
            SchedulePolicy::ChildFirst,
            SchedulePolicy::RoundRobin { quantum: 5 },
            SchedulePolicy::Random {
                seed: 17,
                quantum: 7,
            },
            SchedulePolicy::Random {
                seed: 18,
                quantum: 3,
            },
        ] {
            let (pa, pb, forks) = run(n, hb, policy);
            assert_eq!((pa, pb), expect, "♥={hb} {policy:?} (forks={forks})");
            if hb == 25 {
                assert!(forks > 0, "♥=25 over 600 iterations must promote");
            }
        }
    }
}

#[test]
fn simulated_multicore_stays_ordered() {
    let p = parse_program(AFFINE).expect("affine parses");
    let n = 2_000;
    let expect = reference(n);
    for cores in [2usize, 5, 13] {
        for seed in [1u64, 2, 3] {
            let mut cfg = tpal_sim_config(cores);
            cfg.seed = seed;
            let mut sim = tpal_sim::Sim::new(&p, cfg);
            sim.set_reg("lo", 0).unwrap();
            sim.set_reg("hi", n).unwrap();
            let out = sim.run().unwrap();
            assert_eq!(
                (out.read_reg("pa").unwrap(), out.read_reg("pb").unwrap()),
                expect,
                "cores={cores} seed={seed}"
            );
        }
    }
}

fn tpal_sim_config(cores: usize) -> tpal_sim::SimConfig {
    tpal_sim::SimConfig::nautilus(cores, 300)
}
