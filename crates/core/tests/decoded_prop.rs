//! Property tests of the compiled executors: on randomly generated
//! valid programs, the decoded micro-op tier **and** the threaded-code
//! tier must reach exactly the same final state as the reference
//! interpreter ([`run_task_until`] / [`step_task`]) — same final
//! registers, same heap checksum, same cycle count, and, when the
//! program faults, the same [`MachineError`] at the same task position.
//! The generator deliberately produces division-by-zero,
//! uninitialised-register, heap-range, and stack-fault paths, and the
//! compiled tiers are driven with adversarial quantum chunkings so
//! fused micro-ops and merged threaded spans are split mid-way.

use proptest::prelude::*;

use tpal_core::isa::{BinOp, Instr, MemAddr, Operand};
use tpal_core::machine::{step_task, MachineError, RunPause, StepOutcome, Stores, TaskState};
use tpal_core::program::{Program, ProgramBuilder};
use tpal_core::tier::{ExecBackend, ExecTier};

/// Value registers `r0..r4` are initialised by the entry block; `u` is
/// never written (reads fault); `sp` holds the stack, `arr` the heap
/// base.
const VAL_REGS: usize = 5;

#[derive(Debug, Clone)]
enum GenOperand {
    Reg(usize), // VAL_REGS = u, VAL_REGS+1 = sp, VAL_REGS+2 = arr
    Int(i64),
}

#[derive(Debug, Clone)]
enum GenInstr {
    Move(usize, GenOperand),
    Op(usize, BinOp, usize, GenOperand),
    SAlloc(usize, u32),
    SFree(u32),
    Load(usize, usize, u32),
    Store(usize, u32, GenOperand),
    HLoad(usize, usize, GenOperand),
    HStore(usize, GenOperand, GenOperand),
    IfJumpFwd(usize, usize), // cond reg, forward distance selector
}

fn operand_strategy() -> impl Strategy<Value = GenOperand> {
    prop_oneof![
        (0..VAL_REGS + 3).prop_map(GenOperand::Reg),
        // Includes 0, so `div`/`mod` by an immediate zero occurs.
        (-2i64..12).prop_map(GenOperand::Int),
    ]
}

fn instr_strategy() -> impl Strategy<Value = GenInstr> {
    let vreg = 0..VAL_REGS;
    let anyreg = 0..VAL_REGS + 3;
    prop_oneof![
        (vreg.clone(), operand_strategy()).prop_map(|(d, s)| GenInstr::Move(d, s)),
        (
            vreg.clone(),
            proptest::sample::select(BinOp::all()),
            anyreg.clone(),
            operand_strategy()
        )
            .prop_map(|(d, o, l, r)| GenInstr::Op(d, o, l, r)),
        // Stack traffic: the entry block allocates 4 cells, so offsets
        // 0..6 stray out of range and `sfree` beyond the allocation
        // underflows — both are wanted fault paths.
        (0usize..2, 1u32..3).prop_map(|(s, n)| GenInstr::SAlloc(s, n)),
        (1u32..6).prop_map(GenInstr::SFree),
        (vreg.clone(), 0usize..2, 0u32..6).prop_map(|(d, b, o)| GenInstr::Load(d, b, o)),
        (0usize..2, 0u32..6, operand_strategy()).prop_map(|(b, o, s)| GenInstr::Store(b, o, s)),
        // Heap traffic: the array is 8 words; negative and large
        // offsets fault, `sp`/`u` bases type-fault.
        (vreg.clone(), 0usize..3, operand_strategy())
            .prop_map(|(d, b, o)| GenInstr::HLoad(d, b, o)),
        (0usize..3, operand_strategy(), operand_strategy())
            .prop_map(|(b, o, s)| GenInstr::HStore(b, o, s)),
        (anyreg, 0usize..4).prop_map(|(c, t)| GenInstr::IfJumpFwd(c, t)),
    ]
}

/// Builds a terminating program: an init block that allocates the stack
/// and heap and seeds `r0..r4`, then `NBLOCKS` body blocks whose jumps
/// (conditional and terminator alike) only ever target *later* blocks,
/// so every block runs at most once.
fn build_program(bodies: &[Vec<GenInstr>], jumps: &[usize], seeds: &[i64]) -> Program {
    let n = bodies.len();
    let mut b = ProgramBuilder::new();
    let vregs: Vec<_> = (0..VAL_REGS).map(|i| b.reg(&format!("r{i}"))).collect();
    let u = b.reg("u");
    let sp = b.reg("sp");
    let arr = b.reg("arr");
    let blocks: Vec<_> = (0..n).map(|i| b.label(&format!("blk{i}"))).collect();
    let done = b.label("done");
    let reg_of = |i: usize| {
        if i < VAL_REGS {
            vregs[i]
        } else if i == VAL_REGS {
            u
        } else if i == VAL_REGS + 1 {
            sp
        } else {
            arr
        }
    };
    let to_op = |o: &GenOperand| match o {
        GenOperand::Reg(i) => Operand::Reg(reg_of(*i)),
        GenOperand::Int(v) => Operand::Int(*v),
    };
    // Stack bases: sp or (type-faulting) r0.
    let base_of = |i: usize| if i == 0 { sp } else { vregs[0] };
    // Heap bases: arr, sp (type fault), or r1 (usually out of range).
    let hbase_of = |i: usize| match i {
        0 => arr,
        1 => sp,
        _ => vregs[1],
    };
    // Forward target strictly after block `i`.
    let fwd = |i: usize, sel: usize| {
        let later = n - i; // choices: blk(i+1)..blk(n-1), done
        if sel % later == later - 1 {
            done
        } else {
            blocks[i + 1 + (sel % later)]
        }
    };

    let mut init = vec![
        Instr::SNew { dst: sp },
        Instr::SAlloc { sp, n: 4 },
        Instr::HAlloc {
            dst: arr,
            size: Operand::Int(8),
        },
    ];
    for (i, &v) in seeds.iter().enumerate() {
        init.push(Instr::Move {
            dst: vregs[i],
            src: Operand::Int(v),
        });
    }
    init.push(Instr::Jump {
        target: Operand::Label(blocks[0]),
    });
    b.block("init", init);

    for (i, body) in bodies.iter().enumerate() {
        let mut instrs: Vec<Instr> = Vec::new();
        for gi in body {
            instrs.push(match gi {
                GenInstr::Move(d, s) => Instr::Move {
                    dst: vregs[*d],
                    src: to_op(s),
                },
                GenInstr::Op(d, o, l, r) => Instr::Op {
                    dst: vregs[*d],
                    op: *o,
                    lhs: reg_of(*l),
                    rhs: to_op(r),
                },
                GenInstr::SAlloc(s, n) => Instr::SAlloc {
                    sp: base_of(*s),
                    n: *n,
                },
                GenInstr::SFree(n) => Instr::SFree { sp, n: *n },
                GenInstr::Load(d, base, o) => Instr::Load {
                    dst: vregs[*d],
                    addr: MemAddr {
                        base: base_of(*base),
                        offset: *o,
                    },
                },
                GenInstr::Store(base, o, s) => Instr::Store {
                    addr: MemAddr {
                        base: base_of(*base),
                        offset: *o,
                    },
                    src: to_op(s),
                },
                GenInstr::HLoad(d, base, o) => Instr::HLoad {
                    dst: vregs[*d],
                    base: hbase_of(*base),
                    offset: to_op(o),
                },
                GenInstr::HStore(base, o, s) => Instr::HStore {
                    base: hbase_of(*base),
                    offset: to_op(o),
                    src: to_op(s),
                },
                GenInstr::IfJumpFwd(c, t) => Instr::IfJump {
                    cond: reg_of(*c),
                    target: Operand::Label(fwd(i, *t)),
                },
            });
        }
        instrs.push(Instr::Jump {
            target: Operand::Label(fwd(i, jumps[i])),
        });
        b.block(&format!("blk{i}"), instrs);
    }
    b.block("done", vec![Instr::Halt]);
    b.build().expect("structurally valid by construction")
}

/// Everything observable about one complete run.
#[derive(Debug, PartialEq)]
struct RunResult {
    outcome: Result<(), MachineError>,
    block: String,
    instr: usize,
    cycles: u64,
    regs: Vec<tpal_core::Value>,
    heap_checksum: u64,
}

fn drive(program: &Program, backend: &ExecBackend, chunks: &[u64]) -> RunResult {
    let mut task = TaskState::new(program, program.entry());
    let mut stores = Stores::new();
    let mut ci = 0usize;
    let mut guard = 0u32;
    let outcome = loop {
        guard += 1;
        assert!(guard < 100_000, "generated program failed to terminate");
        let chunk = chunks[ci % chunks.len()];
        ci += 1;
        let r = backend.run_until(program, &mut task, &mut stores, chunk, false);
        match r {
            Ok((_, RunPause::Quantum)) => continue,
            Ok((_, RunPause::PromotionReady)) => unreachable!("watch is off"),
            Ok((_, RunPause::Boundary)) => match step_task(program, &mut task, &mut stores) {
                Ok(StepOutcome::Ran) => continue,
                Ok(StepOutcome::Halted) => break Ok(()),
                Ok(other) => unreachable!("no fork/join generated: {other:?}"),
                Err(e) => break Err(e),
            },
            Err(e) => break Err(e),
        }
    };
    RunResult {
        outcome,
        block: program.label_name(task.block).to_owned(),
        instr: task.instr,
        cycles: task.cycles,
        regs: (0..program.reg_count())
            .map(|i| task.regs.read_raw(tpal_core::Reg::from_index(i)))
            .collect(),
        heap_checksum: stores.heap.checksum(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Compiled execution (decoded and threaded tiers) reaches the
    /// reference's exact final state — registers, heap, cycles, fault
    /// and fault position — regardless of how quanta slice the run
    /// (including mid-fused-op and mid-merged-span splits).
    #[test]
    fn compiled_tiers_match_reference(
        bodies in proptest::collection::vec(
            proptest::collection::vec(instr_strategy(), 0..10), 4..7),
        jumps in proptest::collection::vec(0usize..8, 7..8),
        seeds in proptest::collection::vec(-4i64..100, VAL_REGS..VAL_REGS + 1),
        chunks in proptest::collection::vec(
            proptest::sample::select(&[1u64, 2, 3, 5, 7, 64, u64::MAX][..]), 1..6),
    ) {
        let p = build_program(&bodies, &jumps, &seeds);
        let reference_backend = ExecBackend::new(&p, ExecTier::Reference);
        let reference = drive(&p, &reference_backend, &[u64::MAX]);
        for tier in [ExecTier::Decoded, ExecTier::Threaded] {
            let backend = ExecBackend::new(&p, tier);
            // Unchunked compiled run.
            let whole = drive(&p, &backend, &[u64::MAX]);
            prop_assert_eq!(&reference, &whole, "{} whole", tier);
            // Adversarially chunked compiled run (splits fused
            // micro-ops and merged spans).
            let sliced = drive(&p, &backend, &chunks);
            prop_assert_eq!(&reference, &sliced, "{} sliced", tier);
        }
        // Chunked *reference* run, for symmetry: the pause protocol
        // itself must be chunking-invariant on every executor.
        let ref_sliced = drive(&p, &reference_backend, &chunks);
        prop_assert_eq!(&reference, &ref_sliced);
    }
}
