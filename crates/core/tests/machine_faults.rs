//! Failure-injection tests: every machine error path returns its typed
//! error instead of panicking or corrupting state.

use tpal_core::asm::parse_program;
use tpal_core::machine::{Machine, MachineConfig, MachineError};

fn run(src: &str) -> Result<(), MachineError> {
    let p = parse_program(src).expect("parses");
    Machine::new(&p, MachineConfig::default()).run().map(|_| ())
}

#[test]
fn uninitialised_register_read() {
    assert!(matches!(
        run("main: x := y; halt"),
        Err(MachineError::UninitRegister { .. })
    ));
}

#[test]
fn division_by_zero() {
    assert_eq!(
        run("main: a := 1; z := 0; a := a / z; halt"),
        Err(MachineError::DivisionByZero)
    );
    assert_eq!(
        run("main: a := 1; z := 0; a := a % z; halt"),
        Err(MachineError::DivisionByZero)
    );
}

#[test]
fn jump_to_non_label() {
    assert!(matches!(
        run("main: t := 3; jump t"),
        Err(MachineError::JumpToNonLabel { got: "int" })
    ));
}

#[test]
fn type_errors_on_stack_ops() {
    assert!(matches!(
        run("main: sp := 1; salloc sp, 2; halt"),
        Err(MachineError::TypeError {
            expected: "stack pointer",
            ..
        })
    ));
    assert!(matches!(
        run("main: sp := snew; x := sp + 1; x := x * 2; halt"),
        Err(MachineError::UnsupportedOperands { .. })
    ));
}

#[test]
fn stack_bounds() {
    assert!(matches!(
        run("main: sp := snew; x := mem[sp + 0]; halt"),
        Err(MachineError::StackOutOfRange { .. })
    ));
    assert!(matches!(
        run("main: sp := snew; salloc sp, 1; sfree sp, 2; halt"),
        Err(MachineError::StackUnderflow)
    ));
}

#[test]
fn mark_misuse() {
    assert!(matches!(
        run("main: sp := snew; salloc sp, 1; prmpop mem[sp + 0]; halt"),
        Err(MachineError::NotAMark)
    ));
    assert!(matches!(
        run("main: sp := snew; salloc sp, 1; prmsplit sp, t; halt"),
        Err(MachineError::NoMark)
    ));
}

#[test]
fn heap_bounds() {
    assert!(matches!(
        run("main: a := 0; x := heap[a + 0]; halt"),
        Err(MachineError::HeapOutOfRange { addr: 0 })
    ));
    assert!(matches!(
        run("main: a := halloc 2; x := heap[a + 2]; halt"),
        Err(MachineError::HeapOutOfRange { .. })
    ));
    assert!(matches!(
        run("main: n := -1; a := halloc n; halt"),
        Err(MachineError::HeapOutOfRange { .. })
    ));
}

#[test]
fn join_without_fork() {
    let src = r#"
main: [.]
    jr := jralloc k
    join jr
k: [jtppt assoc-comm; {}; c]
    halt
c: [.]
    join jr
"#;
    assert_eq!(run(src), Err(MachineError::JoinWithoutFork));
}

#[test]
fn fork_on_non_join_value() {
    let src = r#"
main: [.]
    jr := 7
    fork jr, other
    halt
other: [.]
    halt
"#;
    assert!(matches!(
        run(src),
        Err(MachineError::TypeError {
            expected: "join record",
            ..
        })
    ));
}

#[test]
fn deadlock_when_all_tasks_stash() {
    // Fork a pair where both sides stash-join on a record whose merge
    // continues into another join with no partner: the comb task joins
    // at the root, completing the record, then halts — so build instead
    // a task set that drains without halting: child and parent both join
    // and the comb path jumps back to a join-less halt... Simplest
    // genuine drain: the root continuation block ends with `join` again
    // after the record completed, which is JoinWithoutFork; a clean
    // deadlock needs tasks that never halt. Use fork where the merged
    // continuation just re-joins a *fresh* unforked record: that is also
    // JoinWithoutFork. True all-dead drains are impossible for valid
    // join protocols, so assert the executor reports *something* typed
    // rather than hanging.
    let src = r#"
main: [.]
    jr := jralloc k
    fork jr, side
    join jr
side: [.]
    join jr
k: [jtppt assoc-comm; {}; c]
    jr2 := jralloc k2
    join jr2
k2: [jtppt assoc-comm; {}; c]
    halt
c: [.]
    join jr
"#;
    assert!(run(src).is_err());
}

#[test]
fn step_limit_is_a_typed_error() {
    let p = parse_program("spin: jump spin").unwrap();
    let mut m = Machine::new(
        &p,
        MachineConfig {
            step_limit: 10_000,
            ..MachineConfig::default()
        },
    );
    assert!(matches!(
        m.run(),
        Err(MachineError::StepLimitExceeded { limit: 10_000 })
    ));
}

#[test]
fn unknown_register_name_in_api() {
    let p = parse_program("main: x := 1; halt").unwrap();
    let mut m = Machine::new(&p, MachineConfig::default());
    assert!(matches!(
        m.set_reg("absent", 0),
        Err(MachineError::UnknownName)
    ));
}

#[test]
fn errors_display_readably() {
    for (src, needle) in [
        ("main: x := y; halt", "before initialisation"),
        ("main: a := 1; z := 0; a := a / z; halt", "division by zero"),
        ("main: t := 3; jump t", "jump to a int"),
    ] {
        let err = run(src).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
    }
}
