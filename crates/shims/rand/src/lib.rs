//! Offline shim for `rand`, exposing the subset of the 0.8 API the
//! workspace uses (`StdRng::seed_from_u64` + `Rng::gen_range`).
//!
//! The build environment has no registry access, so input generators are
//! backed by a deterministic SplitMix64/xoshiro-style generator instead
//! of the real `rand` crate. All users seed explicitly via
//! [`SeedableRng::seed_from_u64`], so determinism per seed — the only
//! property the workloads rely on — is preserved. The streams differ
//! from upstream `rand`, which is fine: generated inputs only need to be
//! reproducible, not bit-identical to some external reference.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniformly random value of a sampleable type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a "standard" uniform distribution (shim of
/// `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample (shim of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

#[inline]
fn below<R: RngCore>(rng: &mut R, n: u128) -> u128 {
    debug_assert!(n > 0, "empty sample range");
    // Modulo bias is negligible for the small ranges the workloads use
    // (all far below 2^64), and determinism is what matters here.
    ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % n
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample_standard(rng); // [0, 1)
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = f64::sample_standard(rng) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: SplitMix64 (deterministic, fast,
    /// well distributed — not cryptographic, exactly like the name
    /// promises nothing about).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = r.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&x));
            let y = r.gen_range(0usize..13);
            assert!(y < 13);
            let z = r.gen_range(5i64..=60);
            assert!((5..=60).contains(&z));
        }
    }

    #[test]
    fn full_span_reached() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 9];
        for _ in 0..500 {
            seen[(r.gen_range(-4i64..=4) + 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
