//! Offline shim for `criterion`: a small wall-clock benchmark harness
//! exposing the API subset this workspace's benches use.
//!
//! The registry is unreachable in this build environment, so this crate
//! stands in for the real `criterion`. It measures for real — warm-up,
//! then timed samples, reporting the median ns/iteration and derived
//! throughput — it just skips the statistical machinery (outlier
//! classification, regression detection, HTML reports).

use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimizer from deleting the
/// computation that produced it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim uses one
/// input per routine call regardless, which is the semantics every
/// caller here relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: batch many per sample.
    SmallInput,
    /// Large input: few per sample.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the time budget shared by the samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration run before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepts CLI configuration in real criterion; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }

    /// Benchmarks `f` directly under `id` (ungrouped).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
        self
    }

    /// Prints the final summary line, mirroring criterion's exit hook.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Declares the units of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its report line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Calibration: grow the per-sample iteration count until one
        // sample takes a meaningful slice of the warm-up budget.
        let floor = (self.warm_up_time / 20).max(Duration::from_micros(200));
        loop {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            if b.elapsed >= floor || b.iters >= u64::MAX / 2 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (floor.as_nanos() / b.elapsed.as_nanos().max(1) + 1).min(16) as u64
            };
            b.iters = b.iters.saturating_mul(grow.max(2));
        }

        // Timed samples; keep the median.
        let budget = self.measurement_time;
        let samples = self.sample_size;
        let started = Instant::now();
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
            if started.elapsed() > budget {
                break;
            }
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];

        let full = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>10}/s", si(n as f64 * 1e9 / median, "elem"))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10}/s", si(n as f64 * 1e9 / median, "B"))
            }
            None => String::new(),
        };
        println!("bench {full:<44} {:>12}/iter{thr}", ns(median));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} µs", v / 1e3)
    } else {
        format!("{v:.1} ns")
    }
}

fn si(v: f64, unit: &str) -> String {
    if v >= 1e9 {
        format!("{:.2} G{unit}", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M{unit}", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K{unit}", v / 1e3)
    } else {
        format!("{v:.1} {unit}")
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    /// Like [`Bencher::iter_batched`] but passes the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran += 1;
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        });
        g.finish();
        assert!(ran >= 2, "calibration + samples should call the closure");
    }
}
