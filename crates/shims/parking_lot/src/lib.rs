//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the handful of `parking_lot` types the runtimes use are
//! re-implemented here over the standard library. Semantics match the
//! subset of the real crate's API that the workspace exercises:
//!
//! * [`Mutex::lock`] returns a guard directly (poisoning is swallowed —
//!   a panicking lock holder does not poison the data, exactly like
//!   `parking_lot`).
//! * [`Condvar::wait`] / [`Condvar::wait_for`] take `&mut MutexGuard`
//!   instead of consuming the guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive, `parking_lot`-flavoured: `lock` cannot
/// fail and never observes poisoning.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so that `Condvar::wait` can temporarily take the std
    // guard by value; invariant: `Some` outside of `Condvar` calls.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable over [`Mutex`] guards.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = match self.inner.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(result)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (lock, cv) = &*pair;
        let mut done = lock.lock();
        while !*done {
            cv.wait_for(&mut done, Duration::from_millis(50));
        }
        h.join().unwrap();
        assert!(*done);
    }
}
