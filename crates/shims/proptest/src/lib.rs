//! Offline shim for `proptest`: a compact property-testing framework
//! implementing the API subset this workspace's tests use.
//!
//! The registry is unreachable in this build environment, so this crate
//! replaces the real `proptest`. It generates random values through the
//! same [`Strategy`] combinator vocabulary (`prop_map`,
//! `prop_recursive`, `prop_oneof!`, `collection::vec`,
//! `sample::select`, ranges, tuples, `Just`, `any`) and runs each
//! property over a configurable number of deterministic cases. What it
//! deliberately omits is shrinking: a failing case is reported with its
//! case number so it can be replayed (generation is a pure function of
//! the fixed seed and case order), but it is not minimised.

use std::fmt;
use std::rc::Rc;

/// Deterministic generator state (SplitMix64) used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The fixed-seed generator every `proptest!` block starts from, so
    /// failures are replayable run to run.
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0xC0FF_EE11_D00D_F00D,
        }
    }

    /// A generator with an explicit seed.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A recipe for generating values of one type.
pub trait Strategy: 'static {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
    where
        Self: Sized,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| f(s.generate(rng)))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `f` wraps an
    /// inner strategy into one more level, up to `depth` levels.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let leaf = base.clone();
            let deeper = f(current.clone()).boxed();
            current = BoxedStrategy::new(move |rng| {
                // Recurse half the time, so expected depth stays small
                // while full depth remains reachable.
                if rng.below(2) == 0 {
                    leaf.generate(rng)
                } else {
                    deeper.generate(rng)
                }
            });
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy::new(move |rng| s.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wraps a generation function.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
        BoxedStrategy { gen: Rc::new(f) }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy of all values of `T`.
pub fn any<T: Arbitrary + 'static>() -> BoxedStrategy<T> {
    BoxedStrategy::new(|rng| T::arbitrary(rng))
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Weighted union of type-erased strategies; the backing of
/// [`prop_oneof!`].
pub fn union<T: 'static>(arms: Vec<(u32, BoxedStrategy<T>)>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    BoxedStrategy::new(move |rng| {
        let mut pick = rng.below(total);
        for (w, s) in &arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting")
    })
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// `Vec` strategy with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy {
            element,
            lo: size.start,
            hi: size.end,
        }
    }

    /// Strategy for vectors of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                lo: self.lo,
                hi: self.hi,
            }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::{BoxedStrategy, TestRng};

    /// Uniformly selects one element of `items`.
    pub fn select<T, S>(items: S) -> BoxedStrategy<T>
    where
        T: Clone + 'static,
        S: AsRef<[T]>,
    {
        let owned: Vec<T> = items.as_ref().to_vec();
        assert!(!owned.is_empty(), "select over an empty slice");
        BoxedStrategy::new(move |rng: &mut TestRng| {
            owned[rng.below(owned.len() as u64) as usize].clone()
        })
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; these shim-driven suites run whole
        // simulations per case, so a leaner default keeps `cargo test`
        // fast. Blocks that need more ask via `with_cases`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion, carried out of the test body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a test file conventionally imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Weighted or uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::union(vec![
            $( ($weight as u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![
            $( (1u32, $crate::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Asserts inside a property body; failure aborts only this case's body
/// with a report, like the real macro (minus shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed: `{:?}` != `{:?}` {}",
                left,
                right,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed: both `{:?}` {}",
                left,
                format!($($fmt)*)
            )));
        }
    }};
}

/// Declares property test functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    fn tree_strategy() -> BoxedStrategy<Tree> {
        let leaf = (-10i64..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 3usize..9, z in 1u32..=4) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((3..9).contains(&y), "y = {}", y);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0i64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len = {}", v.len());
            for x in v {
                prop_assert!((0..5).contains(&x));
            }
        }

        #[test]
        fn select_only_yields_members(c in crate::sample::select(&["a", "b", "c"][..])) {
            prop_assert!(["a", "b", "c"].contains(&c));
        }

        #[test]
        fn oneof_weights_and_just(op in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(op == 1 || op == 2);
        }

        #[test]
        fn recursion_is_bounded(t in tree_strategy()) {
            prop_assert!(depth(&t) <= 4, "depth = {}", depth(&t));
        }

        #[test]
        fn tuples_and_any(pair in (any::<u16>(), -3i64..3)) {
            let (_a, b) = pair;
            prop_assert!((-3..3).contains(&b));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let s = tree_strategy();
        let mut r1 = crate::TestRng::deterministic();
        let mut r2 = crate::TestRng::deterministic();
        use crate::Strategy;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(unused)]
            fn always_fails(x in 0i64..10) {
                prop_assert!(x < 0, "x = {}", x);
            }
        }
        always_fails();
    }
}
