//! Contention stress for the lock-free MPMC injector: N producers × M
//! consumers with seeded random yields, asserting no element is lost or
//! delivered twice. (Loom is unavailable offline, so this is the seeded
//! stress harness the ISSUE allows; it runs in CI un-ignored.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tpal_deque::Injector;

/// SplitMix64 step, for cheap deterministic per-thread jitter.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn run_stress(producers: usize, consumers: usize, per_producer: usize, seed: u64) {
    let q = Arc::new(Injector::<u64>::new());
    let done_producing = Arc::new(AtomicBool::new(false));
    // One bit per element; a double-delivery trips the second set.
    let total = producers * per_producer;
    let seen: Arc<Vec<AtomicU64>> =
        Arc::new((0..total.div_ceil(64)).map(|_| AtomicU64::new(0)).collect());
    let received = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for p in 0..producers {
        let q = Arc::clone(&q);
        handles.push(std::thread::spawn(move || {
            let mut rng = seed ^ (p as u64).wrapping_mul(0xA076_1D64_78BD_642F);
            for i in 0..per_producer {
                q.push((p * per_producer + i) as u64);
                if next(&mut rng).is_multiple_of(13) {
                    std::thread::yield_now();
                }
            }
        }));
    }
    let mut consumers_h = Vec::new();
    for c in 0..consumers {
        let q = Arc::clone(&q);
        let done = Arc::clone(&done_producing);
        let seen = Arc::clone(&seen);
        let received = Arc::clone(&received);
        consumers_h.push(std::thread::spawn(move || {
            let mut rng = seed ^ (c as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB) ^ 1;
            loop {
                match q.pop() {
                    Some(v) => {
                        let (word, bit) = ((v / 64) as usize, v % 64);
                        let old = seen[word].fetch_or(1 << bit, Ordering::Relaxed);
                        assert_eq!(old & (1 << bit), 0, "element {v} delivered twice");
                        received.fetch_add(1, Ordering::Relaxed);
                        if next(&mut rng).is_multiple_of(17) {
                            std::thread::yield_now();
                        }
                    }
                    None => {
                        if done.load(Ordering::Acquire) && q.pop().is_none() && q.is_empty() {
                            // Producers finished and the queue stayed
                            // empty across a re-probe: drained.
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    done_producing.store(true, Ordering::Release);
    for h in consumers_h {
        h.join().unwrap();
    }
    assert_eq!(
        received.load(Ordering::Relaxed),
        total as u64,
        "every pushed element is delivered exactly once"
    );
    assert!(q.is_empty());
}

#[test]
fn mpmc_2x2() {
    run_stress(2, 2, 20_000, 0xDEC0DE);
}

#[test]
fn mpmc_4x4() {
    run_stress(4, 4, 10_000, 0xFEED);
}

#[test]
fn mpmc_many_producers_one_consumer() {
    run_stress(6, 1, 8_000, 0xBEEF);
}

#[test]
fn mpmc_one_producer_many_consumers() {
    run_stress(1, 6, 40_000, 0xCAFE);
}
