//! Differential property tests: the lock-free deque must agree with the
//! mutex-protected oracle on every single-threaded operation sequence.

use proptest::prelude::*;
use tpal_deque::mutex_deque::mutex_deque;
use tpal_deque::{deque, Steal};

#[derive(Debug, Clone)]
enum Op {
    Push(u16),
    Pop,
    Steal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u16>().prop_map(Op::Push),
        2 => Just(Op::Pop),
        2 => Just(Op::Steal),
    ]
}

proptest! {
    #[test]
    fn lockfree_matches_oracle(ops in proptest::collection::vec(op_strategy(), 0..400)) {
        let (w, s) = deque::<u16>();
        let (ow, os) = mutex_deque::<u16>();
        for op in ops {
            match op {
                Op::Push(v) => {
                    w.push(v);
                    ow.push(v);
                }
                Op::Pop => {
                    prop_assert_eq!(w.pop(), ow.pop());
                }
                Op::Steal => {
                    // Single-threaded: Retry is impossible.
                    let a = match s.steal() {
                        Steal::Success(v) => Some(v),
                        Steal::Empty => None,
                        Steal::Retry => unreachable!("retry without contention"),
                    };
                    let b = os.steal().success();
                    prop_assert_eq!(a, b);
                }
            }
            prop_assert_eq!(w.len(), ow.len());
        }
        // Drain and compare the final contents.
        loop {
            let (a, b) = (w.pop(), ow.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
