//! Concurrency stress tests for the Chase–Lev deque.
//!
//! These tests check the two properties the runtimes rely on: no task is
//! lost, and no task is delivered twice — under concurrent push/pop/steal
//! traffic, including buffer growth.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use tpal_deque::{deque, Steal};

#[test]
fn concurrent_steal_no_loss_no_dup() {
    const N: usize = 100_000;
    const THIEVES: usize = 4;

    let (w, s) = deque::<usize>();
    let seen: Arc<Vec<AtomicUsize>> = Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..THIEVES {
            let s = s.clone();
            let seen = Arc::clone(&seen);
            let done = Arc::clone(&done);
            scope.spawn(move || loop {
                match s.steal() {
                    Steal::Success(v) => {
                        seen[v].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) && s.is_empty() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                    Steal::Retry => std::hint::spin_loop(),
                }
            });
        }

        // Owner: interleave pushes and occasional pops.
        let mut pushed = 0usize;
        while pushed < N {
            w.push(pushed);
            pushed += 1;
            if pushed.is_multiple_of(7) {
                if let Some(v) = w.pop() {
                    seen[v].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        while let Some(v) = w.pop() {
            seen[v].fetch_add(1, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
    });

    for (i, c) in seen.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "element {i} delivered {} times",
            c.load(Ordering::Relaxed)
        );
    }
}

#[test]
fn concurrent_growth_under_steals() {
    // Push far beyond the initial capacity while thieves are active so the
    // grow path races with steals.
    const N: usize = 50_000;
    let (w, s) = deque::<usize>();
    let total = Arc::new(AtomicUsize::new(0));
    let sum = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        for _ in 0..2 {
            let s = s.clone();
            let total = Arc::clone(&total);
            let sum = Arc::clone(&sum);
            let done = Arc::clone(&done);
            scope.spawn(move || loop {
                match s.steal() {
                    Steal::Success(v) => {
                        total.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) && s.is_empty() {
                            break;
                        }
                    }
                    Steal::Retry => {}
                }
            });
        }
        for i in 0..N {
            w.push(i);
        }
        while let Some(v) = w.pop() {
            total.fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(v, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
    });

    assert_eq!(total.load(Ordering::Relaxed), N);
    assert_eq!(sum.load(Ordering::Relaxed), N * (N - 1) / 2);
}

#[test]
fn boxed_payloads_are_not_double_freed() {
    // Heap payloads under racing pop/steal would crash or corrupt on a
    // double-free; run enough rounds to make races likely.
    for _ in 0..50 {
        let (w, s) = deque::<Box<usize>>();
        let got = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            let got2 = Arc::clone(&got);
            let s = s.clone();
            scope.spawn(move || {
                while got2.load(Ordering::Relaxed) < 1000 {
                    if let Steal::Success(b) = s.steal() {
                        assert!(*b < 1000);
                        got2.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            for i in 0..1000 {
                w.push(Box::new(i));
                if let Some(b) = w.pop() {
                    assert!(*b < 1000);
                    got.fetch_add(1, Ordering::Relaxed);
                }
            }
            while got.load(Ordering::Relaxed) < 1000 {
                if let Some(b) = w.pop() {
                    assert!(*b < 1000);
                    got.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(got.load(Ordering::Relaxed), 1000);
    }
}
