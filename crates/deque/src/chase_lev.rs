//! The Chase–Lev lock-free work-stealing deque.
//!
//! The owner thread pushes and pops at the *bottom* of the deque; any number
//! of thief threads steal from the *top*. The implementation follows the
//! dynamic circular deque of Chase & Lev (SPAA 2005) with the relaxed
//! memory orderings proved correct for C11 by Lê, Pop, Cohen & Zappa
//! Nardelli (PPoPP 2013). The buffer grows geometrically; retired buffers
//! are kept alive until the deque itself is dropped, which sidesteps the
//! memory-reclamation race without an epoch scheme (the total retired
//! memory is bounded by twice the high-water mark).

use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};
use std::sync::{Arc, Mutex};

/// The result of a [`Stealer::steal`] attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// The steal lost a race with the owner or another thief; retrying
    /// immediately may succeed.
    Retry,
    /// A task was stolen.
    Success(T),
}

impl<T> Steal<T> {
    /// Returns the stolen value, or `None` for both [`Steal::Empty`] and
    /// [`Steal::Retry`].
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// Returns `true` if the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// A fixed-capacity circular buffer of `T`, indexed by unbounded isize
/// positions (wrapped with a power-of-two mask).
struct Buffer<T> {
    /// Power-of-two capacity.
    cap: usize,
    /// Storage; `cap` slots.
    data: *mut MaybeUninit<T>,
}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Buffer<T>> {
        debug_assert!(cap.is_power_of_two());
        let mut v: Vec<MaybeUninit<T>> = Vec::with_capacity(cap);
        // SAFETY: MaybeUninit requires no initialization.
        unsafe { v.set_len(cap) };
        let data = Box::into_raw(v.into_boxed_slice()) as *mut MaybeUninit<T>;
        Box::new(Buffer { cap, data })
    }

    #[inline]
    fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        let i = (index as usize) & (self.cap - 1);
        // SAFETY: i < cap by masking.
        unsafe { self.data.add(i) }
    }

    /// Reads the value at `index` (a bitwise copy; the logical owner of the
    /// value is determined by the deque protocol).
    #[inline]
    unsafe fn read(&self, index: isize) -> T {
        self.slot(index).read().assume_init()
    }

    /// Writes `value` at `index` without dropping any previous content.
    #[inline]
    unsafe fn write(&self, index: isize, value: T) {
        self.slot(index).write(MaybeUninit::new(value));
    }
}

impl<T> Drop for Buffer<T> {
    fn drop(&mut self) {
        // Reconstruct the boxed slice; elements are MaybeUninit so no T is
        // dropped here (the Inner drop handles live elements explicitly).
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.data, self.cap,
            )));
        }
    }
}

/// State shared by the owner and the thieves.
struct Inner<T> {
    /// Index one past the most recently pushed element (owner side).
    bottom: AtomicIsize,
    /// Index of the oldest element (thief side).
    top: AtomicIsize,
    /// Current buffer.
    buffer: AtomicPtr<Buffer<T>>,
    /// Buffers replaced by growth, kept alive until drop so in-flight
    /// thieves can still read from them safely.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: the protocol transfers each T exactly once between threads.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        let buf = self.buffer.load(Ordering::Relaxed);
        unsafe {
            let mut i = t;
            while i < b {
                drop((*buf).read(i));
                i += 1;
            }
            drop(Box::from_raw(buf));
        }
        for p in self
            .retired
            .lock()
            .expect("retired lock poisoned")
            .drain(..)
        {
            unsafe { drop(Box::from_raw(p)) };
        }
    }
}

/// The owner-side handle: push and pop at the bottom of the deque.
///
/// `Worker` is `Send` but deliberately not `Sync` / not `Clone`; exactly one
/// thread may own it at a time.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<*mut ()>,
}

// SAFETY: moving the single owner handle to another thread is fine.
unsafe impl<T: Send> Send for Worker<T> {}

/// A thief-side handle: steal from the top of the deque. Cloneable and
/// shareable across threads.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer")
            .field("len", &self.inner.len_estimate())
            .finish()
    }
}

const MIN_CAP: usize = 64;

/// Creates a new empty deque, returning the owner handle and a stealer.
///
/// Additional stealers are obtained by cloning the returned [`Stealer`].
pub fn deque<T>() -> (Worker<T>, Stealer<T>) {
    let buf = Box::into_raw(Buffer::alloc(MIN_CAP));
    let inner = Arc::new(Inner {
        bottom: AtomicIsize::new(0),
        top: AtomicIsize::new(0),
        buffer: AtomicPtr::new(buf),
        retired: Mutex::new(Vec::new()),
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Stealer { inner },
    )
}

impl<T> Inner<T> {
    fn len_estimate(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }
}

impl<T> Worker<T> {
    /// Pushes a task at the bottom of the deque.
    pub fn push(&self, value: T) {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        let mut buf = inner.buffer.load(Ordering::Relaxed);

        // SAFETY: only the owner mutates `buffer` and `bottom`.
        unsafe {
            if b - t >= (*buf).cap as isize {
                buf = self.grow(b, t, buf);
            }
            (*buf).write(b, value);
        }
        fence(Ordering::Release);
        inner.bottom.store(b + 1, Ordering::Relaxed);
    }

    /// Doubles the buffer, copying live elements. Returns the new buffer.
    ///
    /// The old buffer is retired rather than freed: a concurrent thief may
    /// still read a slot from it. Retired buffers are freed when the deque
    /// is dropped.
    unsafe fn grow(&self, b: isize, t: isize, old: *mut Buffer<T>) -> *mut Buffer<T> {
        let new = Box::into_raw(Buffer::alloc((*old).cap * 2));
        let mut i = t;
        while i < b {
            std::ptr::copy_nonoverlapping((*old).slot(i), (*new).slot(i), 1);
            i += 1;
        }
        self.inner
            .retired
            .lock()
            .expect("retired lock poisoned")
            .push(old);
        self.inner.buffer.store(new, Ordering::Release);
        new
    }

    /// Pops a task from the bottom of the deque (LIFO), or returns `None`
    /// if the deque is empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        let buf = inner.buffer.load(Ordering::Relaxed);
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty.
            // SAFETY: slot b was published by a previous push on this thread.
            let value = unsafe { (*buf).read(b) };
            if t == b {
                // Last element: race with thieves via CAS on top.
                let won = inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                inner.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(value)
                } else {
                    // A thief took it; our bitwise copy must not be dropped.
                    std::mem::forget(value);
                    None
                }
            } else {
                Some(value)
            }
        } else {
            // Empty: restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Returns the number of tasks currently in the deque. Exact from the
    /// owner's perspective (thieves may remove concurrently).
    pub fn len(&self) -> usize {
        self.inner.len_estimate()
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates another stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal the oldest task from the top of the deque.
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);

        if t < b {
            let buf = inner.buffer.load(Ordering::Acquire);
            // SAFETY: t < b means slot t was published; the buffer pointer
            // read here is either current or retired-but-alive.
            let value = unsafe { (*buf).read(t) };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(value)
            } else {
                std::mem::forget(value);
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Steals, retrying internally while the deque reports [`Steal::Retry`].
    /// Returns `None` only when the deque is observed empty.
    pub fn steal_until_empty(&self) -> Option<T> {
        loop {
            match self.steal() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }

    /// Approximate number of tasks in the deque.
    pub fn len(&self) -> usize {
        self.inner.len_estimate()
    }

    /// Returns `true` if the deque appears empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo() {
        let (w, _s) = deque::<i32>();
        for i in 0..10 {
            w.push(i);
        }
        for i in (0..10).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let (w, s) = deque::<i32>();
        for i in 0..10 {
            w.push(i);
        }
        for i in 0..10 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        assert!(s.steal().is_empty());
    }

    #[test]
    fn mixed_ends() {
        let (w, s) = deque::<i32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn growth_preserves_order() {
        let (w, s) = deque::<usize>();
        let n = 10 * MIN_CAP;
        for i in 0..n {
            w.push(i);
        }
        assert_eq!(w.len(), n);
        for i in 0..n {
            assert_eq!(s.steal(), Steal::Success(i));
        }
    }

    #[test]
    fn growth_after_consumption_wraps() {
        let (w, s) = deque::<usize>();
        // Advance top so indices wrap within the buffer.
        for round in 0..5 {
            for i in 0..MIN_CAP - 1 {
                w.push(round * 1000 + i);
            }
            for i in 0..MIN_CAP - 1 {
                assert_eq!(s.steal(), Steal::Success(round * 1000 + i));
            }
        }
        // Now force growth from a wrapped position.
        for i in 0..4 * MIN_CAP {
            w.push(i);
        }
        for i in (0..4 * MIN_CAP).rev() {
            assert_eq!(w.pop(), Some(i));
        }
    }

    #[test]
    fn drop_releases_remaining_elements() {
        // Box<i32> would leak visibly under a leak checker if Drop were
        // wrong; also assert via a counting type.
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let (w, s) = deque::<D>();
            for _ in 0..100 {
                w.push(D);
            }
            drop(s.steal()); // one stolen and dropped
            drop(w.pop()); // one popped and dropped
            drop(w);
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn stealer_len_tracks() {
        let (w, s) = deque::<u8>();
        assert!(s.is_empty());
        w.push(0);
        assert_eq!(s.len(), 1);
        w.pop();
        assert!(w.is_empty());
    }

    #[test]
    fn steal_success_helper() {
        let (w, s) = deque::<u8>();
        w.push(9);
        assert_eq!(s.steal().success(), Some(9));
        assert_eq!(s.steal().success(), None);
    }
}
