//! A mutex-protected deque with the same interface as [`crate::chase_lev`].
//!
//! This implementation is trivially correct and serves as the oracle in
//! differential and stress tests of the lock-free deque. It is also useful
//! for debugging runtime issues with the lock-free implementation ruled out.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::Steal;

/// Owner-side handle of the mutex deque.
#[derive(Debug)]
pub struct MutexWorker<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

/// Thief-side handle of the mutex deque.
#[derive(Debug)]
pub struct MutexStealer<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for MutexStealer<T> {
    fn clone(&self) -> Self {
        MutexStealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// Creates a new empty mutex-protected deque.
pub fn mutex_deque<T>() -> (MutexWorker<T>, MutexStealer<T>) {
    let inner = Arc::new(Mutex::new(VecDeque::new()));
    (
        MutexWorker {
            inner: Arc::clone(&inner),
        },
        MutexStealer { inner },
    )
}

impl<T> MutexWorker<T> {
    /// Pushes a task at the bottom.
    pub fn push(&self, value: T) {
        self.inner
            .lock()
            .expect("deque lock poisoned")
            .push_back(value);
    }

    /// Pops a task from the bottom (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.inner.lock().expect("deque lock poisoned").pop_back()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque lock poisoned").len()
    }

    /// Returns `true` if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Creates another stealer handle.
    pub fn stealer(&self) -> MutexStealer<T> {
        MutexStealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> MutexStealer<T> {
    /// Steals the oldest task from the top (FIFO).
    pub fn steal(&self) -> Steal<T> {
        match self.inner.lock().expect("deque lock poisoned").pop_front() {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("deque lock poisoned").len()
    }

    /// Returns `true` if no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_lockfree_semantics() {
        let (w, s) = mutex_deque::<i32>();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn len_and_empty() {
        let (w, s) = mutex_deque::<i32>();
        assert!(w.is_empty() && s.is_empty());
        w.push(1);
        assert_eq!(w.len(), 1);
        assert_eq!(s.len(), 1);
    }
}
