//! A lock-free segmented MPMC injector queue.
//!
//! The runtimes' global injector takes *external* submissions (root jobs
//! pushed from threads outside the pool) and hands them to whichever
//! worker asks first. The original implementation was a
//! `Mutex<VecDeque>`, which puts one contended lock on the idle-worker
//! hot path (every `find_job` probes the injector between the local pop
//! and the steal sweep). This module replaces it with a segmented
//! array-based MPMC queue in the style of `crossbeam`'s `SegQueue`
//! (Vyukov-lineage): a singly linked chain of fixed-size blocks, two
//! cache-padded monotone indices (`head` for consumers, `tail` for
//! producers), and per-slot state flags.
//!
//! Steady-state operations are lock-free: a push is one CAS on `tail`
//! plus a slot write and a release flag store; a pop is one CAS on
//! `head` plus a flag check and a slot read. Block transitions
//! (allocating the next block once per [`BLOCK_CAP`] pushes) happen on
//! the producer that claims the last slot of a block, serialized by the
//! same index CAS — no lock anywhere.
//!
//! # Memory reclamation
//!
//! Consumed blocks are kept alive until the queue itself is dropped —
//! the same retire-until-drop discipline the Chase–Lev deque uses for
//! grown buffers — which sidesteps the stalled-reader reclamation race
//! without an epoch scheme. The retained memory is proportional to the
//! total number of elements ever pushed (one slot each), which is fine
//! for the runtimes' injector traffic (one root job per external
//! submission); callers with unbounded lifetime traffic should recycle
//! the queue periodically.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

/// Pads and aligns a value to a cache line, so two adjacent values in a
/// struct or array cannot false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// Index positions per block *lap*: [`BLOCK_CAP`] real slots plus one
/// sentinel position marking the block transition.
const LAP: u64 = 64;
/// Real slots per block.
pub const BLOCK_CAP: usize = (LAP - 1) as usize;

/// Slot states. A slot moves `EMPTY → FULL → TAKEN` exactly once.
const SLOT_EMPTY: u32 = 0;
const SLOT_FULL: u32 = 1;
const SLOT_TAKEN: u32 = 2;

struct Slot<T> {
    state: AtomicU32,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// One fixed-size segment of the queue.
struct Block<T> {
    slots: Box<[Slot<T>]>,
    next: AtomicPtr<Block<T>>,
}

impl<T> Block<T> {
    fn alloc() -> *mut Block<T> {
        let slots = (0..BLOCK_CAP)
            .map(|_| Slot {
                state: AtomicU32::new(SLOT_EMPTY),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Box::into_raw(Box::new(Block {
            slots,
            next: AtomicPtr::new(std::ptr::null_mut()),
        }))
    }
}

/// A lock-free unbounded MPMC queue: any thread may push, any thread
/// may pop.
///
/// # Examples
///
/// ```
/// use tpal_deque::Injector;
///
/// let q = Injector::new();
/// q.push(1);
/// q.push(2);
/// assert_eq!(q.pop(), Some(1)); // FIFO
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
pub struct Injector<T> {
    /// Consumer index (monotone; offsets `% LAP == BLOCK_CAP` are
    /// sentinel positions skipped at block transitions).
    head: CachePadded<AtomicU64>,
    /// Producer index, same encoding.
    tail: CachePadded<AtomicU64>,
    /// The block containing the slot `head` points at. Only the popper
    /// that crosses a block boundary stores here; while it does, `head`
    /// rests on the sentinel and other poppers spin.
    head_block: CachePadded<AtomicPtr<Block<T>>>,
    /// The block containing the slot `tail` points at, same protocol.
    tail_block: CachePadded<AtomicPtr<Block<T>>>,
    /// The oldest block, kept for drop-time reclamation of the whole
    /// chain (blocks are never freed while the queue is live).
    first_block: *mut Block<T>,
}

// SAFETY: the slot protocol transfers each T exactly once across
// threads; indices and flags carry the synchronization.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Injector")
            .field("len", &self.len())
            .finish()
    }
}

impl<T> Injector<T> {
    /// An empty queue (the first block is allocated eagerly).
    pub fn new() -> Injector<T> {
        let first = Block::alloc();
        Injector {
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
            head_block: CachePadded(AtomicPtr::new(first)),
            tail_block: CachePadded(AtomicPtr::new(first)),
            first_block: first,
        }
    }

    /// Pushes `value` at the back of the queue. Lock-free: one index
    /// CAS plus a slot publish in the steady state; the producer that
    /// fills a block also links the next one.
    pub fn push(&self, value: T) {
        loop {
            let tail = self.tail.0.load(Ordering::Acquire);
            let offset = (tail % LAP) as usize;
            if offset == BLOCK_CAP {
                // A producer is mid-transition to the next block; its
                // two stores below land momentarily.
                std::hint::spin_loop();
                continue;
            }
            let block = self.tail_block.0.load(Ordering::Acquire);
            if self
                .tail
                .0
                .compare_exchange_weak(tail, tail + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
                continue;
            }
            // The CAS serialized us: slot `offset` of `block` is ours.
            // (`block` cannot be stale: `tail_block` only changes while
            // `tail` rests on a sentinel, and sentinels never win the
            // CAS above.)
            unsafe {
                if offset + 1 == BLOCK_CAP {
                    // We claimed the last slot: install the next block
                    // *before* publishing our value, so a consumer that
                    // sees this slot FULL can always cross the boundary.
                    let next = Block::alloc();
                    (*block).next.store(next, Ordering::Release);
                    self.tail_block.0.store(next, Ordering::Release);
                    self.tail.0.store(tail + 2, Ordering::Release);
                }
                let slot = &(*block).slots[offset];
                (*slot.value.get()).write(value);
                slot.state.store(SLOT_FULL, Ordering::Release);
            }
            return;
        }
    }

    /// Pops from the front of the queue. Returns `None` when the queue
    /// is observed empty — including the transient case where a
    /// producer has claimed a slot but not yet published its value
    /// (the producer's post-push wakeup covers that window for the
    /// runtime's sleep protocol).
    pub fn pop(&self) -> Option<T> {
        loop {
            let head = self.head.0.load(Ordering::Acquire);
            let offset = (head % LAP) as usize;
            if offset == BLOCK_CAP {
                // A popper is mid-transition to the next block.
                std::hint::spin_loop();
                continue;
            }
            let tail = self.tail.0.load(Ordering::SeqCst);
            if head >= tail {
                return None;
            }
            let block = self.head_block.0.load(Ordering::Acquire);
            // SAFETY: `block` matches `head`'s lap (it only changes
            // while `head` rests on a sentinel), and `offset` is a real
            // slot index.
            let slot = unsafe { &(*block).slots[offset] };
            if slot.state.load(Ordering::Acquire) != SLOT_FULL {
                // Claimed but unpublished (or already drained past
                // `tail` raced ahead); nothing consumable yet.
                return None;
            }
            if self
                .head
                .0
                .compare_exchange_weak(head, head + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::hint::spin_loop();
                continue;
            }
            // The CAS serialized us: the slot's value is ours.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            slot.state.store(SLOT_TAKEN, Ordering::Release);
            if offset + 1 == BLOCK_CAP {
                // We consumed the last slot of this block; its producer
                // installed `next` before publishing (see `push`), so
                // the boundary is always crossable here.
                let next = unsafe { (*block).next.load(Ordering::Acquire) };
                debug_assert!(!next.is_null(), "block published without a successor");
                self.head_block.0.store(next, Ordering::Release);
                self.head.0.store(head + 2, Ordering::Release);
            }
            return Some(value);
        }
    }

    /// An estimate of the number of queued elements (exact when the
    /// queue is quiescent; never under-reports a completed push that no
    /// pop has claimed).
    pub fn len(&self) -> usize {
        // Strip the one sentinel position per lap from each index to
        // count real slots.
        fn elems(index: u64) -> u64 {
            index - index / LAP
        }
        let tail = self.tail.0.load(Ordering::SeqCst);
        let head = self.head.0.load(Ordering::SeqCst);
        elems(tail).saturating_sub(elems(head)) as usize
    }

    /// Whether the queue appears empty. A completed, unconsumed push is
    /// always visible here — the guarantee the runtime's park-recheck
    /// relies on.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for Injector<T> {
    fn drop(&mut self) {
        // Walk the whole chain from the first block: drop any value
        // still FULL (pushed, never popped), then free every block.
        let mut block = self.first_block;
        while !block.is_null() {
            unsafe {
                for slot in (*block).slots.iter() {
                    if slot.state.load(Ordering::Relaxed) == SLOT_FULL {
                        (*slot.value.get()).assume_init_drop();
                    }
                }
                let next = (*block).next.load(Ordering::Relaxed);
                drop(Box::from_raw(block));
                block = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_and_across_blocks() {
        let q = Injector::new();
        let n = 5 * BLOCK_CAP + 7;
        for i in 0..n {
            q.push(i);
        }
        assert_eq!(q.len(), n);
        for i in 0..n {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop() {
        let q = Injector::new();
        let mut next_out = 0usize;
        for i in 0..10 * BLOCK_CAP {
            q.push(i);
            if i % 3 == 0 {
                assert_eq!(q.pop(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = q.pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 10 * BLOCK_CAP);
    }

    #[test]
    fn drop_releases_unconsumed_elements() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let q = Injector::new();
            for _ in 0..3 * BLOCK_CAP {
                q.push(D);
            }
            drop(q.pop()); // one popped and dropped
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 3 * BLOCK_CAP);
    }

    #[test]
    fn empty_estimates() {
        let q = Injector::<u8>::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        q.push(1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
