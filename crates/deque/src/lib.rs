//! Work-stealing deques for the TPAL runtimes.
//!
//! Heartbeat scheduling (Acar et al., PLDI 2018; Rainey et al., PLDI 2021)
//! is agnostic to the load-balancing algorithm, but every practical
//! implementation in the paper uses *randomized work stealing*: each worker
//! owns a double-ended queue, pushes and pops promoted tasks at the bottom,
//! and idle workers steal from the top of a random victim.
//!
//! This crate provides that substrate, built from scratch:
//!
//! * [`chase_lev`] — the lock-free Chase–Lev dynamic circular deque
//!   (Chase & Lev, SPAA 2005, with the C11 memory orderings of Lê et al.,
//!   PPoPP 2013). This is what the runtimes use.
//! * [`injector`] — a lock-free segmented MPMC queue (SegQueue-style)
//!   for external job submissions: the runtime's global injector.
//! * [`mutex_deque`] — a trivially-correct mutex-protected deque with the
//!   same interface, used as the oracle in differential and stress tests.
//!
//! # Examples
//!
//! ```
//! use tpal_deque::{deque, Steal};
//!
//! let (worker, stealer) = deque::<u32>();
//! worker.push(1);
//! worker.push(2);
//! // The owner pops LIFO...
//! assert_eq!(worker.pop(), Some(2));
//! // ...while thieves steal FIFO from the other end.
//! assert_eq!(stealer.steal(), Steal::Success(1));
//! assert_eq!(stealer.steal(), Steal::Empty);
//! ```

#![warn(missing_docs)]

pub mod chase_lev;
pub mod injector;
pub mod mutex_deque;

pub use chase_lev::{deque, Steal, Stealer, Worker};
pub use injector::{CachePadded, Injector};
