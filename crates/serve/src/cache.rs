//! The content-hash-keyed decode cache: validate + decode +
//! threaded-compile each distinct program **once**, serve every later
//! run from the compiled artifact.
//!
//! Concurrency discipline: the outer map is held only long enough to
//! clone an `Arc` slot; compilation itself runs inside the slot's
//! `OnceLock`, so N racing submitters of the same new program perform
//! exactly one parse/validate (the others block on the lock and share
//! the result). Per-tier backends compile lazily under their own
//! `OnceLock`s — a program served only on the threaded tier never pays
//! the decoded tier's compile. Failed compilations are cached too:
//! resubmitting a broken program costs a hash lookup, not a re-parse.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tpal_core::asm::parse_program;
use tpal_core::program::Program;
use tpal_core::tier::{ExecBackend, ExecTier};
use tpal_ir::{lower, parse_ir, Lowered, Mode};

use crate::spec::ProgramSrc;

/// A validated program plus its lazily compiled per-tier backends.
pub struct CachedProgram {
    hash: u64,
    compiled: Compiled,
    /// One slot per [`ExecTier::ALL`] entry, compiled on first use.
    tiers: [OnceLock<ExecBackend>; 3],
}

enum Compiled {
    /// Parsed straight from TPAL assembly.
    Asm(Program),
    /// Lowered through the IR frontend (keeps the parameter-register
    /// mapping for `--set`-style argument names).
    Ir(Lowered),
}

impl CachedProgram {
    /// The content hash this entry is keyed by.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The validated program.
    pub fn program(&self) -> &Program {
        match &self.compiled {
            Compiled::Asm(p) => p,
            Compiled::Ir(l) => &l.program,
        }
    }

    /// Maps a submitted argument name to the register it seeds: IR
    /// programs address entry parameters by bare name, assembly
    /// programs address registers directly.
    pub fn set_reg_name(&self, name: &str) -> String {
        match &self.compiled {
            Compiled::Asm(_) => name.to_owned(),
            Compiled::Ir(l) => l.param_reg(name),
        }
    }

    /// The compiled backend for `tier`, compiling it on first request
    /// (subsequent requests on any thread share the artifact).
    pub fn backend(&self, tier: ExecTier) -> &ExecBackend {
        let idx = ExecTier::ALL
            .iter()
            .position(|t| *t == tier)
            .expect("ExecTier::ALL covers every tier");
        self.tiers[idx].get_or_init(|| ExecBackend::new(self.program(), tier))
    }
}

/// One cache slot: the once-only compilation result for a content hash.
#[derive(Default)]
struct Slot {
    cell: OnceLock<Result<Arc<CachedProgram>, String>>,
}

/// The decode cache. See the module docs for the locking discipline.
pub struct ProgramCache {
    map: Mutex<HashMap<u64, Arc<Slot>>>,
    decodes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache {
            map: Mutex::new(HashMap::new()),
            decodes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `src` up by content hash, compiling it exactly once if
    /// absent. Returns the entry (or the cached compile error) and
    /// whether this call was a hit (the compilation had already
    /// completed when the call arrived).
    pub fn get_or_compile(&self, src: &ProgramSrc) -> (Result<Arc<CachedProgram>, String>, bool) {
        let hash = src.content_hash();
        let slot = {
            let mut map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(hash).or_default())
        };
        let hit = slot.cell.get().is_some();
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = slot
            .cell
            .get_or_init(|| {
                // The decode path proper: counted so tests can assert
                // each distinct program is decoded exactly once no
                // matter how many submitters race.
                self.decodes.fetch_add(1, Ordering::Relaxed);
                compile(src, hash).map(Arc::new)
            })
            .clone();
        (result, hit)
    }

    /// Fetches a previously compiled program by content hash (the
    /// replay path: the token names the program, the cache supplies
    /// it). `None` if the hash is unknown or its compilation failed.
    pub fn lookup(&self, hash: u64) -> Option<Arc<CachedProgram>> {
        let slot = {
            let map = self.map.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.get(&hash)?)
        };
        match slot.cell.get() {
            Some(Ok(entry)) => Some(Arc::clone(entry)),
            _ => None,
        }
    }

    /// Number of times the decode path actually ran (≤ distinct
    /// programs submitted; == when no compile failed).
    pub fn decode_count(&self) -> u64 {
        self.decodes.load(Ordering::Relaxed)
    }

    /// Lookups that found a completed entry.
    pub fn hit_count(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to wait for (or perform) a compilation.
    pub fn miss_count(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct content hashes resident.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ProgramCache {
    fn default() -> Self {
        ProgramCache::new()
    }
}

/// Parses the lowering-mode name accepted in requests and tokens.
pub fn parse_mode(mode: &str) -> Result<Mode, String> {
    match mode {
        "serial" => Ok(Mode::Serial),
        "heartbeat" => Ok(Mode::Heartbeat),
        "expanded" => Ok(Mode::HeartbeatExpanded),
        "eager" => Ok(Mode::Eager { workers: 15 }),
        other => Err(format!(
            "unknown mode `{other}` (serial|heartbeat|expanded|eager)"
        )),
    }
}

fn compile(src: &ProgramSrc, hash: u64) -> Result<CachedProgram, String> {
    let compiled = if src.ir {
        let ir = parse_ir(&src.source).map_err(|e| format!("ir parse: {e}"))?;
        let mode = parse_mode(&src.mode)?;
        let lowered = lower(&ir, mode).map_err(|e| format!("lowering: {e}"))?;
        Compiled::Ir(lowered)
    } else {
        let program = parse_program(&src.source).map_err(|e| format!("asm parse: {e}"))?;
        Compiled::Asm(program)
    };
    Ok(CachedProgram {
        hash,
        compiled,
        tiers: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SUM_TPL: &str = "fn main(n) {\n    s = 0;\n    parfor i in 0..n reduce(s: +, 0) { s = s + i; }\n    return s;\n}\n";

    #[test]
    fn second_submission_is_a_hit_with_one_decode() {
        let cache = ProgramCache::new();
        let src = ProgramSrc::tpl(SUM_TPL, "heartbeat");
        let (a, hit_a) = cache.get_or_compile(&src);
        let (b, hit_b) = cache.get_or_compile(&src);
        assert!(a.is_ok() && b.is_ok());
        assert!(!hit_a);
        assert!(hit_b);
        assert_eq!(cache.decode_count(), 1);
        assert!(Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
    }

    #[test]
    fn backends_compile_once_per_tier() {
        let cache = ProgramCache::new();
        let (entry, _) = cache.get_or_compile(&ProgramSrc::tpl(SUM_TPL, "heartbeat"));
        let entry = entry.unwrap();
        let a = entry.backend(ExecTier::Threaded) as *const ExecBackend;
        let b = entry.backend(ExecTier::Threaded) as *const ExecBackend;
        assert_eq!(a, b, "same compiled artifact on repeat requests");
        assert_eq!(
            entry.backend(ExecTier::Reference).tier(),
            ExecTier::Reference
        );
    }

    #[test]
    fn compile_errors_are_cached() {
        let cache = ProgramCache::new();
        let bad = ProgramSrc::asm("this is not tpal");
        let (r1, _) = cache.get_or_compile(&bad);
        let (r2, hit) = cache.get_or_compile(&bad);
        assert!(r1.is_err() && r2.is_err());
        assert!(hit, "cached failure still counts as a hit");
        assert_eq!(cache.decode_count(), 1, "broken programs parse once");
        assert!(cache.lookup(bad.content_hash()).is_none());
    }
}
