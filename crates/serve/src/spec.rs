//! Run specifications, content hashing, and deterministic replay
//! tokens.
//!
//! A submitted program is identified by the FNV-1a content hash of its
//! source text plus frontend flags (`ir`, lowering mode) — the decode
//! cache key. A *run* is a program hash plus every knob that can change
//! the outcome: substrate, ♥, policy, execution tier, seed, step limit,
//! and the argument registers. The replay token is the run spec itself,
//! canonically serialized and hex-armoured, so `GET /replay/<token>`
//! needs no server-side registry beyond the program cache: the token
//! alone names a bit-reproducible run.

use tpal_core::tier::ExecTier;
use tpal_sched::Policy;
use tpal_trace::json::{escape, parse, Json};

/// Incremental FNV-1a (64-bit) hasher — the dependency-free content
/// hash behind the decode cache and replay tokens.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// A submitted program: source text plus the frontend that turns it
/// into a validated TPAL [`tpal_core::program::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSrc {
    /// TPAL assembly (`ir == false`) or task-parallel source
    /// (`ir == true`).
    pub source: String,
    /// Whether `source` goes through the `tpal-ir` frontend.
    pub ir: bool,
    /// The lowering mode name (`serial`, `heartbeat`, `expanded`,
    /// `eager`); only meaningful with `ir == true`.
    pub mode: String,
}

impl ProgramSrc {
    /// TPAL assembly source.
    pub fn asm(source: impl Into<String>) -> ProgramSrc {
        ProgramSrc {
            source: source.into(),
            ir: false,
            mode: "heartbeat".to_owned(),
        }
    }

    /// Task-parallel (`.tpl`) source, lowered in `mode`.
    pub fn tpl(source: impl Into<String>, mode: impl Into<String>) -> ProgramSrc {
        ProgramSrc {
            source: source.into(),
            ir: true,
            mode: mode.into(),
        }
    }

    /// The content hash identifying this program in the decode cache:
    /// FNV-1a over the source bytes, the frontend flag, and (for IR
    /// programs) the lowering mode. Two submissions with identical
    /// bytes and flags share one decode.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(self.source.as_bytes());
        h.write(&[0x1f, self.ir as u8]);
        if self.ir {
            h.write(self.mode.as_bytes());
        }
        h.finish()
    }
}

/// The execution substrate of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// The deterministic multicore simulator (`tpal-sim`): bit-for-bit
    /// reproducible registers, statistics, and makespan from the spec
    /// alone.
    Sim {
        /// Simulated core count `P`.
        cores: usize,
        /// Ping-thread (Linux-like) interrupt delivery instead of
        /// per-core timers.
        linux: bool,
    },
    /// The native heartbeat runtime (`tpal-rt`): real-time heartbeats,
    /// so registers are reproducible but scheduling statistics are
    /// observational.
    Rt {
        /// Worker thread count.
        workers: usize,
    },
}

/// Everything besides the program that determines a run's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSpec {
    /// Where the run executes.
    pub substrate: Substrate,
    /// The heartbeat interval ♥ in the substrate's unit (simulator:
    /// cycles, default 3000; runtime: µs, default 100). `None` applies
    /// the substrate default.
    pub heartbeat: Option<u64>,
    /// Promotion + victim policy.
    pub policy: Policy,
    /// Interpreter tier for straight-line execution.
    pub tier: ExecTier,
    /// RNG seed (simulator victim selection and delivery jitter).
    pub seed: u64,
    /// Instruction budget before the run is aborted (simulator runs;
    /// `None` applies the service default).
    pub step_limit: Option<u64>,
    /// Argument registers, as submitted (IR parameter names are mapped
    /// to lowered register names at execution time). Kept sorted by
    /// name — [`RunSpec::canonicalize`].
    pub sets: Vec<(String, i64)>,
}

impl RunSpec {
    /// A default-config simulator run.
    pub fn sim(cores: usize) -> RunSpec {
        RunSpec {
            substrate: Substrate::Sim {
                cores,
                linux: false,
            },
            heartbeat: None,
            policy: Policy::default(),
            tier: ExecTier::default(),
            seed: 0xDEC0DE,
            step_limit: None,
            sets: Vec::new(),
        }
    }

    /// A default-config native-runtime run (the runtime's historical
    /// `heartbeat/sequence` policy).
    pub fn rt(workers: usize) -> RunSpec {
        RunSpec {
            substrate: Substrate::Rt { workers },
            policy: Policy::parse("heartbeat/sequence").expect("static policy label"),
            ..RunSpec::sim(0)
        }
    }

    /// Adds an argument register.
    pub fn set(mut self, name: impl Into<String>, value: i64) -> RunSpec {
        self.sets.push((name.into(), value));
        self
    }

    /// Sorts the argument list so equal specs serialize identically.
    pub fn canonicalize(&mut self) {
        self.sets.sort();
    }

    /// Renders the deterministic replay token for this spec against
    /// program `prog_hash`: `r1-` plus the hex-armoured canonical JSON
    /// of every outcome-determining knob. Identical (program, spec)
    /// pairs always yield identical tokens.
    pub fn token(&self, prog_hash: u64) -> String {
        let mut sets = self.sets.clone();
        sets.sort();
        let (sub, cores, linux, workers) = match self.substrate {
            Substrate::Sim { cores, linux } => ("sim", cores, linux, 0),
            Substrate::Rt { workers } => ("rt", 0, false, workers),
        };
        // Fields in fixed (alphabetical) order; integers that may
        // exceed f64's exact range travel as hex/decimal strings.
        let mut body = String::from("{");
        body.push_str(&format!("\"cores\":{cores},"));
        match self.heartbeat {
            Some(hb) => body.push_str(&format!("\"hb\":{hb},")),
            None => body.push_str("\"hb\":null,"),
        }
        body.push_str(&format!("\"linux\":{linux},"));
        body.push_str(&format!("\"policy\":\"{}\",", escape(&self.policy.label())));
        body.push_str(&format!("\"prog\":\"{prog_hash:016x}\","));
        body.push_str(&format!("\"seed\":\"{:x}\",", self.seed));
        body.push_str("\"sets\":{");
        for (i, (name, v)) in sets.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!("\"{}\":\"{v}\"", escape(name)));
        }
        body.push_str("},");
        match self.step_limit {
            Some(sl) => body.push_str(&format!("\"sl\":\"{sl}\",")),
            None => body.push_str("\"sl\":null,"),
        }
        body.push_str(&format!("\"sub\":\"{sub}\","));
        body.push_str(&format!("\"tier\":\"{}\",", self.tier.label()));
        body.push_str(&format!("\"workers\":{workers}"));
        body.push('}');
        format!("r1-{}", hex_encode(body.as_bytes()))
    }

    /// Decodes a replay token back into `(program hash, spec)`.
    ///
    /// # Errors
    ///
    /// A description of the malformation: wrong prefix, bad hex, bad
    /// JSON, or out-of-range fields.
    pub fn from_token(token: &str) -> Result<(u64, RunSpec), String> {
        let hex = token
            .strip_prefix("r1-")
            .ok_or_else(|| "replay token must start with `r1-`".to_owned())?;
        let bytes = hex_decode(hex)?;
        let body = String::from_utf8(bytes).map_err(|_| "token payload is not UTF-8".to_owned())?;
        let doc = parse(&body).map_err(|e| format!("token payload: {e}"))?;
        let str_field = |k: &str| -> Result<&str, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("token missing string field `{k}`"))
        };
        let num_field = |k: &str| -> Result<u64, String> {
            let n = doc
                .get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("token missing numeric field `{k}`"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("token field `{k}` must be a non-negative integer"));
            }
            Ok(n as u64)
        };
        let prog_hash = u64::from_str_radix(str_field("prog")?, 16)
            .map_err(|e| format!("token `prog`: {e}"))?;
        let substrate = match str_field("sub")? {
            "sim" => Substrate::Sim {
                cores: num_field("cores")?.clamp(1, 1 << 16) as usize,
                linux: doc.get("linux") == Some(&Json::Bool(true)),
            },
            "rt" => Substrate::Rt {
                workers: num_field("workers")?.clamp(1, 1 << 16) as usize,
            },
            other => return Err(format!("token substrate `{other}` unknown")),
        };
        let opt_u64 = |k: &str| -> Result<Option<u64>, String> {
            match doc.get(k) {
                None | Some(Json::Null) => Ok(None),
                Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
                Some(Json::Str(s)) => s
                    .parse::<u64>()
                    .map(Some)
                    .map_err(|e| format!("token field `{k}`: {e}")),
                Some(_) => Err(format!("token field `{k}` must be an integer or null")),
            }
        };
        let policy = Policy::parse(str_field("policy")?)?;
        let tier = ExecTier::parse(str_field("tier")?)
            .ok_or_else(|| "token names an unknown exec tier".to_owned())?;
        let seed = u64::from_str_radix(str_field("seed")?, 16)
            .map_err(|e| format!("token `seed`: {e}"))?;
        let mut sets = Vec::new();
        if let Some(Json::Obj(m)) = doc.get("sets") {
            for (name, v) in m {
                let v = v
                    .as_str()
                    .ok_or_else(|| "token set values must be strings".to_owned())?
                    .parse::<i64>()
                    .map_err(|e| format!("token set `{name}`: {e}"))?;
                sets.push((name.clone(), v));
            }
        }
        let mut spec = RunSpec {
            substrate,
            heartbeat: opt_u64("hb")?,
            policy,
            tier,
            seed,
            step_limit: opt_u64("sl")?,
            sets,
        };
        spec.canonicalize();
        Ok((prog_hash, spec))
    }
}

/// Lowercase hex armour for token payloads.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`hex_encode`].
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex payload".to_owned());
    }
    let digits: Vec<u8> = s
        .bytes()
        .map(|b| match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err(format!("bad hex byte `{}`", b as char)),
        })
        .collect::<Result<_, _>>()?;
    Ok(digits.chunks(2).map(|d| (d[0] << 4) | d[1]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        let h = |s: &str| Fnv1a::new().write(s.as_bytes()).finish();
        assert_eq!(h(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(h("a"), h("b"));
        assert_ne!(
            ProgramSrc::asm("x").content_hash(),
            ProgramSrc::tpl("x", "heartbeat").content_hash(),
            "frontend flag participates in the content hash"
        );
        assert_ne!(
            ProgramSrc::tpl("x", "serial").content_hash(),
            ProgramSrc::tpl("x", "heartbeat").content_hash(),
            "lowering mode participates in the content hash"
        );
    }

    #[test]
    fn token_round_trips() {
        let mut spec = RunSpec::sim(4).set("main.n", 1_000).set("a", -7);
        spec.heartbeat = Some(500);
        spec.seed = u64::MAX - 3; // exceeds f64's exact integer range
        spec.step_limit = Some(10_000_000_000); // exceeds 2^32
        spec.canonicalize();
        let token = spec.token(0xdead_beef_0123_4567);
        let (hash, decoded) = RunSpec::from_token(&token).unwrap();
        assert_eq!(hash, 0xdead_beef_0123_4567);
        assert_eq!(decoded, spec);
        // Determinism: same spec, same token — even with sets given in
        // a different order.
        let mut shuffled = RunSpec::sim(4).set("a", -7).set("main.n", 1_000);
        shuffled.heartbeat = Some(500);
        shuffled.seed = u64::MAX - 3;
        shuffled.step_limit = Some(10_000_000_000);
        assert_eq!(shuffled.token(0xdead_beef_0123_4567), token);
    }

    #[test]
    fn rt_token_round_trips() {
        let spec = RunSpec::rt(3).set("n", 20);
        let token = spec.token(1);
        let (hash, decoded) = RunSpec::from_token(&token).unwrap();
        assert_eq!(hash, 1);
        assert_eq!(decoded, spec);
        assert_eq!(decoded.policy.label(), "heartbeat/sequence");
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for bad in [
            "",
            "r1-",
            "r2-00",
            "r1-zz",
            "r1-7b7d",             // "{}" — missing fields
            "r1-6e6f74206a736f6e", // "not json"
        ] {
            assert!(RunSpec::from_token(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn hex_round_trips() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("g0").is_err());
    }
}
