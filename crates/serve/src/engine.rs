//! The execution engine: turns a cached program plus a [`RunSpec`] into
//! a rendered result, dispatching onto the deterministic simulator or a
//! shared native-runtime pool.
//!
//! The deterministic part of every response — registers, and on the
//! simulator also statistics and makespan — is rendered into one
//! canonical JSON string (`RunOutput::result`) so that replaying a
//! token can be checked bit-for-bit by comparing strings. Observational
//! data (native-runtime scheduling counters, wall time, traces) stays
//! in `RunOutput::extras`, outside the comparison.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tpal_core::machine::Value;
use tpal_rt::{RtConfig, Runtime};
use tpal_sim::{Sim, SimConfig};
use tpal_trace::json::escape;
use tpal_trace::{chrome, MetricsReport, WorkSpanProfile};

use crate::cache::{CachedProgram, ProgramCache};
use crate::spec::{RunSpec, Substrate};

/// The service's flag-absent simulator instruction budget. Far below
/// [`SimConfig`]'s own default: a shared service bounds tenant runs
/// aggressively, and a spec can still raise it explicitly.
pub const SERVICE_STEP_LIMIT: u64 = 200_000_000;

/// Hard caps a shared service imposes on one run, whatever the spec says.
pub const MAX_CORES: usize = 256;
/// See [`MAX_CORES`].
pub const MAX_RT_WORKERS: usize = 64;

/// How many distinct native-runtime pools stay warm. Pools are keyed by
/// (workers, ♥, policy); the cap bounds resident OS threads when many
/// tenants ask for many shapes.
const MAX_RT_POOLS: usize = 4;

/// Optional report attachments for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunInclude {
    /// Attach the Chrome `trace_event` JSON of the scheduling trace.
    pub trace: bool,
    /// Attach the TASKPROF-style work/span profile.
    pub profile: bool,
    /// Attach the per-core metrics report (rendered text).
    pub metrics: bool,
}

impl RunInclude {
    fn any(self) -> bool {
        self.trace || self.profile || self.metrics
    }
}

/// A rendered run: the deterministic result object plus observational
/// top-level extras.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Canonical JSON of the deterministic `result` object. Equal specs
    /// against equal programs yield byte-equal strings — the replay
    /// contract.
    pub result: String,
    /// Extra top-level response fields, already rendered as JSON
    /// values, excluded from replay comparison (observational).
    pub extras: Vec<(String, String)>,
}

/// How an [`Engine`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request is malformed or unsatisfiable (HTTP 400).
    Bad(String),
    /// A replay token names a program hash this server never compiled
    /// (HTTP 404): tokens carry the spec but not the source text.
    UnknownProgram(u64),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Bad(msg) => f.write_str(msg),
            EngineError::UnknownProgram(h) => {
                write!(
                    f,
                    "program {h:016x} is not in this server's cache; resubmit its source"
                )
            }
        }
    }
}

/// The shared execution engine: the decode cache plus a small set of
/// warm native-runtime pools.
pub struct Engine {
    cache: ProgramCache,
    pools: Mutex<Vec<(PoolKey, Arc<Runtime>)>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PoolKey {
    workers: usize,
    hb_us: u64,
    policy: String,
}

impl Engine {
    /// A fresh engine with an empty cache and no warm pools.
    pub fn new() -> Engine {
        Engine {
            cache: ProgramCache::new(),
            pools: Mutex::new(Vec::new()),
        }
    }

    /// The decode cache (submission path and statistics).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// Executes `spec` against a cached program, rendering the result.
    ///
    /// # Errors
    ///
    /// [`EngineError::Bad`] for unsatisfiable specs (zero or excessive
    /// parallelism, unknown argument registers, runs that fault or
    /// exceed the step budget, report attachments on the native
    /// runtime).
    pub fn execute(
        &self,
        entry: &CachedProgram,
        spec: &RunSpec,
        include: RunInclude,
    ) -> Result<RunOutput, EngineError> {
        match spec.substrate {
            Substrate::Sim { cores, linux } => self.execute_sim(entry, spec, include, cores, linux),
            Substrate::Rt { workers } => self.execute_rt(entry, spec, include, workers),
        }
    }

    /// Replays a token: decodes it, fetches the program from the cache,
    /// and re-executes the spec (no attachments — replay reproduces the
    /// deterministic result object only).
    pub fn replay(&self, token: &str) -> Result<(RunSpec, RunOutput), EngineError> {
        let (hash, spec) = RunSpec::from_token(token).map_err(EngineError::Bad)?;
        let entry = self
            .cache
            .lookup(hash)
            .ok_or(EngineError::UnknownProgram(hash))?;
        let output = self.execute(&entry, &spec, RunInclude::default())?;
        Ok((spec, output))
    }

    fn execute_sim(
        &self,
        entry: &CachedProgram,
        spec: &RunSpec,
        include: RunInclude,
        cores: usize,
        linux: bool,
    ) -> Result<RunOutput, EngineError> {
        if cores == 0 || cores > MAX_CORES {
            return Err(EngineError::Bad(format!(
                "cores must be in 1..={MAX_CORES}, got {cores}"
            )));
        }
        let heartbeat = spec.heartbeat.unwrap_or(3_000);
        let mut config = if linux {
            SimConfig::linux(cores, heartbeat)
        } else {
            SimConfig::nautilus(cores, heartbeat)
        };
        config.policy = spec.policy;
        config.exec_tier = spec.tier;
        config.seed = spec.seed;
        config.step_limit = spec.step_limit.unwrap_or(SERVICE_STEP_LIMIT);
        config.record_trace = include.any();
        // The compiled artifact is cloned per run (a memcpy of the
        // handler stream), not recompiled — the decode-once payoff.
        let backend = entry.backend(spec.tier).clone();
        let mut sim = Sim::with_backend(entry.program(), backend, config);
        for (name, value) in &spec.sets {
            let reg = entry.set_reg_name(name);
            sim.set_reg(&reg, *value)
                .map_err(|e| EngineError::Bad(format!("set {name}: {e}")))?;
        }
        let out = sim
            .run()
            .map_err(|e| EngineError::Bad(format!("simulation failed: {e}")))?;

        let mut result = String::from("{");
        result.push_str(&format!(
            "\"registers\":{},",
            render_registers(out.final_regs())
        ));
        let s = &out.stats;
        result.push_str(&format!(
            "\"stats\":{{\"failed_steals\":{},\"forks\":{},\"heartbeats_delivered\":{},\
             \"idle_cycles\":{},\"instructions\":{},\"joins\":{},\"max_live_tasks\":{},\
             \"merges\":{},\"overhead_cycles\":{},\"promotions\":{},\"steals\":{},\
             \"work_cycles\":{}}},",
            s.failed_steals,
            s.forks,
            s.heartbeats_delivered,
            s.idle_cycles,
            s.instructions,
            s.joins,
            s.max_live_tasks,
            s.merges,
            s.overhead_cycles,
            s.promotions,
            s.steals,
            s.work_cycles,
        ));
        result.push_str(&format!("\"time\":{}", out.time));
        result.push('}');

        let mut extras = Vec::new();
        if let Some(trace) = &out.trace {
            if include.trace {
                extras.push(("trace".to_owned(), chrome::chrome_json(trace)));
            }
            if include.profile {
                let p = WorkSpanProfile::from_trace(trace);
                extras.push((
                    "profile".to_owned(),
                    format!(
                        "{{\"parallelism\":{:.3},\"span\":{},\"tasks\":{},\"work\":{}}}",
                        p.parallelism(),
                        p.span,
                        p.tasks,
                        p.work
                    ),
                ));
            }
            if include.metrics {
                let report = MetricsReport::from_trace(trace).render();
                extras.push(("metrics".to_owned(), format!("\"{}\"", escape(&report))));
            }
        }
        Ok(RunOutput { result, extras })
    }

    fn execute_rt(
        &self,
        entry: &CachedProgram,
        spec: &RunSpec,
        include: RunInclude,
        workers: usize,
    ) -> Result<RunOutput, EngineError> {
        if workers == 0 || workers > MAX_RT_WORKERS {
            return Err(EngineError::Bad(format!(
                "workers must be in 1..={MAX_RT_WORKERS}, got {workers}"
            )));
        }
        if include.any() {
            // Pools are shared across concurrent tenants, so a per-run
            // trace would interleave unrelated runs; the simulator is
            // the observability substrate.
            return Err(EngineError::Bad(
                "trace/profile/metrics attachments need the sim substrate".to_owned(),
            ));
        }
        let hb_us = spec.heartbeat.unwrap_or(100);
        let pool = self.pool(workers, hb_us, spec);
        let backend = entry.backend(spec.tier);
        let args: Vec<(String, i64)> = spec
            .sets
            .iter()
            .map(|(name, v)| (entry.set_reg_name(name), *v))
            .collect();
        let arg_refs: Vec<(&str, i64)> = args.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let out = pool
            .run_program_with(entry.program(), backend, &arg_refs)
            .map_err(|e| EngineError::Bad(format!("runtime fault: {e}")))?;

        // Registers are the deterministic contract on the native
        // runtime; scheduling counters depend on real-time heartbeat
        // arrival and stay observational.
        let result = format!(
            "{{\"registers\":{}}}",
            render_int_registers(&collect_rt_regs(entry, &out))
        );
        let s = &out.stats;
        let extras = vec![(
            "rt_stats".to_owned(),
            format!(
                "{{\"forks\":{},\"heartbeats\":{},\"instructions\":{},\"joins\":{},\
                 \"promotions\":{}}}",
                s.forks, s.heartbeats, s.instructions, s.joins, s.promotions
            ),
        )];
        Ok(RunOutput { result, extras })
    }

    /// Fetches (or creates) the warm pool for a native-runtime shape,
    /// evicting the oldest pool beyond [`MAX_RT_POOLS`].
    fn pool(&self, workers: usize, hb_us: u64, spec: &RunSpec) -> Arc<Runtime> {
        let key = PoolKey {
            workers,
            hb_us,
            policy: spec.policy.label(),
        };
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, pool)) = pools.iter().find(|(k, _)| *k == key) {
            return Arc::clone(pool);
        }
        let config = RtConfig::default()
            .workers(workers)
            .heartbeat(Duration::from_micros(hb_us))
            .policy(spec.policy);
        let pool = Arc::new(Runtime::new(config));
        pools.push((key, Arc::clone(&pool)));
        if pools.len() > MAX_RT_POOLS {
            // Dropped here only if no in-flight run still holds the Arc.
            pools.remove(0);
        }
        pool
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Renders the integer-valued registers of a final register dump as a
/// sorted JSON object.
fn render_registers(regs: &[(String, Value)]) -> String {
    let ints: Vec<(String, i64)> = regs
        .iter()
        .filter_map(|(n, v)| match v {
            Value::Int(x) => Some((n.clone(), *x)),
            _ => None,
        })
        .collect();
    render_int_registers(&ints)
}

fn render_int_registers(regs: &[(String, i64)]) -> String {
    let mut regs: Vec<&(String, i64)> = regs.iter().collect();
    regs.sort();
    let mut s = String::from("{");
    for (i, (name, v)) in regs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{v}", escape(name)));
    }
    s.push('}');
    s
}

/// The native runtime's outcome dump, filtered to integer registers.
fn collect_rt_regs(entry: &CachedProgram, out: &tpal_rt::ProgramOutcome) -> Vec<(String, i64)> {
    let program = entry.program();
    let mut regs = Vec::new();
    for i in 0..program.reg_count() {
        let name = program
            .reg_name(tpal_core::isa::Reg::from_index(i))
            .to_owned();
        if let Some(v) = out.read_reg(&name) {
            regs.push((name, v));
        }
    }
    regs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProgramSrc;

    fn fib_src() -> ProgramSrc {
        ProgramSrc::tpl(
            "fn fib(n) {\n    if n < 2 { return n; }\n    par {\n        f1 = fib(n - 1);\n        f2 = fib(n - 2);\n    }\n    return f1 + f2;\n}\n",
            "heartbeat",
        )
    }

    #[test]
    fn sim_and_rt_agree_on_registers() {
        let engine = Engine::new();
        let (entry, _) = engine.cache().get_or_compile(&fib_src());
        let entry = entry.expect("fib compiles");
        let sim_spec = RunSpec::sim(2).set("n", 10);
        let rt_spec = RunSpec::rt(2).set("n", 10);
        let sim = engine
            .execute(&entry, &sim_spec, RunInclude::default())
            .unwrap();
        let rt = engine
            .execute(&entry, &rt_spec, RunInclude::default())
            .unwrap();
        assert!(
            sim.result.contains("\"result\":55"),
            "fib(10) = 55 in {}",
            sim.result
        );
        assert!(
            rt.result.contains("\"result\":55"),
            "fib(10) = 55 in {}",
            rt.result
        );
    }

    #[test]
    fn sim_results_are_reproducible_strings() {
        let engine = Engine::new();
        let (entry, _) = engine.cache().get_or_compile(&fib_src());
        let entry = entry.unwrap();
        let spec = RunSpec::sim(4).set("n", 12);
        let a = engine
            .execute(&entry, &spec, RunInclude::default())
            .unwrap();
        let b = engine
            .execute(&entry, &spec, RunInclude::default())
            .unwrap();
        assert_eq!(a.result, b.result, "same spec, byte-equal result");
    }

    #[test]
    fn rt_rejects_attachments() {
        let engine = Engine::new();
        let (entry, _) = engine.cache().get_or_compile(&fib_src());
        let entry = entry.unwrap();
        let spec = RunSpec::rt(1).set("n", 5);
        let err = engine
            .execute(
                &entry,
                &spec,
                RunInclude {
                    trace: true,
                    ..RunInclude::default()
                },
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Bad(_)));
    }

    #[test]
    fn rt_pools_are_reused_per_shape() {
        let engine = Engine::new();
        let spec = RunSpec::rt(2);
        let a = engine.pool(2, 100, &spec);
        let b = engine.pool(2, 100, &spec);
        assert!(Arc::ptr_eq(&a, &b), "same shape shares one pool");
        let c = engine.pool(2, 200, &spec);
        assert!(!Arc::ptr_eq(&a, &c), "different ♥ gets its own pool");
    }

    #[test]
    fn replay_reproduces_a_run_bit_for_bit() {
        let engine = Engine::new();
        let (entry, _) = engine.cache().get_or_compile(&fib_src());
        let entry = entry.unwrap();
        let mut spec = RunSpec::sim(3).set("n", 11);
        spec.heartbeat = Some(800);
        spec.seed = 42;
        spec.canonicalize();
        let first = engine
            .execute(&entry, &spec, RunInclude::default())
            .unwrap();
        let token = spec.token(entry.hash());
        let (decoded, replayed) = engine.replay(&token).unwrap();
        assert_eq!(decoded, spec);
        assert_eq!(replayed.result, first.result);
    }

    #[test]
    fn replay_of_unknown_program_is_a_miss() {
        let engine = Engine::new();
        let token = RunSpec::sim(1).token(0x1234);
        assert!(matches!(
            engine.replay(&token),
            Err(EngineError::UnknownProgram(0x1234))
        ));
    }
}
