//! Minimal HTTP/1.1 framing over [`std::net`] — just enough for the
//! service's JSON protocol, with no external dependencies.
//!
//! Supported: request line + headers + `Content-Length` bodies,
//! keep-alive (the default in 1.1), bounded header and body sizes.
//! Not supported, deliberately: chunked transfer, continuation lines,
//! pipelining beyond one in-flight request per connection.

use std::io::{BufRead, Read, Write};
use std::time::Duration;

/// Largest accepted request body (programs are text; 4 MiB is roomy).
pub const MAX_BODY: usize = 4 << 20;
/// Largest accepted header block.
pub const MAX_HEADER: usize = 64 << 10;
/// Socket read timeout used by connection handlers; keep-alive
/// connections poll at this granularity so shutdown is prompt.
pub const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Request target, e.g. `/run` (query strings are not split off).
    pub path: String,
    /// Decoded body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or never sent a byte before EOF).
    Closed,
    /// The read timed out before the first byte — an idle keep-alive
    /// connection; the caller decides whether to keep waiting.
    Idle,
    /// A framing violation; the connection should be closed after an
    /// error response.
    Malformed(String),
}

/// Reads one request from a buffered stream.
pub fn read_request<S: BufRead>(stream: &mut S) -> ReadOutcome {
    // Request line + headers, byte by byte up to the blank line.
    let mut head = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Malformed("connection closed mid-header".to_owned())
                };
            }
            Ok(_) => head.push(byte[0]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return if head.is_empty() {
                    ReadOutcome::Idle
                } else {
                    ReadOutcome::Malformed("read timeout mid-header".to_owned())
                };
            }
            Err(e) => return ReadOutcome::Malformed(format!("read: {e}")),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEADER {
            return ReadOutcome::Malformed("header block too large".to_owned());
        }
    }
    let head = match std::str::from_utf8(&head) {
        Ok(s) => s,
        Err(_) => return ReadOutcome::Malformed("header block is not UTF-8".to_owned()),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => return ReadOutcome::Malformed(format!("bad request line `{request_line}`")),
    };
    let mut content_length = 0usize;
    let mut keep_alive = true; // HTTP/1.1 default
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => return ReadOutcome::Malformed("bad Content-Length".to_owned()),
            };
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > MAX_BODY {
        return ReadOutcome::Malformed(format!("body larger than {MAX_BODY} bytes"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = stream.read_exact(&mut body) {
            return ReadOutcome::Malformed(format!("body read: {e}"));
        }
    }
    match String::from_utf8(body) {
        Ok(body) => ReadOutcome::Request(Request {
            method,
            path,
            body,
            keep_alive,
        }),
        Err(_) => ReadOutcome::Malformed("body is not UTF-8".to_owned()),
    }
}

/// Writes one response. `extra_headers` are preformatted
/// `Name: value` lines without terminators.
pub fn write_response<W: Write>(
    stream: &mut W,
    status: u16,
    extra_headers: &[String],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        body.len()
    );
    for h in extra_headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A full client-side response: status code, lowercased
/// `(name, value)` header pairs, and the body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// A tiny blocking client for tests, the smoke example, and the load
/// generator: one keep-alive connection, one request at a time.
pub struct Client {
    stream: std::io::BufReader<std::net::TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream: std::io::BufReader::new(stream),
        })
    }

    /// Sends one request and reads the response, returning
    /// `(status, body)`.
    ///
    /// # Errors
    ///
    /// Any socket failure, or a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<(u16, String)> {
        let (status, _, body) = self.request_full(method, path, body)?;
        Ok((status, body))
    }

    /// Like [`Client::request`], but also returns the response headers
    /// as lowercased `(name, value)` pairs.
    ///
    /// # Errors
    ///
    /// Any socket failure, or a malformed response.
    pub fn request_full(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<FullResponse> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: tpal-serve\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let raw = self.stream.get_mut();
        raw.write_all(head.as_bytes())?;
        raw.write_all(body.as_bytes())?;
        raw.flush()?;

        let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_owned());
        let mut status_line = String::new();
        self.stream.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line `{}`", status_line.trim_end())))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.stream.read_line(&mut line)?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad Content-Length"))?;
                }
                headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, headers, b))
            .map_err(|_| bad("response body is not UTF-8"))
    }
}
