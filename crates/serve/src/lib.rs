//! `tpal-serve`: multi-tenant TPAL simulation-as-a-service.
//!
//! A long-running server that accepts TPAL assembly or task-parallel
//! (`.tpl`) programs over a minimal HTTP/1.1 surface, validates and
//! compiles each distinct program **once** into a content-hash-keyed
//! decode cache, and dispatches runs onto the deterministic simulator
//! (`tpal-sim`) or a shared native-runtime pool (`tpal-rt`) behind
//! bounded admission control. Every response carries a deterministic
//! replay token — the run spec itself, canonically serialized — and
//! `GET /replay/<token>` reproduces the run bit-for-bit.
//!
//! The crate is dependency-free beyond the workspace: HTTP framing is
//! hand-rolled over [`std::net`], and JSON goes through `tpal-trace`'s
//! own reader/writer.
//!
//! # Layers
//!
//! * [`spec`] — run specifications, FNV-1a content hashing, replay
//!   tokens.
//! * [`cache`] — the once-only decode cache with lazily compiled
//!   per-tier execution backends.
//! * [`engine`] — spec → result rendering on either substrate, with a
//!   small set of warm native-runtime pools.
//! * [`proto`] — the JSON request/response protocol.
//! * [`http`] — minimal HTTP/1.1 framing (keep-alive, bounded bodies).
//! * [`server`] — the TCP server: bounded admission queue, executor
//!   threads, load shedding, graceful drain.
//!
//! # Quick start
//!
//! ```no_run
//! use tpal_serve::server::{Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // serve until POST /shutdown
//! ```

pub mod cache;
pub mod engine;
pub mod http;
pub mod proto;
pub mod server;
pub mod spec;

pub use cache::{CachedProgram, ProgramCache};
pub use engine::{Engine, EngineError, RunInclude, RunOutput};
pub use server::{ServeConfig, Server};
pub use spec::{Fnv1a, ProgramSrc, RunSpec, Substrate};
