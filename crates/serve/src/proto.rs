//! The JSON request protocol: a `POST /run` body names a program, a
//! run spec, and optional report attachments.
//!
//! ```json
//! {
//!   "source": "fn main(n) { ... }",
//!   "ir": true,
//!   "mode": "heartbeat",
//!   "substrate": "sim",
//!   "cores": 4,
//!   "linux": false,
//!   "workers": 2,
//!   "heartbeat": 3000,
//!   "policy": "heartbeat/uniform",
//!   "tier": "threaded",
//!   "seed": 123,
//!   "step_limit": 200000000,
//!   "sets": { "n": 1000 },
//!   "include": ["trace", "profile", "metrics"]
//! }
//! ```
//!
//! Only `source` is required: everything else defaults to a
//! single-core simulator run of a TPAL-assembly program with the
//! service defaults. Integer fields accept either JSON numbers or
//! decimal strings (`"seed": "18446744073709551615"`), since u64 values
//! beyond 2⁵³ cannot travel exactly as JSON numbers through an f64
//! reader.

use tpal_core::tier::ExecTier;
use tpal_sched::Policy;
use tpal_trace::json::{escape, parse, Json};

use crate::engine::RunInclude;
use crate::spec::{ProgramSrc, RunSpec, Substrate};

/// A parsed `POST /run` request.
#[derive(Debug, Clone)]
pub struct RunRequest {
    /// The submitted program.
    pub src: ProgramSrc,
    /// The run configuration (canonicalized).
    pub spec: RunSpec,
    /// Requested report attachments.
    pub include: RunInclude,
}

/// Parses a `POST /run` JSON body.
///
/// # Errors
///
/// A description of the malformation: bad JSON, missing `source`,
/// unknown substrate/tier/policy names, or out-of-range integers.
pub fn parse_run_request(body: &str) -> Result<RunRequest, String> {
    let doc = parse(body).map_err(|e| format!("request body: {e}"))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err("request body must be a JSON object".to_owned());
    }
    let source = doc
        .get("source")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string `source` field".to_owned())?
        .to_owned();
    let ir = match doc.get("ir") {
        None | Some(Json::Bool(false)) => false,
        Some(Json::Bool(true)) => true,
        Some(_) => return Err("`ir` must be a boolean".to_owned()),
    };
    let mode = match doc.get("mode") {
        None => "heartbeat".to_owned(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err("`mode` must be a string".to_owned()),
    };
    let src = ProgramSrc { source, ir, mode };

    let substrate = match doc.get("substrate").and_then(Json::as_str) {
        None | Some("sim") => Substrate::Sim {
            cores: opt_u64(&doc, "cores")?.unwrap_or(1) as usize,
            linux: doc.get("linux") == Some(&Json::Bool(true)),
        },
        Some("rt") => Substrate::Rt {
            workers: opt_u64(&doc, "workers")?.unwrap_or(2) as usize,
        },
        Some(other) => return Err(format!("unknown substrate `{other}` (sim|rt)")),
    };
    let policy = match doc.get("policy").and_then(Json::as_str) {
        Some(label) => Policy::parse(label).map_err(|e| format!("`policy`: {e}"))?,
        None => match substrate {
            Substrate::Sim { .. } => Policy::default(),
            Substrate::Rt { .. } => Policy::parse("heartbeat/sequence").expect("static label"),
        },
    };
    let tier = match doc.get("tier").and_then(Json::as_str) {
        Some(label) => ExecTier::parse(label)
            .ok_or_else(|| format!("unknown tier `{label}` (ref|decoded|threaded)"))?,
        None => ExecTier::default(),
    };
    let mut sets = Vec::new();
    match doc.get("sets") {
        None => {}
        Some(Json::Obj(m)) => {
            for (name, v) in m {
                let v = match v {
                    Json::Num(n) if n.fract() == 0.0 => *n as i64,
                    Json::Str(s) => s.parse::<i64>().map_err(|e| format!("set `{name}`: {e}"))?,
                    _ => return Err(format!("set `{name}` must be an integer")),
                };
                sets.push((name.clone(), v));
            }
        }
        Some(_) => return Err("`sets` must be an object of integers".to_owned()),
    }
    let mut spec = RunSpec {
        substrate,
        heartbeat: opt_u64(&doc, "heartbeat")?,
        policy,
        tier,
        seed: opt_u64(&doc, "seed")?.unwrap_or(0xDEC0DE),
        step_limit: opt_u64(&doc, "step_limit")?,
        sets,
    };
    spec.canonicalize();

    let mut include = RunInclude::default();
    match doc.get("include") {
        None => {}
        Some(Json::Arr(items)) => {
            for item in items {
                match item.as_str() {
                    Some("trace") => include.trace = true,
                    Some("profile") => include.profile = true,
                    Some("metrics") => include.metrics = true,
                    _ => return Err("`include` entries must be trace|profile|metrics".to_owned()),
                }
            }
        }
        Some(_) => return Err("`include` must be an array of strings".to_owned()),
    }
    Ok(RunRequest { src, spec, include })
}

/// Reads an optional non-negative integer field, accepting either a
/// JSON number (if integral) or a decimal string.
fn opt_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        Some(Json::Str(s)) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("`{key}`: {e}")),
        Some(_) => Err(format!("`{key}` must be a non-negative integer")),
    }
}

/// Renders the standard error body.
pub fn error_body(msg: &str) -> String {
    format!("{{\"error\":\"{}\",\"ok\":false}}", escape(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_defaults() {
        let req = parse_run_request(r#"{"source": "main: [.]\n    halt"}"#).unwrap();
        assert!(!req.src.ir);
        assert_eq!(
            req.spec.substrate,
            Substrate::Sim {
                cores: 1,
                linux: false
            }
        );
        assert_eq!(req.spec.seed, 0xDEC0DE);
        assert!(req.spec.heartbeat.is_none());
        assert!(!req.include.trace);
    }

    #[test]
    fn full_request_round_trips() {
        let req = parse_run_request(
            r#"{
                "source": "fn main(n) { return n; }",
                "ir": true,
                "mode": "serial",
                "substrate": "rt",
                "workers": 3,
                "heartbeat": 250,
                "policy": "eager/uniform",
                "tier": "decoded",
                "seed": "18446744073709551615",
                "sets": { "n": 7, "m": "-3" }
            }"#,
        )
        .unwrap();
        assert!(req.src.ir);
        assert_eq!(req.src.mode, "serial");
        assert_eq!(req.spec.substrate, Substrate::Rt { workers: 3 });
        assert_eq!(req.spec.heartbeat, Some(250));
        assert_eq!(req.spec.policy.label(), "eager/uniform");
        assert_eq!(req.spec.tier, ExecTier::Decoded);
        assert_eq!(req.spec.seed, u64::MAX);
        assert_eq!(
            req.spec.sets,
            vec![("m".to_owned(), -3), ("n".to_owned(), 7)],
            "sets are canonicalized (sorted)"
        );
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "[]",
            "{}",
            r#"{"source": 5}"#,
            r#"{"source": "x", "substrate": "gpu"}"#,
            r#"{"source": "x", "tier": "jit"}"#,
            r#"{"source": "x", "sets": {"n": 1.5}}"#,
            r#"{"source": "x", "include": ["flamegraph"]}"#,
        ] {
            assert!(parse_run_request(bad).is_err(), "{bad:?} should fail");
        }
    }
}
