//! The TCP server: bounded admission, a shared executor pool, and
//! graceful drain.
//!
//! Every connection gets a handler thread (connections are few and
//! long-lived under the intended load); every *run* goes through one
//! fixed-capacity admission queue serviced by a small executor pool, so
//! concurrent tenants contend on a bounded structure rather than
//! spawning unbounded work. When the queue is full the request is shed
//! immediately with `429` and a `Retry-After` hint — an overloaded
//! server stays responsive instead of building an invisible backlog.
//! `POST /shutdown` starts a drain: admission closes (`503`), executors
//! finish every admitted run, and [`Server::join`] returns once the
//! queue is empty.
//!
//! # Routes
//!
//! | Route                 | Meaning                                        |
//! |-----------------------|------------------------------------------------|
//! | `POST /run`           | Submit a program + run spec (JSON, [`crate::proto`]) |
//! | `GET /replay/<token>` | Re-execute a replay token bit-for-bit          |
//! | `GET /healthz`        | Liveness probe                                 |
//! | `GET /stats`          | Cache/queue/counter snapshot                   |
//! | `POST /shutdown`      | Begin graceful drain                           |

use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::engine::{Engine, EngineError};
use crate::http::{read_request, write_response, ReadOutcome, Request, READ_TIMEOUT};
use crate::proto::{error_body, parse_run_request, RunRequest};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the default, for
    /// tests).
    pub addr: String,
    /// Admission-queue capacity: runs admitted but not yet started.
    /// Beyond it, submissions shed with `429`.
    pub queue_cap: usize,
    /// Executor threads servicing the queue.
    pub executors: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            queue_cap: 64,
            executors: 2,
        }
    }
}

enum Work {
    Run(Box<RunRequest>),
    Replay(String),
}

struct Job {
    work: Work,
    reply: SyncSender<(u16, String)>,
}

struct Shared {
    engine: Engine,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    queue_cap: usize,
    submitted: AtomicU64,
    shed: AtomicU64,
    completed: AtomicU64,
}

/// A running service instance.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Engine::new(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            queue_cap: config.queue_cap.max(1),
            submitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let executors = (0..config.executors.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tpal-serve-exec-{i}"))
                    .spawn(move || executor_main(&shared))
                    .expect("spawn executor")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tpal-serve-accept".to_owned())
                .spawn(move || acceptor_main(&listener, &shared))
                .expect("spawn acceptor")
        };
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            executors,
        })
    }

    /// The bound address (with the resolved port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The execution engine (cache statistics, direct execution in
    /// tests).
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// Begins a graceful drain: admission closes, executors finish the
    /// admitted backlog. Idempotent; returns immediately.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared, self.addr);
    }

    /// Waits for the acceptor and executors to finish (i.e. for a
    /// shutdown to complete the drain).
    pub fn join(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not joined) server still drains cleanly.
        self.shutdown();
        self.stop();
    }
}

fn initiate_shutdown(shared: &Shared, addr: SocketAddr) {
    // The flag is read under the queue lock by submitters, so take the
    // lock here to order "no new admissions" before the drain begins.
    {
        let _q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        shared.shutdown.store(true, Ordering::Release);
    }
    shared.available.notify_all();
    // The acceptor blocks in `accept`; poke it awake so it observes the
    // flag and exits.
    drop(TcpStream::connect(addr));
}

fn acceptor_main(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let addr = listener.local_addr().expect("listener has an address");
        // Handler threads are detached: they hold only a reply receiver
        // and exit as soon as the peer closes or shutdown is observed;
        // the executor drain guarantees every admitted run still gets
        // its response.
        let _ = std::thread::Builder::new()
            .name("tpal-serve-conn".to_owned())
            .spawn(move || handle_connection(stream, &shared, addr));
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared, addr: SocketAddr) {
    stream.set_read_timeout(Some(READ_TIMEOUT)).ok();
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        match read_request(&mut reader) {
            ReadOutcome::Closed => break,
            ReadOutcome::Idle => {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
            }
            ReadOutcome::Malformed(msg) => {
                let _ = write_response(&mut write_half, 400, &[], &error_body(&msg));
                break;
            }
            ReadOutcome::Request(req) => {
                let keep = req.keep_alive;
                let (status, headers, body) = route(shared, addr, &req);
                if write_response(&mut write_half, status, &headers, &body).is_err() || !keep {
                    break;
                }
            }
        }
    }
}

fn route(shared: &Shared, addr: SocketAddr, req: &Request) -> (u16, Vec<String>, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/run") => match parse_run_request(&req.body) {
            Ok(run) => submit(shared, Work::Run(Box::new(run))),
            Err(e) => (400, Vec::new(), error_body(&e)),
        },
        ("GET", path) if path.starts_with("/replay/") => {
            let token = path["/replay/".len()..].to_owned();
            submit(shared, Work::Replay(token))
        }
        ("GET", "/healthz") => (200, Vec::new(), "{\"ok\":true}".to_owned()),
        ("GET", "/stats") => (200, Vec::new(), stats_body(shared)),
        ("POST", "/shutdown") => {
            initiate_shutdown(shared, addr);
            (
                200,
                Vec::new(),
                "{\"draining\":true,\"ok\":true}".to_owned(),
            )
        }
        ("GET" | "POST", _) => (404, Vec::new(), error_body("no such route")),
        _ => (405, Vec::new(), error_body("method not allowed")),
    }
}

/// Bounded admission: enqueue and wait for the result, or shed.
fn submit(shared: &Shared, work: Work) -> (u16, Vec<String>, String) {
    let (tx, rx) = sync_channel(1);
    {
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if shared.shutdown.load(Ordering::Acquire) {
            return (503, Vec::new(), error_body("server is draining"));
        }
        if queue.len() >= shared.queue_cap {
            shared.shed.fetch_add(1, Ordering::Relaxed);
            return (
                429,
                vec!["Retry-After: 1".to_owned()],
                error_body("admission queue full; retry shortly"),
            );
        }
        queue.push_back(Job { work, reply: tx });
    }
    shared.submitted.fetch_add(1, Ordering::Relaxed);
    shared.available.notify_one();
    match rx.recv() {
        Ok((status, body)) => (status, Vec::new(), body),
        Err(_) => (503, Vec::new(), error_body("executor terminated")),
    }
}

fn executor_main(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // Drain contract: exit only once the queue is empty
                // *and* shutdown was requested, so every admitted run
                // gets its response.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let (status, body) = execute_job(&shared.engine, job.work);
        shared.completed.fetch_add(1, Ordering::Relaxed);
        // The handler may have given up (connection gone); the run's
        // effects are confined to the reply, so ignore send failures.
        let _ = job.reply.send((status, body));
    }
}

fn execute_job(engine: &Engine, work: Work) -> (u16, String) {
    match work {
        Work::Run(run) => {
            let hash = run.src.content_hash();
            let (entry, hit) = engine.cache().get_or_compile(&run.src);
            let entry = match entry {
                Ok(entry) => entry,
                Err(e) => return (400, error_body(&e)),
            };
            let token = run.spec.token(hash);
            let started = Instant::now();
            match engine.execute(&entry, &run.spec, run.include) {
                Ok(out) => {
                    let wall_us = started.elapsed().as_micros();
                    let mut body = format!(
                        "{{\"cache\":\"{}\",\"ok\":true,\"replay\":\"{token}\",\"result\":{}",
                        if hit { "hit" } else { "miss" },
                        out.result
                    );
                    for (key, value) in &out.extras {
                        body.push_str(&format!(",\"{key}\":{value}"));
                    }
                    body.push_str(&format!(",\"wall_us\":{wall_us}}}"));
                    (200, body)
                }
                Err(e) => (engine_status(&e), error_body(&e.to_string())),
            }
        }
        Work::Replay(token) => match engine.replay(&token) {
            Ok((_, out)) => {
                let mut body = format!(
                    "{{\"ok\":true,\"replay\":\"{token}\",\"result\":{}",
                    out.result
                );
                for (key, value) in &out.extras {
                    body.push_str(&format!(",\"{key}\":{value}"));
                }
                body.push('}');
                (200, body)
            }
            Err(e) => (engine_status(&e), error_body(&e.to_string())),
        },
    }
}

fn engine_status(e: &EngineError) -> u16 {
    match e {
        EngineError::Bad(_) => 400,
        EngineError::UnknownProgram(_) => 404,
    }
}

fn stats_body(shared: &Shared) -> String {
    let cache = &shared.engine.cache();
    let depth = shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
    format!(
        "{{\"cache\":{{\"decodes\":{},\"hits\":{},\"misses\":{},\"programs\":{}}},\
         \"completed\":{},\"draining\":{},\"ok\":true,\"queue_depth\":{depth},\
         \"shed\":{},\"submitted\":{}}}",
        cache.decode_count(),
        cache.hit_count(),
        cache.miss_count(),
        cache.len(),
        shared.completed.load(Ordering::Relaxed),
        shared.shutdown.load(Ordering::Acquire),
        shared.shed.load(Ordering::Relaxed),
        shared.submitted.load(Ordering::Relaxed),
    )
}
