//! Integration tests for `tpal-serve`: concurrent decode-cache
//! correctness, the deterministic-replay contract as a property test,
//! the TCP surface end-to-end, admission-control shedding, and the
//! graceful-drain contract.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use tpal_serve::engine::RunInclude;
use tpal_serve::http::Client;
use tpal_serve::server::{ServeConfig, Server};
use tpal_serve::spec::{ProgramSrc, RunSpec};
use tpal_serve::Engine;
use tpal_trace::json::{escape, parse, Json};

/// A distinct `.tpl` program per `k` — a parallel reduction whose
/// result (`k * Σ i`) certifies which program actually ran.
fn program(k: i64) -> ProgramSrc {
    ProgramSrc::tpl(
        format!(
            "fn main(n) {{\n    s = 0;\n    parfor i in 0..n reduce(s: +, 0) \
             {{ s = s + i * {k}; }}\n    return s;\n}}\n"
        ),
        "heartbeat",
    )
}

#[test]
fn concurrent_submitters_decode_each_program_exactly_once() {
    const PROGRAMS: i64 = 4;
    const THREADS_PER_PROGRAM: usize = 4;
    const RUNS_PER_THREAD: usize = 3;

    let engine = Arc::new(Engine::new());
    // Fresh single-threaded baseline results, one engine per run so no
    // cache state is shared with the system under test.
    let baseline: Vec<String> = (0..PROGRAMS)
        .map(|k| {
            let fresh = Engine::new();
            let (entry, hit) = fresh.cache().get_or_compile(&program(k));
            assert!(!hit);
            let spec = RunSpec::sim(3).set("n", 500);
            fresh
                .execute(&entry.unwrap(), &spec, RunInclude::default())
                .unwrap()
                .result
        })
        .collect();

    let handles: Vec<_> = (0..PROGRAMS)
        .flat_map(|k| (0..THREADS_PER_PROGRAM).map(move |_| k))
        .map(|k| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for _ in 0..RUNS_PER_THREAD {
                    let (entry, _) = engine.cache().get_or_compile(&program(k));
                    let entry = entry.expect("program compiles");
                    let spec = RunSpec::sim(3).set("n", 500);
                    results.push(
                        engine
                            .execute(&entry, &spec, RunInclude::default())
                            .unwrap()
                            .result,
                    );
                }
                (k, results)
            })
        })
        .collect();
    for handle in handles {
        let (k, results) = handle.join().expect("submitter thread");
        for result in results {
            assert_eq!(
                result, baseline[k as usize],
                "cached run of program {k} must be bit-identical to a fresh run"
            );
        }
    }
    assert_eq!(
        engine.cache().decode_count(),
        PROGRAMS as u64,
        "each distinct program is decoded exactly once, however many submitters race"
    );
    assert_eq!(engine.cache().len(), PROGRAMS as usize);
    assert_eq!(
        engine.cache().hit_count() + engine.cache().miss_count(),
        (PROGRAMS as u64) * (THREADS_PER_PROGRAM as u64) * (RUNS_PER_THREAD as u64)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The replay contract: for any run spec, decoding the token and
    /// re-executing reproduces the deterministic result object
    /// byte-for-byte.
    #[test]
    fn replay_token_reproduces_any_sim_run(
        cores in 1usize..5,
        heartbeat in prop_oneof![Just(None), (100u64..5_000).prop_map(Some)],
        seed in any::<u64>(),
        n in 0i64..26,
        linux in any::<bool>(),
        tier in proptest::sample::select(vec!["ref", "decoded", "threaded"]),
        policy in proptest::sample::select(vec![
            "heartbeat/uniform",
            "heartbeat/sequence",
            "eager/locality",
            "adaptive:40/uniform",
            "never/uniform",
        ]),
    ) {
        let engine = Engine::new();
        let (entry, _) = engine.cache().get_or_compile(&program(3));
        let entry = entry.unwrap();
        let mut spec = RunSpec::sim(cores).set("n", n);
        if let tpal_serve::Substrate::Sim { linux: l, .. } = &mut spec.substrate {
            *l = linux;
        }
        spec.heartbeat = heartbeat;
        spec.seed = seed;
        spec.tier = tpal_core::tier::ExecTier::parse(tier).unwrap();
        spec.policy = tpal_sched::Policy::parse(policy).unwrap();
        spec.canonicalize();

        let first = engine.execute(&entry, &spec, RunInclude::default()).unwrap();
        let token = spec.token(entry.hash());
        let (decoded, replayed) = engine.replay(&token).unwrap();
        prop_assert_eq!(&decoded, &spec, "token decodes to the spec that produced it");
        prop_assert_eq!(
            &replayed.result, &first.result,
            "replayed registers/stats/time must be bit-identical"
        );
    }
}

fn run_body(source: &str, extra: &str) -> String {
    format!("{{\"source\":\"{}\"{extra}}}", escape(source))
}

const SUM_TPL: &str =
    "fn main(n) {\n    s = 0;\n    parfor i in 0..n reduce(s: +, 0) { s = s + i; }\n    return s;\n}\n";

#[test]
fn tcp_round_trip_hit_miss_replay_and_errors() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let body = run_body(SUM_TPL, ",\"ir\":true,\"cores\":2,\"sets\":{\"n\":100}");

    let (status, first) = client.request("POST", "/run", &body).unwrap();
    assert_eq!(status, 200, "{first}");
    let first = parse(&first).unwrap();
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    let result = first.get("result").expect("result object");
    assert_eq!(
        result
            .get("registers")
            .and_then(|r| r.get("result"))
            .and_then(Json::as_num),
        Some(4950.0),
        "sum 0..100 = 4950: {result:?}"
    );

    let (status, second) = client.request("POST", "/run", &body).unwrap();
    assert_eq!(status, 200);
    let second = parse(&second).unwrap();
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(first.get("result"), second.get("result"));

    let token = first
        .get("replay")
        .and_then(Json::as_str)
        .unwrap()
        .to_owned();
    let (status, replayed) = client
        .request("GET", &format!("/replay/{token}"), "")
        .unwrap();
    assert_eq!(status, 200);
    let replayed = parse(&replayed).unwrap();
    assert_eq!(first.get("result"), replayed.get("result"));

    // The native runtime over the same surface: registers agree with
    // the simulator's (the cross-substrate determinism contract).
    let rt_body = run_body(
        SUM_TPL,
        ",\"ir\":true,\"substrate\":\"rt\",\"workers\":2,\"sets\":{\"n\":100}",
    );
    let (status, rt) = client.request("POST", "/run", &rt_body).unwrap();
    assert_eq!(status, 200, "{rt}");
    let rt = parse(&rt).unwrap();
    assert_eq!(
        rt.get("cache").and_then(Json::as_str),
        Some("hit"),
        "same program, same cache entry"
    );
    assert_eq!(
        rt.get("result")
            .and_then(|r| r.get("registers"))
            .and_then(|r| r.get("result")),
        first
            .get("result")
            .and_then(|r| r.get("registers"))
            .and_then(|r| r.get("result")),
    );
    assert!(
        rt.get("rt_stats").is_some(),
        "rt runs report observational stats"
    );

    // Error paths: bad program (400), bad route (404), bad token (400),
    // unknown-program token (404).
    let (status, _) = client
        .request("POST", "/run", "{\"source\":\"nope\"}")
        .unwrap();
    assert_eq!(status, 400);
    let (status, _) = client.request("GET", "/nope", "").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/replay/r1-zz", "").unwrap();
    assert_eq!(status, 400);
    let unknown = RunSpec::sim(1).token(0xffff);
    let (status, _) = client
        .request("GET", &format!("/replay/{unknown}"), "")
        .unwrap();
    assert_eq!(status, 404);

    let (status, health) = client.request("GET", "/healthz", "").unwrap();
    assert_eq!((status, health.as_str()), (200, "{\"ok\":true}"));

    server.shutdown();
    server.join();
}

/// An infinite loop bounded only by `step_limit`: a knob for making a
/// run occupy an executor for a predictable number of steps.
fn spinner_body(steps: u64) -> String {
    run_body(
        "fn main() { x = 0; while 0 == 0 { x = x + 1; } return x; }",
        &format!(",\"ir\":true,\"step_limit\":{steps}"),
    )
}

#[test]
fn full_queue_sheds_with_429_and_retry_after() {
    let server = Server::start(ServeConfig {
        queue_cap: 1,
        executors: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Deterministic saturation, one step at a time: occupy the single
    // executor, confirm the job was popped, then fill the single queue
    // slot and confirm it is resident. Each occupier blocks on its
    // reply, so they run on their own threads.
    let mut stats_client = Client::connect(addr).expect("connect");
    let mut wait_for = |what: &str, cond: &dyn Fn(f64, f64, f64) -> bool| {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, stats) = stats_client.request("GET", "/stats", "").unwrap();
            let stats = parse(&stats).unwrap();
            let field = |k: &str| stats.get(k).and_then(Json::as_num).unwrap_or(0.0);
            if cond(field("submitted"), field("queue_depth"), field("completed")) {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "never reached `{what}`: {stats:?}"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    };
    let occupy = move || {
        let mut client = Client::connect(addr).expect("connect");
        client
            .request("POST", "/run", &spinner_body(60_000_000))
            .expect("occupier reply")
    };
    let first = std::thread::spawn(occupy);
    wait_for("executor busy", &|submitted, depth, completed| {
        submitted >= 1.0 && depth == 0.0 && completed == 0.0
    });
    let second = std::thread::spawn(occupy);
    wait_for("queue slot filled", &|_, depth, _| depth >= 1.0);
    let occupiers = [first, second];

    // Queue full: the next submission sheds immediately.
    let (status, headers, body) = stats_client
        .request_full("POST", "/run", &spinner_body(1))
        .unwrap();
    assert_eq!(status, 429, "{body}");
    assert_eq!(
        headers
            .iter()
            .find(|(name, _)| name == "retry-after")
            .map(|(_, v)| v.as_str()),
        Some("1"),
        "shed responses carry Retry-After: {headers:?}"
    );
    assert!(body.contains("queue full"), "{body}");

    // The occupiers were admitted and still finish (with the step-limit
    // fault — a 400, but a *reply*, not a drop).
    for occupier in occupiers {
        let (status, body) = occupier.join().expect("occupier thread");
        assert_eq!(status, 400, "{body}");
        assert!(
            body.contains("step limit") || body.contains("StepLimit"),
            "{body}"
        );
    }
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_drains_every_admitted_run() {
    let server = Server::start(ServeConfig {
        queue_cap: 16,
        executors: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Admit a backlog of real runs on one executor.
    let submitters: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let body = run_body(
                    SUM_TPL,
                    &format!(",\"ir\":true,\"cores\":2,\"sets\":{{\"n\":{}}}", 200 + i),
                );
                client
                    .request("POST", "/run", &body)
                    .expect("admitted run must get a reply")
            })
        })
        .collect();

    // Let at least one get admitted, then start the drain.
    let mut client = Client::connect(addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, stats) = client.request("GET", "/stats", "").unwrap();
        let stats = parse(&stats).unwrap();
        if stats.get("submitted").and_then(Json::as_num).unwrap_or(0.0) >= 1.0 {
            break;
        }
        assert!(Instant::now() < deadline, "no run admitted: {stats:?}");
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, body) = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(status, 200, "{body}");

    // Every run admitted before the drain completes with a real
    // response; late ones were refused outright (503), never dropped.
    let mut completed = 0;
    for submitter in submitters {
        let (status, body) = submitter.join().expect("submitter thread");
        assert!(
            status == 200 || status == 503,
            "unexpected {status}: {body}"
        );
        if status == 200 {
            completed += 1;
        }
    }
    assert!(completed >= 1, "at least the admitted backlog completed");
    server.join();

    // The drained server is gone: new connections are refused.
    assert!(
        std::net::TcpStream::connect(addr).is_err() || {
            // The OS may still accept into the dead listener's backlog;
            // a request on such a connection must at least fail.
            let mut c = Client::connect(addr).unwrap();
            c.request("GET", "/healthz", "").is_err()
        },
        "server must stop serving after the drain"
    );
}
