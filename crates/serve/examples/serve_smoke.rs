//! End-to-end smoke test for `tpal-serve`, used by the CI `serve-smoke`
//! job: starts a server in-process, submits one TPAL-assembly program
//! and one IR (`.tpl`) program over real TCP, asserts the decode cache
//! hits on resubmission, and checks that the replay token reproduces
//! each run bit-for-bit.
//!
//! Exits nonzero (panics) on any violated expectation.

use tpal_serve::http::Client;
use tpal_serve::server::{ServeConfig, Server};
use tpal_trace::json::{escape, parse, Json};

/// fib in TPAL assembly (the repo's Appendix B.2 program).
const FIB_TPAL: &str = include_str!("../../../programs/fib.tpal");

/// A parallel-loop reduction in the task-parallel source language.
const SUM_TPL: &str = "fn main(n) {\n    s = 0;\n    parfor i in 0..n reduce(s: +, 0) { s = s + i; }\n    return s;\n}\n";

fn run_body(source: &str, ir: bool, cores: u64, sets: &[(&str, i64)]) -> String {
    let sets = sets
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", escape(k)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"source\":\"{}\",\"ir\":{ir},\"cores\":{cores},\"sets\":{{{sets}}}}}",
        escape(source)
    )
}

/// Extracts a string field and the `result` object from a response.
fn parsed(body: &str) -> Json {
    parse(body).unwrap_or_else(|e| panic!("bad response JSON: {e}\n{body}"))
}

fn field<'j>(doc: &'j Json, key: &str) -> &'j Json {
    doc.get(key)
        .unwrap_or_else(|| panic!("response missing `{key}`: {doc:?}"))
}

fn main() {
    let server = Server::start(ServeConfig::default()).expect("bind");
    let addr = server.addr();
    println!("serve_smoke: server on {addr}");
    let mut client = Client::connect(addr).expect("connect");

    // Submit both programs twice: first a miss, then a hit, with
    // byte-identical deterministic results.
    for (name, body) in [
        ("fib.tpal", run_body(FIB_TPAL, false, 2, &[("n", 15)])),
        ("sum.tpl", run_body(SUM_TPL, true, 4, &[("n", 1000)])),
    ] {
        let (status, first) = client.request("POST", "/run", &body).expect("request");
        assert_eq!(status, 200, "{name}: {first}");
        let first = parsed(&first);
        assert_eq!(field(&first, "cache").as_str(), Some("miss"), "{name}");

        let (status, second) = client.request("POST", "/run", &body).expect("request");
        assert_eq!(status, 200, "{name}: {second}");
        let second = parsed(&second);
        assert_eq!(
            field(&second, "cache").as_str(),
            Some("hit"),
            "{name}: resubmission must hit the decode cache"
        );
        assert_eq!(
            field(&first, "result"),
            field(&second, "result"),
            "{name}: hit and miss runs must agree bit-for-bit"
        );
        assert_eq!(
            field(&first, "replay"),
            field(&second, "replay"),
            "{name}: same submission, same token"
        );

        // Replay the token and compare the deterministic result object.
        let token = field(&first, "replay").as_str().expect("token").to_owned();
        let (status, replayed) = client
            .request("GET", &format!("/replay/{token}"), "")
            .expect("replay");
        assert_eq!(status, 200, "{name}: {replayed}");
        let replayed = parsed(&replayed);
        assert_eq!(
            field(&first, "result"),
            field(&replayed, "result"),
            "{name}: replay must reproduce the run bit-for-bit"
        );
        println!("serve_smoke: {name} ok (miss -> hit -> replay identical)");
    }

    let (status, stats) = client.request("GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    let stats = parsed(&stats);
    assert_eq!(
        field(&stats, "cache").get("decodes").and_then(Json::as_num),
        Some(2.0),
        "two distinct programs, two decodes: {stats:?}"
    );

    let (status, body) = client.request("POST", "/shutdown", "").expect("shutdown");
    assert_eq!(status, 200, "{body}");
    server.join();
    println!("serve_smoke: drained and shut down cleanly");
}
