//! The suite's differential test: every workload must produce its
//! reference checksum in every build —
//!
//! * natively: serial, heartbeat (`tpal-rt`), and eager (`tpal-cilk`);
//! * simulated: the IR lowered serial/heartbeat/eager and run on the
//!   multicore simulator.
//!
//! This is the property that makes the benchmark numbers meaningful: all
//! systems do the same computation.

use tpal_cilk::CilkRuntime;
use tpal_ir::lower::{lower, Mode};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};
use tpal_sim::{Sim, SimConfig};
use tpal_workloads::{all_workloads, Scale, SimSpec, Workload};

fn run_sim(spec: &SimSpec, mode: Mode, config: SimConfig) -> i64 {
    let lowered = lower(&spec.ir, mode).unwrap_or_else(|e| panic!("lowering failed: {e}"));
    let mut sim = Sim::new(&lowered.program, config);
    for (name, data) in &spec.input.arrays {
        let base = sim.alloc_array(data);
        sim.set_reg(&lowered.param_reg(name), base)
            .unwrap_or_else(|e| panic!("set array {name}: {e}"));
    }
    for (name, v) in &spec.input.ints {
        sim.set_reg(&lowered.param_reg(name), *v)
            .unwrap_or_else(|e| panic!("set int {name}: {e}"));
    }
    let out = sim.run().unwrap_or_else(|e| panic!("sim failed: {e}"));
    out.read_reg(&lowered.result_reg).expect("result register")
}

fn check_native(w: &dyn Workload) {
    let p = w.prepare(Scale::Quick);
    let expected = p.expected();
    assert_eq!(p.run_serial(), expected, "{}: native serial", w.name());

    for source in [HeartbeatSource::Disabled, HeartbeatSource::LocalTimer] {
        let rt = Runtime::new(
            RtConfig::default()
                .workers(2)
                .source(source)
                .heartbeat(std::time::Duration::from_micros(80)),
        );
        let got = rt.run(|ctx| p.run_heartbeat(ctx));
        assert_eq!(got, expected, "{}: native heartbeat {source:?}", w.name());
    }

    let cilk = CilkRuntime::new(2);
    let got = cilk.run(|ctx| p.run_cilk(ctx));
    assert_eq!(got, expected, "{}: native cilk", w.name());
}

fn check_sim(w: &dyn Workload) {
    let spec = w.sim_spec(Scale::Quick);
    assert_eq!(
        run_sim(&spec, Mode::Serial, SimConfig::serial()),
        spec.expected,
        "{}: sim serial",
        w.name()
    );
    assert_eq!(
        run_sim(&spec, Mode::Heartbeat, SimConfig::nautilus(4, 3000)),
        spec.expected,
        "{}: sim heartbeat/nautilus",
        w.name()
    );
    assert_eq!(
        run_sim(&spec, Mode::Heartbeat, SimConfig::linux(4, 3000)),
        spec.expected,
        "{}: sim heartbeat/linux",
        w.name()
    );
    assert_eq!(
        run_sim(
            &spec,
            Mode::Eager { workers: 4 },
            SimConfig::nautilus(4, 3000)
        ),
        spec.expected,
        "{}: sim eager",
        w.name()
    );
    assert_eq!(
        run_sim(&spec, Mode::HeartbeatExpanded, SimConfig::nautilus(4, 3000)),
        spec.expected,
        "{}: sim heartbeat/expanded",
        w.name()
    );
}

macro_rules! workload_tests {
    ($($test:ident => $name:expr),* $(,)?) => {
        $(
            mod $test {
                use super::*;

                #[test]
                fn native() {
                    let w = tpal_workloads::workload($name).expect("known workload");
                    check_native(w.as_ref());
                }

                #[test]
                fn simulated() {
                    let w = tpal_workloads::workload($name).expect("known workload");
                    check_sim(w.as_ref());
                }
            }
        )*
    };
}

workload_tests! {
    plus_reduce_array => "plus-reduce-array",
    spmv_random => "spmv-random",
    spmv_powerlaw => "spmv-powerlaw",
    spmv_arrowhead => "spmv-arrowhead",
    mandelbrot => "mandelbrot",
    kmeans => "kmeans",
    srad => "srad",
    floyd_warshall_small => "floyd-warshall-small",
    floyd_warshall_large => "floyd-warshall-large",
    knapsack => "knapsack",
    mergesort_uniform => "mergesort-uniform",
    mergesort_exp => "mergesort-exp",
}

#[test]
fn registry_has_twelve() {
    let names: Vec<_> = all_workloads().iter().map(|w| w.name()).collect();
    assert_eq!(names.len(), 12);
    // Paper grouping: 9 iterative + 3 recursive.
    let recursive = all_workloads().iter().filter(|w| w.is_recursive()).count();
    assert_eq!(recursive, 3);
}
