//! `floyd-warshall`: all-pairs shortest paths, purely loop-based (§4.1).
//! The `k` rounds are serial (each depends on the last); each round's
//! row loop is parallel with a serial column loop inside. The paper runs
//! 1K and 2K vertices because the smaller size starves Cilk's `8P`
//! heuristic — it creates 23× more tasks than TPAL yet runs 67% slower
//! (§4.3). We keep two sizes for the same contrast.

use tpal_cilk::cilk_for;
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Stmt};
use tpal_rt::WorkerCtx;

use crate::inputs::fw_graph;
use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

fn fw_serial(g: &mut [i64], n: usize) {
    for k in 0..n {
        for i in 0..n {
            let dik = g[i * n + k];
            for j in 0..n {
                let alt = dik + g[k * n + j];
                if alt < g[i * n + j] {
                    g[i * n + j] = alt;
                }
            }
        }
    }
}

fn dist_checksum(g: &[i64]) -> i64 {
    let mut h = 0i64;
    for (i, &d) in g.iter().enumerate() {
        let d = d.min(crate::inputs::FW_INF);
        h = h.wrapping_add(d.wrapping_mul(1 + (i as i64 % 13)));
    }
    h
}

/// The `floyd-warshall-*` workloads (small ≈ the paper's 1K, large ≈ 2K,
/// scaled to this machine).
pub struct FloydWarshall {
    name: &'static str,
    large: bool,
}

impl FloydWarshall {
    /// The parallelism-starved size.
    pub fn small() -> Self {
        FloydWarshall {
            name: "floyd-warshall-small",
            large: false,
        }
    }

    /// The comfortable size.
    pub fn large() -> Self {
        FloydWarshall {
            name: "floyd-warshall-large",
            large: true,
        }
    }
}

struct PreparedFw {
    g: Vec<i64>,
    n: usize,
    expected: i64,
}

impl PreparedFw {
    fn run_rounds(&self, mut run_rows: impl FnMut(&[i64], &crate::SyncPtr, usize)) -> i64 {
        let n = self.n;
        let mut g = self.g.clone();
        for k in 0..n {
            // The k-th row is both read and written within a round only
            // at indices where it is a fixed point (g[k][j] cannot
            // improve through k), so row-parallel rounds are safe — the
            // standard parallel Floyd–Warshall argument.
            let ptr = crate::SyncPtr::new(g.as_mut_ptr());
            run_rows(&g, &ptr, k);
        }
        dist_checksum(&g)
    }
}

impl Prepared for PreparedFw {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        let mut g = self.g.clone();
        fw_serial(&mut g, self.n);
        dist_checksum(&g)
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let n = self.n;
        self.run_rounds(|g, ptr, k| {
            ctx.parallel_for(0..n, |_, i| {
                let dik = g[i * n + k];
                for j in 0..n {
                    let alt = dik + g[k * n + j];
                    // SAFETY: rows are disjoint across iterations.
                    unsafe {
                        if alt < ptr.read(i * n + j) {
                            ptr.write(i * n + j, alt);
                        }
                    }
                }
            });
        })
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let n = self.n;
        self.run_rounds(|g, ptr, k| {
            cilk_for(ctx, 0..n, &|_, i| {
                let dik = g[i * n + k];
                for j in 0..n {
                    let alt = dik + g[k * n + j];
                    // SAFETY: rows are disjoint across iterations.
                    unsafe {
                        if alt < ptr.read(i * n + j) {
                            ptr.write(i * n + j, alt);
                        }
                    }
                }
            });
        })
    }
}

impl Workload for FloydWarshall {
    fn name(&self) -> &'static str {
        self.name
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let n = match (self.large, scale) {
            (false, Scale::Quick) => 144,
            (false, Scale::Full) => 512,
            (true, Scale::Quick) => 240,
            (true, Scale::Full) => 1024,
        };
        let g = fw_graph(n, 0xF10D);
        let mut r = g.clone();
        fw_serial(&mut r, n);
        Box::new(PreparedFw {
            g,
            n,
            expected: dist_checksum(&r),
        })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        // The small size starves 15 cores: few row-iterations per round.
        let n = match (self.large, scale) {
            (false, Scale::Quick) => 32,
            (false, Scale::Full) => 48,
            (true, Scale::Quick) => 72,
            (true, Scale::Full) => 128,
        };
        let g = fw_graph(n, 0xF10D);
        let mut r = g.clone();
        fw_serial(&mut r, n);
        let expected = dist_checksum(&r);
        let v = Expr::var;
        let i = Expr::int;

        let f = Function::new("main", ["g", "n"])
            .stmt(Stmt::for_(
                "k",
                i(0),
                v("n"),
                vec![Stmt::ParFor(ParFor::new("i", i(0), v("n")).body(vec![
                    Stmt::assign("dik", v("g").load(v("i").mul(v("n")).add(v("k")))),
                    Stmt::for_(
                        "j",
                        i(0),
                        v("n"),
                        vec![
                            Stmt::assign(
                                "alt",
                                v("dik").add(v("g").load(v("k").mul(v("n")).add(v("j")))),
                            ),
                            Stmt::if_(
                                v("alt").lt(v("g").load(v("i").mul(v("n")).add(v("j")))),
                                vec![Stmt::store(
                                    v("g"),
                                    v("i").mul(v("n")).add(v("j")),
                                    v("alt"),
                                )],
                            ),
                        ],
                    ),
                ]))],
            ))
            // Checksum (min against INF is a no-op post-FW, omitted).
            .stmt(Stmt::assign("h", i(0)))
            .stmt(Stmt::for_(
                "p",
                i(0),
                v("n").mul(v("n")),
                vec![Stmt::assign(
                    "h",
                    v("h").add(v("g").load(v("p")).mul(v("p").rem(i(13)).add(i(1)))),
                )],
            ))
            .stmt(Stmt::Return(v("h")));

        SimSpec {
            ir: IrProgram::new("main").function(f),
            input: SimInput::default().array("g", g).int("n", n as i64),
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fw_serial_triangle() {
        // 0→1 (5), 1→2 (5), 0→2 (20): shortest 0→2 becomes 10.
        let inf = crate::inputs::FW_INF;
        let mut g = vec![
            0, 5, 20, //
            inf, 0, 5, //
            inf, inf, 0,
        ];
        fw_serial(&mut g, 3);
        assert_eq!(g[2], 10);
    }

    #[test]
    fn checksum_saturates_inf() {
        let g = vec![crate::inputs::FW_INF + 5, 0];
        // Saturation keeps unreachable entries from overflowing the hash
        // differently across builds.
        let _ = dist_checksum(&g);
    }
}
