//! `mandelbrot`: escape-time iteration over a pixel grid (§4.1).
//! Per-pixel work is wildly irregular — points inside the set run the
//! full iteration budget, points far outside escape immediately — which
//! is why the paper needs many tasks to keep cores fed (§4.3).
//!
//! Arithmetic is Q16 fixed point so all four builds produce identical
//! integer results.

use tpal_cilk::cilk_reduce;
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Reducer, Stmt};
use tpal_rt::WorkerCtx;

use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

/// Q16 fixed-point scale.
const FP: i64 = 1 << 16;

/// The view rectangle in Q16: x ∈ [-2.2, 1.0], y ∈ [-1.4, 1.4].
const X0: i64 = -(22 * FP / 10);
const X1: i64 = FP;
const Y0: i64 = -(14 * FP / 10);
const Y1: i64 = 14 * FP / 10;

/// Escape iterations for the pixel at (px, py) on a `w × h` grid.
#[inline]
fn pixel_iters(px: i64, py: i64, w: i64, h: i64, max_iter: i64) -> i64 {
    let cx = X0 + (X1 - X0) * px / w;
    let cy = Y0 + (Y1 - Y0) * py / h;
    let mut zx = 0i64;
    let mut zy = 0i64;
    let mut it = 0i64;
    while it < max_iter {
        let zx2 = zx * zx / FP;
        let zy2 = zy * zy / FP;
        if zx2 + zy2 > 4 * FP {
            break;
        }
        let nzx = zx2 - zy2 + cx;
        zy = 2 * zx * zy / FP + cy;
        zx = nzx;
        it += 1;
    }
    it
}

fn row_iters(py: i64, w: i64, h: i64, max_iter: i64) -> i64 {
    let mut s = 0i64;
    for px in 0..w {
        s += pixel_iters(px, py, w, h, max_iter);
    }
    s
}

/// The `mandelbrot` workload.
pub struct Mandelbrot;

struct PreparedMandel {
    w: i64,
    h: i64,
    max_iter: i64,
    expected: i64,
}

impl Prepared for PreparedMandel {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        let mut s = 0i64;
        for py in 0..self.h {
            s += row_iters(py, self.w, self.h, self.max_iter);
        }
        s
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (w, h, mi) = (self.w, self.h, self.max_iter);
        // Flat loop over pixels: maximal latent parallelism, exactly the
        // "expose everything" philosophy.
        ctx.reduce(
            0..(w * h) as usize,
            0i64,
            |_, p, acc| {
                let (px, py) = (p as i64 % w, p as i64 / w);
                acc + pixel_iters(px, py, w, h, mi)
            },
            |a, b| a + b,
        )
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (w, h, mi) = (self.w, self.h, self.max_iter);
        cilk_reduce(
            ctx,
            0..(w * h) as usize,
            0i64,
            &|_, p, acc| {
                let (px, py) = (p as i64 % w, p as i64 / w);
                acc + pixel_iters(px, py, w, h, mi)
            },
            &|a, b| a + b,
        )
    }
}

impl Workload for Mandelbrot {
    fn name(&self) -> &'static str {
        "mandelbrot"
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let (w, h, max_iter) = scale.pick((512, 512, 96), (2048, 2048, 256));
        let mut expected = 0i64;
        for py in 0..h {
            expected += row_iters(py, w, h, max_iter);
        }
        Box::new(PreparedMandel {
            w,
            h,
            max_iter,
            expected,
        })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let (w, h, max_iter) = scale.pick((72, 72, 48), (128, 128, 96));
        let mut expected = 0i64;
        for py in 0..h {
            expected += row_iters(py, w, h, max_iter);
        }
        let v = Expr::var;
        let i = Expr::int;

        // Flat parfor over pixels; the escape loop is a serial While.
        let body = vec![
            Stmt::assign("px", v("p").rem(v("w"))),
            Stmt::assign("py", v("p").div(v("w"))),
            Stmt::assign("cx", i(X0).add(i(X1 - X0).mul(v("px")).div(v("w")))),
            Stmt::assign("cy", i(Y0).add(i(Y1 - Y0).mul(v("py")).div(v("h")))),
            Stmt::assign("zx", i(0)),
            Stmt::assign("zy", i(0)),
            Stmt::assign("it", i(0)),
            Stmt::assign("go", i(0)), // 0 = keep iterating
            Stmt::While {
                cond: v("go").eq_(i(0)).and(v("it").lt(v("mi"))),
                body: vec![
                    Stmt::assign("zx2", v("zx").mul(v("zx")).div(i(FP))),
                    Stmt::assign("zy2", v("zy").mul(v("zy")).div(i(FP))),
                    Stmt::if_else(
                        v("zx2").add(v("zy2")).gt(i(4 * FP)),
                        vec![Stmt::assign("go", i(1))],
                        vec![
                            Stmt::assign("nzx", v("zx2").sub(v("zy2")).add(v("cx"))),
                            Stmt::assign(
                                "zy",
                                i(2).mul(v("zx")).mul(v("zy")).div(i(FP)).add(v("cy")),
                            ),
                            Stmt::assign("zx", v("nzx")),
                            Stmt::assign("it", v("it").add(i(1))),
                        ],
                    ),
                ],
            },
            Stmt::assign("s", v("s").add(v("it"))),
        ];
        let f = Function::new("main", ["w", "h", "mi"])
            .stmt(Stmt::assign("s", i(0)))
            .stmt(Stmt::ParFor(
                ParFor::new("p", i(0), v("w").mul(v("h")))
                    .body(body)
                    .reducer(Reducer::new("s", tpal_core::isa::BinOp::Add, 0)),
            ))
            .stmt(Stmt::Return(v("s")));

        SimSpec {
            ir: IrProgram::new("main").function(f),
            input: SimInput::default()
                .int("w", w)
                .int("h", h)
                .int("mi", max_iter),
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inner_points_run_full_budget() {
        // (0, 0) in the complex plane is inside the set.
        let w = 100;
        let h = 100;
        // Find the pixel closest to the origin.
        let px = (-X0) * w / (X1 - X0);
        let py = (-Y0) * h / (Y1 - Y0);
        assert_eq!(pixel_iters(px, py, w, h, 500), 500);
    }

    #[test]
    fn outer_points_escape_fast() {
        // Pixel (0,0) maps to the far corner, well outside.
        assert!(pixel_iters(0, 0, 100, 100, 500) < 5);
    }
}
