//! Input generators: sparse matrices in CSR form (random, power-law,
//! arrowhead — §4.1), integer sequences from uniform and exponential
//! distributions, and points for kmeans.
//!
//! Everything is generated from fixed seeds so that all four builds of a
//! workload see identical inputs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse matrix in compressed-sparse-row (CSR) form with integer
/// values (exact arithmetic keeps checksums schedule-independent).
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row start offsets (`rows + 1` entries).
    pub row_ptr: Vec<i64>,
    /// Column index per non-zero.
    pub col_idx: Vec<i64>,
    /// Value per non-zero.
    pub vals: Vec<i64>,
}

impl CsrMatrix {
    /// Total non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A·x` computed serially (the reference result).
    pub fn spmv_serial(&self, x: &[i64]) -> Vec<i64> {
        let mut y = vec![0i64; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut s = 0i64;
            for k in lo..hi {
                s = s.wrapping_add(self.vals[k].wrapping_mul(x[self.col_idx[k] as usize]));
            }
            *out = s;
        }
        y
    }
}

fn small_val(rng: &mut StdRng) -> i64 {
    rng.gen_range(-4i64..=4)
}

/// A uniformly random sparse matrix: every row gets `1..=2·avg-1`
/// non-zeros at uniformly random columns ("random", §4.1).
pub fn random_matrix(rows: usize, cols: usize, avg_nnz_per_row: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for _ in 0..rows {
        let k = rng.gen_range(1..=2 * avg_nnz_per_row.max(1) - 1);
        for _ in 0..k {
            col_idx.push(rng.gen_range(0..cols) as i64);
            vals.push(small_val(&mut rng));
        }
        row_ptr.push(col_idx.len() as i64);
    }
    CsrMatrix {
        rows,
        cols,
        row_ptr,
        col_idx,
        vals,
    }
}

/// A power-law matrix: row `i` receives about `c / (i+1)^α` non-zeros,
/// so a handful of early rows hold a large share of the work — the
/// irregularity that defeats uniform loop grains ("powerlaw", §4.1).
pub fn powerlaw_matrix(rows: usize, cols: usize, total_nnz: usize, seed: u64) -> CsrMatrix {
    let alpha = 1.0f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let h: f64 = (1..=rows).map(|i| 1.0 / (i as f64).powf(alpha)).sum();
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for i in 0..rows {
        let share = (total_nnz as f64 / h) / ((i + 1) as f64).powf(alpha);
        let k = (share.round() as usize).clamp(1, cols);
        for _ in 0..k {
            col_idx.push(rng.gen_range(0..cols) as i64);
            vals.push(small_val(&mut rng));
        }
        row_ptr.push(col_idx.len() as i64);
    }
    CsrMatrix {
        rows,
        cols,
        row_ptr,
        col_idx,
        vals,
    }
}

/// An arrowhead matrix: dense first row, dense first column, and the
/// diagonal — "particularly challenging for task scheduling" (§4.1):
/// one giant row followed by uniformly tiny ones.
pub fn arrowhead_matrix(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    // Row 0: all columns.
    for c in 0..n {
        col_idx.push(c as i64);
        vals.push(small_val(&mut rng));
    }
    row_ptr.push(col_idx.len() as i64);
    // Rows 1..n: first column + diagonal.
    for r in 1..n {
        col_idx.push(0);
        vals.push(small_val(&mut rng));
        col_idx.push(r as i64);
        vals.push(small_val(&mut rng));
        row_ptr.push(col_idx.len() as i64);
    }
    CsrMatrix {
        rows: n,
        cols: n,
        row_ptr,
        col_idx,
        vals,
    }
}

/// A dense integer vector with entries in `[-8, 8]`.
pub fn dense_vector(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-8i64..=8)).collect()
}

/// Uniformly distributed integers (mergesort-uniform).
pub fn uniform_ints(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..1_000_000_000i64)).collect()
}

/// Exponentially distributed integers (mergesort-exp): many small
/// values, a long tail — the paper's skewed input.
pub fn exponential_ints(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (-u.ln() * 100_000.0) as i64
        })
        .collect()
}

/// Clustered integer points for kmeans: `n` points in `d` dimensions
/// around `k` true centres.
pub fn kmeans_points(n: usize, d: usize, k: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<i64> = (0..k * d).map(|_| rng.gen_range(-1000i64..=1000)).collect();
    let mut pts = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = i % k;
        for j in 0..d {
            pts.push(centres[c * d + j] + rng.gen_range(-50i64..=50));
        }
    }
    pts
}

/// An `n × n` weighted adjacency matrix for floyd-warshall, with `INF`
/// (a large sentinel) for missing edges.
pub fn fw_graph(n: usize, seed: u64) -> Vec<i64> {
    /// One quarter of `i64::MAX`: safe against overflow in min-plus.
    pub const INF: i64 = 1 << 40;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = vec![INF; n * n];
    for i in 0..n {
        g[i * n + i] = 0;
        for _ in 0..6 {
            let j = rng.gen_range(0..n);
            if j != i {
                g[i * n + j] = rng.gen_range(1i64..=100);
            }
        }
    }
    g
}

/// The floyd-warshall missing-edge sentinel.
pub const FW_INF: i64 = 1 << 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_matrix_wellformed() {
        let m = random_matrix(100, 100, 8, 1);
        assert_eq!(m.row_ptr.len(), 101);
        assert_eq!(*m.row_ptr.last().unwrap() as usize, m.nnz());
        assert!(m.col_idx.iter().all(|&c| (c as usize) < m.cols));
        assert!(m.nnz() >= 100);
    }

    #[test]
    fn powerlaw_is_skewed() {
        let m = powerlaw_matrix(1000, 1000, 50_000, 2);
        let first = (m.row_ptr[1] - m.row_ptr[0]) as usize;
        let last = (m.row_ptr[1000] - m.row_ptr[999]) as usize;
        assert!(first > 50 * last, "first row {first} vs last {last}");
    }

    #[test]
    fn arrowhead_shape() {
        let m = arrowhead_matrix(10, 3);
        assert_eq!(m.nnz(), 10 + 9 * 2);
        // Row 0 is dense.
        assert_eq!(m.row_ptr[1] - m.row_ptr[0], 10);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_ints(50, 9), uniform_ints(50, 9));
        assert_eq!(exponential_ints(50, 9), exponential_ints(50, 9));
        let a = random_matrix(20, 20, 4, 7);
        let b = random_matrix(20, 20, 4, 7);
        assert_eq!(a.vals, b.vals);
    }

    #[test]
    fn exponential_is_skewed() {
        let v = exponential_ints(10_000, 4);
        let mean = v.iter().sum::<i64>() / v.len() as i64;
        let below = v.iter().filter(|&&x| x < mean).count();
        assert!(below > 5_500, "exponential: {below} below mean");
    }

    #[test]
    fn spmv_serial_reference() {
        // [[1, 2], [0, 3]] · [10, 20] = [50, 60]
        let m = CsrMatrix {
            rows: 2,
            cols: 2,
            row_ptr: vec![0, 2, 3],
            col_idx: vec![0, 1, 1],
            vals: vec![1, 2, 3],
        };
        assert_eq!(m.spmv_serial(&[10, 20]), vec![50, 60]);
    }

    #[test]
    fn fw_graph_diagonal_zero() {
        let g = fw_graph(8, 5);
        for i in 0..8 {
            assert_eq!(g[i * 8 + i], 0);
        }
    }
}
