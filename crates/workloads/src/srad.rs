//! `srad`: speckle-reducing anisotropic diffusion (ported from Rodinia,
//! §4.1; 4k × 4k in the paper). Each round makes two full passes over
//! the image — a gradient/coefficient pass and an update pass — each a
//! parallel loop over rows with a serial column loop, the classic
//! stencil shape. The arithmetic is an integer diffusion preserving the
//! original's memory-access and loop structure.

use tpal_cilk::cilk_for;
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Stmt};
use tpal_rt::WorkerCtx;

use crate::inputs::dense_vector;
use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

const ROUNDS: usize = 2;

#[inline]
fn clampi(v: i64, lo: i64, hi: i64) -> i64 {
    v.max(lo).min(hi)
}

/// One diffusion round: `img → out` (integer 4-neighbour diffusion with
/// a data-dependent coefficient, mirroring SRAD's structure).
fn round_serial(img: &[i64], out: &mut [i64], rows: usize, cols: usize) {
    for r in 0..rows {
        for c in 0..cols {
            let at = |rr: i64, cc: i64| {
                let rr = clampi(rr, 0, rows as i64 - 1) as usize;
                let cc = clampi(cc, 0, cols as i64 - 1) as usize;
                img[rr * cols + cc]
            };
            let x = img[r * cols + c];
            let n = at(r as i64 - 1, c as i64);
            let s = at(r as i64 + 1, c as i64);
            let w = at(r as i64, c as i64 - 1);
            let e = at(r as i64, c as i64 + 1);
            let lap = n + s + w + e - 4 * x;
            // Data-dependent diffusion coefficient in [1, 8].
            let coef = 1 + (x.unsigned_abs() % 8) as i64;
            out[r * cols + c] = x + lap * coef / 16;
        }
    }
}

fn srad_serial(initial: &[i64], rows: usize, cols: usize) -> i64 {
    let mut a = initial.to_vec();
    let mut b = vec![0i64; rows * cols];
    for _ in 0..ROUNDS {
        round_serial(&a, &mut b, rows, cols);
        std::mem::swap(&mut a, &mut b);
    }
    image_checksum(&a)
}

fn image_checksum(img: &[i64]) -> i64 {
    let mut h = 0i64;
    for (i, &x) in img.iter().enumerate() {
        h = h.wrapping_add(x.wrapping_mul(1 + (i as i64 % 11)));
    }
    h
}

/// Runs one diffusion round with the row loop parallelised by
/// `run_rows`.
fn round_parallel(
    img: &[i64],
    out: &mut [i64],
    rows: usize,
    cols: usize,
    run_rows: impl FnOnce(&(dyn Fn(usize) + Sync)),
) {
    let optr = crate::SyncPtr::new(out.as_mut_ptr());
    run_rows(&move |r: usize| {
        for c in 0..cols {
            let at = |rr: i64, cc: i64| {
                let rr = clampi(rr, 0, rows as i64 - 1) as usize;
                let cc = clampi(cc, 0, cols as i64 - 1) as usize;
                img[rr * cols + cc]
            };
            let x = img[r * cols + c];
            let n = at(r as i64 - 1, c as i64);
            let s = at(r as i64 + 1, c as i64);
            let w = at(r as i64, c as i64 - 1);
            let e = at(r as i64, c as i64 + 1);
            let lap = n + s + w + e - 4 * x;
            let coef = 1 + (x.unsigned_abs() % 8) as i64;
            // SAFETY: row-disjoint writes.
            unsafe { optr.write(r * cols + c, x + lap * coef / 16) };
        }
    });
}

/// The `srad` workload.
pub struct Srad;

struct PreparedSrad {
    initial: Vec<i64>,
    rows: usize,
    cols: usize,
    expected: i64,
}

impl Prepared for PreparedSrad {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        srad_serial(&self.initial, self.rows, self.cols)
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (rows, cols) = (self.rows, self.cols);
        let mut a = self.initial.clone();
        let mut b = vec![0i64; rows * cols];
        for _ in 0..ROUNDS {
            round_parallel(&a, &mut b, rows, cols, |row_fn| {
                ctx.parallel_for(0..rows, |_, r| row_fn(r));
            });
            std::mem::swap(&mut a, &mut b);
        }
        image_checksum(&a)
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (rows, cols) = (self.rows, self.cols);
        let mut a = self.initial.clone();
        let mut b = vec![0i64; rows * cols];
        for _ in 0..ROUNDS {
            round_parallel(&a, &mut b, rows, cols, |row_fn| {
                cilk_for(ctx, 0..rows, &|_, r| row_fn(r));
            });
            std::mem::swap(&mut a, &mut b);
        }
        image_checksum(&a)
    }
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        "srad"
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let (rows, cols) = scale.pick((640, 640), (2048, 2048));
        let initial: Vec<i64> = dense_vector(rows * cols, 0x5EAD)
            .into_iter()
            .map(|x| x.unsigned_abs() as i64 * 16)
            .collect();
        let expected = srad_serial(&initial, rows, cols);
        Box::new(PreparedSrad {
            initial,
            rows,
            cols,
            expected,
        })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let (rows, cols) = scale.pick((64, 64), (128, 128));
        let initial: Vec<i64> = dense_vector(rows * cols, 0x5EAD)
            .into_iter()
            .map(|x| x.unsigned_abs() as i64 * 16)
            .collect();
        let expected = srad_serial(&initial, rows, cols);
        let v = Expr::var;
        let i = Expr::int;

        // One round from src → dst as a ParFor over rows; the function is
        // called with the buffers swapped each round. Clamped neighbour
        // indexing via min/max.
        let cell = |dr: i64, dc: i64| -> Expr {
            let rr = v("r").add(i(dr)).max(i(0)).min(v("rows").sub(i(1)));
            let cc = v("c").add(i(dc)).max(i(0)).min(v("cols").sub(i(1)));
            v("src").load(rr.mul(v("cols")).add(cc))
        };
        let round_fn = Function::new("round", ["src", "dst", "rows", "cols"])
            .stmt(Stmt::ParFor(ParFor::new("r", i(0), v("rows")).body(vec![
                Stmt::for_(
                    "c",
                    i(0),
                    v("cols"),
                    vec![
                        Stmt::assign("x", v("src").load(v("r").mul(v("cols")).add(v("c")))),
                        Stmt::assign(
                            "lap",
                            cell(-1, 0)
                                .add(cell(1, 0))
                                .add(cell(0, -1))
                                .add(cell(0, 1))
                                .sub(i(4).mul(v("x"))),
                        ),
                        // |x| % 8 + 1 via conditional negate.
                        Stmt::if_else(
                            v("x").lt(i(0)),
                            vec![Stmt::assign("ax", i(0).sub(v("x")))],
                            vec![Stmt::assign("ax", v("x"))],
                        ),
                        Stmt::assign("coef", v("ax").rem(i(8)).add(i(1))),
                        // Floored shift-like division toward -inf is not
                        // needed: the serial kernel uses / 16 (trunc),
                        // matched here by Div.
                        Stmt::store(
                            v("dst"),
                            v("r").mul(v("cols")).add(v("c")),
                            v("x").add(v("lap").mul(v("coef")).div(i(16))),
                        ),
                    ],
                ),
            ])))
            .stmt(Stmt::Return(i(0)));

        let main = Function::new("main", ["a", "b", "rows", "cols"])
            .stmt(Stmt::call(
                "round",
                vec![v("a"), v("b"), v("rows"), v("cols")],
                None,
            ))
            .stmt(Stmt::call(
                "round",
                vec![v("b"), v("a"), v("rows"), v("cols")],
                None,
            ))
            .stmt(Stmt::assign("h", i(0)))
            .stmt(Stmt::for_(
                "p",
                i(0),
                v("rows").mul(v("cols")),
                vec![Stmt::assign(
                    "h",
                    v("h").add(v("a").load(v("p")).mul(v("p").rem(i(11)).add(i(1)))),
                )],
            ))
            .stmt(Stmt::Return(v("h")));

        SimSpec {
            ir: IrProgram::new("main").function(main).function(round_fn),
            input: SimInput::default()
                .array("a", initial)
                .array("b", vec![0; rows * cols])
                .int("rows", rows as i64)
                .int("cols", cols as i64),
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diffusion_smooths() {
        // A single spike spreads to its neighbours.
        let mut img = vec![0i64; 25];
        img[12] = 160;
        let mut out = vec![0i64; 25];
        round_serial(&img, &mut out, 5, 5);
        assert!(out[12] < 160);
        assert!(out[7] > 0 && out[11] > 0 && out[13] > 0 && out[17] > 0);
    }

    #[test]
    fn serial_deterministic() {
        let img = dense_vector(100, 3);
        assert_eq!(srad_serial(&img, 10, 10), srad_serial(&img, 10, 10));
    }
}
