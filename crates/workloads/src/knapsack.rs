//! `knapsack`: branch-and-bound 0/1 knapsack (from the Cilk suite,
//! §4.1; 36 items in the paper). The only non-deterministic benchmark in
//! the suite: the *amount of work* depends on how fast good incumbents
//! propagate between tasks through the shared best-so-far bound, though
//! the final optimum is always the same.

use std::sync::atomic::{AtomicI64, Ordering};

use tpal_cilk::cilk_spawn2;
use tpal_ir::ast::{CallSpec, Expr, Function, IrProgram, Stmt};
use tpal_rt::WorkerCtx;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

/// Problem instance: weights and values, sorted by value density
/// (descending) so the simple fractional bound is admissible.
#[derive(Debug, Clone)]
struct Instance {
    w: Vec<i64>,
    v: Vec<i64>,
    cap: i64,
}

fn instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items: Vec<(i64, i64)> = (0..n)
        .map(|_| (rng.gen_range(5i64..=60), rng.gen_range(5i64..=60)))
        .collect();
    // Sort by density v/w descending.
    items.sort_by(|a, b| (b.1 * a.0).cmp(&(a.1 * b.0)));
    let total_w: i64 = items.iter().map(|x| x.0).sum();
    Instance {
        w: items.iter().map(|x| x.0).collect(),
        v: items.iter().map(|x| x.1).collect(),
        cap: total_w / 2,
    }
}

/// Admissible upper bound for the subtree at `idx`: current value plus
/// the remaining capacity filled at the best remaining density
/// (rounded up).
#[inline]
fn bound(ins: &Instance, idx: usize, cap: i64, val: i64) -> i64 {
    if idx >= ins.w.len() {
        return val;
    }
    val + (cap * ins.v[idx] + ins.w[idx] - 1) / ins.w[idx]
}

fn serial_rec(ins: &Instance, idx: usize, cap: i64, val: i64, best: &mut i64) -> i64 {
    if idx == ins.w.len() {
        if val > *best {
            *best = val;
        }
        return val;
    }
    if bound(ins, idx, cap, val) <= *best {
        return val;
    }
    let mut r = serial_rec(ins, idx + 1, cap, val, best);
    if ins.w[idx] <= cap {
        let l = serial_rec(ins, idx + 1, cap - ins.w[idx], val + ins.v[idx], best);
        r = r.max(l);
    }
    r
}

fn parallel_rec(
    ins: &Instance,
    idx: usize,
    cap: i64,
    val: i64,
    best: &AtomicI64,
    ctx: &WorkerCtx<'_>,
    eager: bool,
) -> i64 {
    if idx == ins.w.len() {
        best.fetch_max(val, Ordering::Relaxed);
        return val;
    }
    if bound(ins, idx, cap, val) <= best.load(Ordering::Relaxed) {
        return val;
    }
    if ins.w[idx] <= cap {
        let run_l = |ctx: &WorkerCtx<'_>| {
            parallel_rec(
                ins,
                idx + 1,
                cap - ins.w[idx],
                val + ins.v[idx],
                best,
                ctx,
                eager,
            )
        };
        let run_r = |ctx: &WorkerCtx<'_>| parallel_rec(ins, idx + 1, cap, val, best, ctx, eager);
        let (l, r) = if eager {
            cilk_spawn2(ctx, run_l, run_r)
        } else {
            ctx.join2(run_l, run_r)
        };
        l.max(r)
    } else {
        parallel_rec(ins, idx + 1, cap, val, best, ctx, eager)
    }
}

/// The `knapsack` workload.
pub struct Knapsack;

struct PreparedKnap {
    ins: Instance,
    expected: i64,
}

impl Prepared for PreparedKnap {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        let mut best = 0i64;
        serial_rec(&self.ins, 0, self.ins.cap, 0, &mut best)
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let best = AtomicI64::new(0);
        parallel_rec(&self.ins, 0, self.ins.cap, 0, &best, ctx, false)
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let best = AtomicI64::new(0);
        parallel_rec(&self.ins, 0, self.ins.cap, 0, &best, ctx, true)
    }
}

impl Workload for Knapsack {
    fn name(&self) -> &'static str {
        "knapsack"
    }

    fn is_recursive(&self) -> bool {
        true
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let n = scale.pick(28, 34);
        let ins = instance(n, 0x6A5A);
        let mut best = 0i64;
        let expected = serial_rec(&ins, 0, ins.cap, 0, &mut best);
        Box::new(PreparedKnap { ins, expected })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let n = scale.pick(16, 20);
        let ins = instance(n, 0x6A5A);
        let mut best = 0i64;
        let expected = serial_rec(&ins, 0, ins.cap, 0, &mut best);
        let v = Expr::var;
        let i = Expr::int;

        // knap(wp, vp, bestp, n, idx, cap, val): branch and bound with
        // the incumbent in a shared heap cell (monotone pruning only —
        // racy updates can weaken pruning but never the optimum).
        let knap = Function::new("knap", ["wp", "vp", "bestp", "n", "idx", "cap", "val"])
            .stmt(Stmt::if_(
                v("idx").eq_(v("n")),
                vec![
                    Stmt::if_(
                        v("val").gt(v("bestp").load(i(0))),
                        vec![Stmt::store(v("bestp"), i(0), v("val"))],
                    ),
                    Stmt::Return(v("val")),
                ],
            ))
            .stmt(Stmt::assign("wi", v("wp").load(v("idx"))))
            .stmt(Stmt::assign("vi", v("vp").load(v("idx"))))
            .stmt(Stmt::assign(
                "ub",
                v("val").add(v("cap").mul(v("vi")).add(v("wi")).sub(i(1)).div(v("wi"))),
            ))
            .stmt(Stmt::if_(
                v("ub").le(v("bestp").load(i(0))),
                vec![Stmt::Return(v("val"))],
            ))
            .stmt(Stmt::if_else(
                v("wi").le(v("cap")),
                vec![
                    Stmt::Par2 {
                        left: CallSpec::new(
                            "knap",
                            vec![
                                v("wp"),
                                v("vp"),
                                v("bestp"),
                                v("n"),
                                v("idx").add(i(1)),
                                v("cap").sub(v("wi")),
                                v("val").add(v("vi")),
                            ],
                            "l",
                        ),
                        right: CallSpec::new(
                            "knap",
                            vec![
                                v("wp"),
                                v("vp"),
                                v("bestp"),
                                v("n"),
                                v("idx").add(i(1)),
                                v("cap"),
                                v("val"),
                            ],
                            "r",
                        ),
                    },
                    Stmt::Return(v("l").max(v("r"))),
                ],
                vec![
                    Stmt::call(
                        "knap",
                        vec![
                            v("wp"),
                            v("vp"),
                            v("bestp"),
                            v("n"),
                            v("idx").add(i(1)),
                            v("cap"),
                            v("val"),
                        ],
                        Some("r"),
                    ),
                    Stmt::Return(v("r")),
                ],
            ));

        let main = Function::new("main", ["wp", "vp", "bestp", "n", "cap"])
            .stmt(Stmt::call(
                "knap",
                vec![v("wp"), v("vp"), v("bestp"), v("n"), i(0), v("cap"), i(0)],
                Some("out"),
            ))
            .stmt(Stmt::Return(v("out")));

        SimSpec {
            ir: IrProgram::new("main").function(main).function(knap),
            input: SimInput::default()
                .array("wp", ins.w.clone())
                .array("vp", ins.v.clone())
                .array("bestp", vec![0])
                .int("n", n as i64)
                .int("cap", ins.cap),
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_finds_optimum_on_tiny_instance() {
        // Items (w, v): capacity 10. Optimum: items of value 60+50=110?
        let ins = Instance {
            w: vec![5, 5, 6],
            v: vec![60, 50, 40],
            cap: 10,
        };
        let mut best = 0;
        assert_eq!(serial_rec(&ins, 0, ins.cap, 0, &mut best), 110);
    }

    #[test]
    fn instance_sorted_by_density() {
        let ins = instance(20, 1);
        for k in 1..20 {
            // v[k-1]/w[k-1] >= v[k]/w[k]  ⇔  v[k-1]·w[k] >= v[k]·w[k-1]
            assert!(ins.v[k - 1] * ins.w[k] >= ins.v[k] * ins.w[k - 1]);
        }
    }

    #[test]
    fn bound_is_admissible() {
        let ins = instance(12, 2);
        let mut best = 0;
        let opt = serial_rec(&ins, 0, ins.cap, 0, &mut best);
        assert!(bound(&ins, 0, ins.cap, 0) >= opt);
    }
}
