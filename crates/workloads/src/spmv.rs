//! `spmv`: sparse-matrix × dense-vector product in CSR form, on the
//! paper's three matrix structures (§4.1): *random* (uniform rows),
//! *powerlaw* (a few giant rows), and *arrowhead* (one dense row plus
//! uniformly tiny ones). The irregular inputs are exactly where nested
//! parallelism matters: the giant rows must be split *internally*, which
//! heartbeat scheduling does on demand and uniform loop grains cannot.

use tpal_cilk::cilk_grain;
use tpal_ir::ast::{Expr, Function, IrProgram, ParForNested, Reducer, Stmt};
use tpal_rt::WorkerCtx;

use crate::inputs::{arrowhead_matrix, dense_vector, powerlaw_matrix, random_matrix, CsrMatrix};
use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

/// Which matrix structure to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Structure {
    Random,
    Powerlaw,
    Arrowhead,
}

/// The `spmv-*` workloads.
pub struct Spmv {
    structure: Structure,
    name: &'static str,
}

impl Spmv {
    /// `spmv-random`.
    pub fn random() -> Spmv {
        Spmv {
            structure: Structure::Random,
            name: "spmv-random",
        }
    }

    /// `spmv-powerlaw`.
    pub fn powerlaw() -> Spmv {
        Spmv {
            structure: Structure::Powerlaw,
            name: "spmv-powerlaw",
        }
    }

    /// `spmv-arrowhead`.
    pub fn arrowhead() -> Spmv {
        Spmv {
            structure: Structure::Arrowhead,
            name: "spmv-arrowhead",
        }
    }

    fn matrix(&self, scale: Scale) -> CsrMatrix {
        match self.structure {
            Structure::Random => {
                let (rows, avg) = scale.pick((60_000, 12), (600_000, 25));
                random_matrix(rows, rows, avg, 0x005E_ED01)
            }
            Structure::Powerlaw => {
                let (rows, nnz) = scale.pick((30_000, 700_000), (300_000, 12_000_000));
                powerlaw_matrix(rows, rows, nnz, 0x005E_ED02)
            }
            Structure::Arrowhead => {
                let n = scale.pick(250_000, 4_000_000);
                arrowhead_matrix(n, 0x005E_ED03)
            }
        }
    }

    fn sim_matrix(&self, scale: Scale) -> CsrMatrix {
        match self.structure {
            Structure::Random => {
                let (rows, avg) = scale.pick((6_000, 10), (30_000, 16));
                random_matrix(rows, rows, avg, 0x005E_ED01)
            }
            Structure::Powerlaw => {
                let (rows, nnz) = scale.pick((2_500, 50_000), (12_000, 400_000));
                powerlaw_matrix(rows, rows, nnz, 0x005E_ED02)
            }
            Structure::Arrowhead => {
                let n = scale.pick(15_000, 120_000);
                arrowhead_matrix(n, 0x005E_ED03)
            }
        }
    }
}

struct PreparedSpmv {
    m: CsrMatrix,
    x: Vec<i64>,
    expected: i64,
}

fn checksum(y: &[i64]) -> i64 {
    let mut h = 0i64;
    for (i, &v) in y.iter().enumerate() {
        h = h.wrapping_add(v.wrapping_mul(1 + (i as i64 & 0xF)));
    }
    h
}

impl Prepared for PreparedSpmv {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        checksum(&self.m.spmv_serial(&self.x))
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (m, x) = (&self.m, &self.x);
        let mut y = vec![0i64; m.rows];
        {
            let yslice = crate::SyncPtr::new(y.as_mut_ptr());
            let yslice = &yslice;
            ctx.parallel_for(0..m.rows, |ctx, r| {
                let (lo, hi) = (m.row_ptr[r] as usize, m.row_ptr[r + 1] as usize);
                // The inner (row) loop is itself a latent parallel
                // reduction: giant powerlaw/arrowhead rows split on
                // heartbeats.
                let s = ctx.reduce(
                    lo..hi,
                    0i64,
                    |_, k, acc| acc.wrapping_add(m.vals[k].wrapping_mul(x[m.col_idx[k] as usize])),
                    |a, b| a.wrapping_add(b),
                );
                // SAFETY: each row index is written exactly once.
                unsafe { yslice.write(r, s) };
            });
        }
        checksum(&y)
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (m, x) = (&self.m, &self.x);
        let mut y = vec![0i64; m.rows];
        {
            let yslice = crate::SyncPtr::new(y.as_mut_ptr());
            let yslice = &yslice;
            let row_grain = cilk_grain(m.rows, ctx.pool_size());
            // The standard Cilk port parallelises rows only; a giant
            // powerlaw/arrowhead row stays serial inside its chunk —
            // the granularity failure the paper's §4 exercises.
            tpal_cilk::cilk_for_grained(ctx, 0..m.rows, row_grain, &|_, r| {
                let (lo, hi) = (m.row_ptr[r] as usize, m.row_ptr[r + 1] as usize);
                let mut s = 0i64;
                for k in lo..hi {
                    s = s.wrapping_add(m.vals[k].wrapping_mul(x[m.col_idx[k] as usize]));
                }
                // SAFETY: each row index is written exactly once.
                unsafe { yslice.write(r, s) };
            });
        }
        checksum(&y)
    }
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        self.name
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let m = self.matrix(scale);
        let x = dense_vector(m.cols, 0xB0B);
        let expected = checksum(&m.spmv_serial(&x));
        Box::new(PreparedSpmv { m, x, expected })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let m = self.sim_matrix(scale);
        let x = dense_vector(m.cols, 0xB0B);
        let expected = checksum(&m.spmv_serial(&x));
        let v = Expr::var;
        let i = Expr::int;

        // total = Σ_r weight(r) · (Σ_k vals[k] · x[col[k]]); y stored too.
        let nest = ParForNested {
            outer_var: "r".into(),
            outer_from: i(0),
            outer_to: v("rows"),
            pre: vec![
                Stmt::assign("lo", v("rp").load(v("r"))),
                Stmt::assign("hi", v("rp").load(v("r").add(i(1)))),
                Stmt::assign("rowsum", i(0)),
            ],
            inner_var: "k".into(),
            inner_from: v("lo"),
            inner_to: v("hi"),
            inner_body: vec![Stmt::assign(
                "rowsum",
                v("rowsum").add(
                    v("vals")
                        .load(v("k"))
                        .mul(v("x").load(v("ci").load(v("k")))),
                ),
            )],
            inner_reducers: vec![Reducer::new("rowsum", tpal_core::isa::BinOp::Add, 0)],
            post: vec![
                Stmt::store(v("y"), v("r"), v("rowsum")),
                Stmt::assign("w", v("r").bitand_mask()),
                Stmt::assign("total", v("total").add(v("rowsum").mul(v("w")))),
            ],
            outer_reducers: vec![Reducer::new("total", tpal_core::isa::BinOp::Add, 0)],
        };

        let f = Function::new("main", ["rp", "ci", "vals", "x", "y", "rows"])
            .stmt(Stmt::assign("total", i(0)))
            .stmt(Stmt::ParForNested(Box::new(nest)))
            .stmt(Stmt::Return(v("total")));

        SimSpec {
            ir: IrProgram::new("main").function(f),
            input: SimInput::default()
                .array("rp", m.row_ptr.clone())
                .array("ci", m.col_idx.clone())
                .array("vals", m.vals.clone())
                .array("x", x)
                .array("y", vec![0; m.rows])
                .int("rows", m.rows as i64),
            expected,
        }
    }
}

/// Helper: `(r & 0xF) + 1` as an expression (the checksum weight).
trait ChecksumWeight {
    fn bitand_mask(self) -> Expr;
}

impl ChecksumWeight for Expr {
    fn bitand_mask(self) -> Expr {
        Expr::bin(tpal_core::isa::BinOp::And, self, Expr::int(0xF)).add(Expr::int(1))
    }
}
