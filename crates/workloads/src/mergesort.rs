//! `mergesort`: the suite's only benchmark mixing recursive parallelism
//! with a parallel loop (§4.1): the sort recursion is fork-join, and the
//! copy-back from the merge buffer is a parallel loop. Inputs come from
//! uniform and exponential distributions, as in the paper.

use tpal_cilk::{cilk_for, cilk_spawn2};
use tpal_ir::ast::{CallSpec, Expr, Function, IrProgram, ParFor, Stmt};
use tpal_rt::WorkerCtx;

use crate::inputs::{exponential_ints, uniform_ints};
use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

/// Below this size, sort insertion-style (the Cilk suite's base case).
const CUTOFF: usize = 32;

fn insertion_sort(a: &mut [i64]) {
    for i in 1..a.len() {
        let x = a[i];
        let mut j = i;
        while j > 0 && a[j - 1] > x {
            a[j] = a[j - 1];
            j -= 1;
        }
        a[j] = x;
    }
}

/// Serial two-finger merge of `a[lo..mid]` and `a[mid..hi]` into
/// `tmp[lo..hi]`.
fn merge_into(a: &[i64], tmp: &mut [i64], lo: usize, mid: usize, hi: usize) {
    let (mut i, mut j, mut k) = (lo, mid, lo);
    while i < mid && j < hi {
        if a[i] <= a[j] {
            tmp[k] = a[i];
            i += 1;
        } else {
            tmp[k] = a[j];
            j += 1;
        }
        k += 1;
    }
    while i < mid {
        tmp[k] = a[i];
        i += 1;
        k += 1;
    }
    while j < hi {
        tmp[k] = a[j];
        j += 1;
        k += 1;
    }
}

fn serial_sort(a: &mut [i64], tmp: &mut [i64], lo: usize, hi: usize) {
    if hi - lo <= CUTOFF {
        insertion_sort(&mut a[lo..hi]);
        return;
    }
    let mid = lo + (hi - lo) / 2;
    serial_sort(a, tmp, lo, mid);
    serial_sort(a, tmp, mid, hi);
    merge_into(a, tmp, lo, mid, hi);
    a[lo..hi].copy_from_slice(&tmp[lo..hi]);
}

fn checksum(a: &[i64]) -> i64 {
    let mut h = 0i64;
    let mut sorted = 0i64; // 0 = sorted (the TPAL truth encoding!)
    for i in 0..a.len() {
        h = h.wrapping_add(a[i].wrapping_mul(1 + (i as i64 % 9)));
        if i > 0 && a[i - 1] > a[i] {
            sorted = 1;
        }
    }
    h.wrapping_add(sorted.wrapping_mul(0x5AD))
}

/// Parallel sort: recursion via the given fork-join, copy-back via the
/// given parallel loop. The two halves touch disjoint index ranges of
/// both buffers.
fn parallel_sort(
    a: crate::SyncPtr,
    tmp: crate::SyncPtr,
    lo: usize,
    hi: usize,
    ctx: &WorkerCtx<'_>,
    eager: bool,
) {
    // SAFETY: throughout, this recursion owns `a[lo..hi]` and
    // `tmp[lo..hi]` exclusively; subcalls partition the range.
    if hi - lo <= CUTOFF {
        unsafe { insertion_sort(std::slice::from_raw_parts_mut(a.as_ptr().add(lo), hi - lo)) };
        return;
    }
    let mid = lo + (hi - lo) / 2;
    let (a0, a1) = (
        crate::SyncPtr::new(a.as_ptr()),
        crate::SyncPtr::new(a.as_ptr()),
    );
    let (t0, t1) = (
        crate::SyncPtr::new(tmp.as_ptr()),
        crate::SyncPtr::new(tmp.as_ptr()),
    );
    let run_l = move |ctx: &WorkerCtx<'_>| parallel_sort(a0, t0, lo, mid, ctx, eager);
    let run_r = move |ctx: &WorkerCtx<'_>| parallel_sort(a1, t1, mid, hi, ctx, eager);
    if eager {
        cilk_spawn2(ctx, run_l, run_r);
    } else {
        ctx.join2(run_l, run_r);
    }
    // SAFETY: both halves are complete; we own [lo, hi).
    unsafe {
        let av = std::slice::from_raw_parts(a.as_ptr(), hi);
        let tv = std::slice::from_raw_parts_mut(tmp.as_ptr(), hi);
        merge_into(av, tv, lo, mid, hi);
    }
    // Parallel copy-back (the paper's parallel-loop component).
    let (ac, tc) = (
        crate::SyncPtr::new(a.as_ptr()),
        crate::SyncPtr::new(tmp.as_ptr()),
    );
    let body = move |_: &WorkerCtx<'_>, i: usize| {
        // SAFETY: disjoint indices within our owned range.
        unsafe { ac.write(i, tc.read(i)) };
    };
    if eager {
        cilk_for(ctx, lo..hi, &body);
    } else {
        ctx.parallel_for(lo..hi, body);
    }
}

/// The `mergesort-*` workloads.
pub struct Mergesort {
    name: &'static str,
    exponential: bool,
}

impl Mergesort {
    /// Uniformly distributed input.
    pub fn uniform() -> Mergesort {
        Mergesort {
            name: "mergesort-uniform",
            exponential: false,
        }
    }

    /// Exponentially distributed input.
    pub fn exponential() -> Mergesort {
        Mergesort {
            name: "mergesort-exp",
            exponential: true,
        }
    }

    fn input(&self, n: usize) -> Vec<i64> {
        if self.exponential {
            exponential_ints(n, 0xE4B)
        } else {
            uniform_ints(n, 0xE4A)
        }
    }
}

struct PreparedSort {
    data: Vec<i64>,
    expected: i64,
}

impl PreparedSort {
    fn run_parallel(&self, ctx: &WorkerCtx<'_>, eager: bool) -> i64 {
        let mut a = self.data.clone();
        let mut tmp = vec![0i64; a.len()];
        let n = a.len();
        parallel_sort(
            crate::SyncPtr::new(a.as_mut_ptr()),
            crate::SyncPtr::new(tmp.as_mut_ptr()),
            0,
            n,
            ctx,
            eager,
        );
        checksum(&a)
    }
}

impl Prepared for PreparedSort {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        let mut a = self.data.clone();
        let mut tmp = vec![0i64; a.len()];
        let n = a.len();
        serial_sort(&mut a, &mut tmp, 0, n);
        checksum(&a)
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        self.run_parallel(ctx, false)
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        self.run_parallel(ctx, true)
    }
}

impl Workload for Mergesort {
    fn name(&self) -> &'static str {
        self.name
    }

    fn is_recursive(&self) -> bool {
        true
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let n = scale.pick(600_000, 10_000_000);
        let data = self.input(n);
        let mut a = data.clone();
        let mut tmp = vec![0i64; n];
        serial_sort(&mut a, &mut tmp, 0, n);
        Box::new(PreparedSort {
            data,
            expected: checksum(&a),
        })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let n = scale.pick(12_000, 60_000);
        let data = self.input(n);
        let mut sorted = data.clone();
        let mut tmp = vec![0i64; n];
        serial_sort(&mut sorted, &mut tmp, 0, n);
        let expected = checksum(&sorted);
        let v = Expr::var;
        let i = Expr::int;

        // msort(a, tmp, lo, hi): recursive sort with latent fork-join and
        // a parallel copy-back loop.
        let msort = Function::new("msort", ["a", "tmp", "lo", "hi"])
            .stmt(Stmt::if_(
                v("hi").sub(v("lo")).le(i(CUTOFF as i64)),
                vec![
                    // Insertion sort a[lo..hi].
                    Stmt::for_(
                        "p",
                        v("lo").add(i(1)),
                        v("hi"),
                        vec![
                            Stmt::assign("x", v("a").load(v("p"))),
                            Stmt::assign("q", v("p")),
                            // The IR `and` is strict, so the guard and the
                            // load must be sequenced with a flag.
                            Stmt::assign("go", i(0)),
                            Stmt::While {
                                cond: v("q").gt(v("lo")).and(v("go").eq_(i(0))),
                                body: vec![Stmt::if_else(
                                    v("a").load(v("q").sub(i(1))).gt(v("x")),
                                    vec![
                                        Stmt::store(v("a"), v("q"), v("a").load(v("q").sub(i(1)))),
                                        Stmt::assign("q", v("q").sub(i(1))),
                                    ],
                                    vec![Stmt::assign("go", i(1))],
                                )],
                            },
                            Stmt::store(v("a"), v("q"), v("x")),
                        ],
                    ),
                    Stmt::Return(i(0)),
                ],
            ))
            .stmt(Stmt::assign(
                "mid",
                v("lo").add(v("hi").sub(v("lo")).div(i(2))),
            ))
            .stmt(Stmt::Par2 {
                left: CallSpec::new("msort", vec![v("a"), v("tmp"), v("lo"), v("mid")], "dl"),
                right: CallSpec::new("msort", vec![v("a"), v("tmp"), v("mid"), v("hi")], "dr"),
            })
            // Two-finger merge into tmp[lo..hi].
            .stmt(Stmt::assign("ii", v("lo")))
            .stmt(Stmt::assign("jj", v("mid")))
            .stmt(Stmt::assign("kk", v("lo")))
            .stmt(Stmt::While {
                cond: v("ii").lt(v("mid")).and(v("jj").lt(v("hi"))),
                body: vec![
                    Stmt::if_else(
                        v("a").load(v("ii")).le(v("a").load(v("jj"))),
                        vec![
                            Stmt::store(v("tmp"), v("kk"), v("a").load(v("ii"))),
                            Stmt::assign("ii", v("ii").add(i(1))),
                        ],
                        vec![
                            Stmt::store(v("tmp"), v("kk"), v("a").load(v("jj"))),
                            Stmt::assign("jj", v("jj").add(i(1))),
                        ],
                    ),
                    Stmt::assign("kk", v("kk").add(i(1))),
                ],
            })
            .stmt(Stmt::While {
                cond: v("ii").lt(v("mid")),
                body: vec![
                    Stmt::store(v("tmp"), v("kk"), v("a").load(v("ii"))),
                    Stmt::assign("ii", v("ii").add(i(1))),
                    Stmt::assign("kk", v("kk").add(i(1))),
                ],
            })
            .stmt(Stmt::While {
                cond: v("jj").lt(v("hi")),
                body: vec![
                    Stmt::store(v("tmp"), v("kk"), v("a").load(v("jj"))),
                    Stmt::assign("jj", v("jj").add(i(1))),
                    Stmt::assign("kk", v("kk").add(i(1))),
                ],
            })
            // Parallel copy-back.
            .stmt(Stmt::ParFor(ParFor::new("c", v("lo"), v("hi")).body(vec![
                Stmt::store(v("a"), v("c"), v("tmp").load(v("c"))),
            ])))
            .stmt(Stmt::Return(i(0)));

        let main = Function::new("main", ["a", "tmp", "n"])
            .stmt(Stmt::call(
                "msort",
                vec![v("a"), v("tmp"), i(0), v("n")],
                None,
            ))
            // Checksum with sortedness flag.
            .stmt(Stmt::assign("h", i(0)))
            .stmt(Stmt::assign("bad", i(0)))
            .stmt(Stmt::for_(
                "p",
                i(0),
                v("n"),
                vec![
                    Stmt::assign(
                        "h",
                        v("h").add(v("a").load(v("p")).mul(v("p").rem(i(9)).add(i(1)))),
                    ),
                    Stmt::if_(
                        v("p").gt(i(0)),
                        vec![Stmt::if_(
                            v("a").load(v("p").sub(i(1))).gt(v("a").load(v("p"))),
                            vec![Stmt::assign("bad", i(1))],
                        )],
                    ),
                ],
            ))
            .stmt(Stmt::Return(v("h").add(v("bad").mul(i(0x5AD)))));

        SimSpec {
            ir: IrProgram::new("main").function(main).function(msort),
            input: SimInput::default()
                .array("a", data)
                .array("tmp", vec![0; n])
                .int("n", n as i64),
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_sort_small() {
        let mut a = vec![5, 3, 8, 1, 9, 2];
        insertion_sort(&mut a);
        assert_eq!(a, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn serial_sort_sorts() {
        let mut a = uniform_ints(10_000, 42);
        let mut tmp = vec![0i64; a.len()];
        let n = a.len();
        serial_sort(&mut a, &mut tmp, 0, n);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn checksum_flags_unsorted() {
        let sorted = vec![1, 2, 3];
        let unsorted = vec![3, 2, 1];
        assert_ne!(checksum(&sorted), checksum(&unsorted));
    }
}
