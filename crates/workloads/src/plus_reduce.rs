//! `plus-reduce-array`: sum an array (the paper's simplest, most
//! fine-grained iterative benchmark — 100 million doubles in Figure 11;
//! exact integers here).

use tpal_cilk::cilk_reduce;
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Reducer, Stmt};
use tpal_rt::WorkerCtx;

use crate::inputs::dense_vector;
use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

/// The `plus-reduce-array` workload.
pub struct PlusReduceArray;

struct PreparedReduce {
    data: Vec<i64>,
    expected: i64,
}

fn sum_serial(data: &[i64]) -> i64 {
    let mut s = 0i64;
    for &x in data {
        s = s.wrapping_add(x);
    }
    s
}

impl Prepared for PreparedReduce {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        sum_serial(&self.data)
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let data = &self.data;
        ctx.reduce(
            0..data.len(),
            0i64,
            |_, i, acc| acc.wrapping_add(data[i]),
            |a, b| a.wrapping_add(b),
        )
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let data = &self.data;
        cilk_reduce(
            ctx,
            0..data.len(),
            0i64,
            &|_, i, acc| acc.wrapping_add(data[i]),
            &|a, b| a.wrapping_add(b),
        )
    }
}

impl Workload for PlusReduceArray {
    fn name(&self) -> &'static str {
        "plus-reduce-array"
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let n = scale.pick(10_000_000, 60_000_000);
        let data = dense_vector(n, 0xA11CE);
        let expected = sum_serial(&data);
        Box::new(PreparedReduce { data, expected })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let n = scale.pick(250_000, 1_200_000);
        let data = dense_vector(n, 0xA11CE);
        let expected = sum_serial(&data);
        let f = Function::new("main", ["a", "n"])
            .stmt(Stmt::assign("s", Expr::int(0)))
            .stmt(Stmt::ParFor(
                ParFor::new("i", Expr::int(0), Expr::var("n"))
                    .body(vec![Stmt::assign(
                        "s",
                        Expr::var("s").add(Expr::var("a").load(Expr::var("i"))),
                    )])
                    .reducer(Reducer::new("s", tpal_core::isa::BinOp::Add, 0)),
            ))
            .stmt(Stmt::Return(Expr::var("s")));
        SimSpec {
            ir: IrProgram::new("main").function(f),
            input: SimInput::default().array("a", data).int("n", n as i64),
            expected,
        }
    }
}
