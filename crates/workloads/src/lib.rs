//! The TPAL benchmark suite (§4.1 of the paper).
//!
//! Twelve workloads, exactly the paper's:
//!
//! *Iterative*: `plus-reduce-array`, `spmv` (random / powerlaw /
//! arrowhead matrices), `mandelbrot`, `kmeans`, `srad`,
//! `floyd-warshall` (two sizes). *Recursive*: `knapsack`, `mergesort`
//! (uniform / exponential inputs).
//!
//! Every workload exists in four builds from one specification:
//!
//! * **serial** — plain Rust, the `Serial/Linux` baseline;
//! * **heartbeat** — against the native `tpal-rt` runtime (latent
//!   parallelism, promoted on heartbeats);
//! * **cilk** — against the eager `tpal-cilk` baseline (`8P` loop
//!   grains, spawn-per-fork);
//! * **sim** — an IR program ([`tpal_ir`]) lowered serial / heartbeat /
//!   eager and executed on the `tpal-sim` multicore simulator (arithmetic
//!   in exact integers / fixed point so results are schedule-independent).
//!
//! All four compute the same integer checksum, which the test-suite and
//! the benchmark harness verify on every run.

#![warn(missing_docs)]

pub mod floyd_warshall;
pub mod inputs;
pub mod kmeans;
pub mod knapsack;
pub mod mandelbrot;
pub mod mergesort;
pub mod plus_reduce;
pub mod spmv;
pub mod srad;

use tpal_cilk::CilkRuntime;
use tpal_ir::IrProgram;
use tpal_rt::{Runtime, WorkerCtx};

/// Input scale: `Quick` keeps native runs in milliseconds and simulated
/// runs in a few million instructions; `Full` is for unattended
/// benchmark runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs (CI and `TPAL_BENCH_MODE=quick`).
    Quick,
    /// Large inputs (`TPAL_BENCH_MODE=full`).
    Full,
}

impl Scale {
    /// Reads the scale from `TPAL_BENCH_MODE` (`quick` unless `full`).
    pub fn from_env() -> Scale {
        match std::env::var("TPAL_BENCH_MODE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Selects between the two scales.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Inputs for a simulator run of a lowered IR program.
#[derive(Debug, Clone, Default)]
pub struct SimInput {
    /// Named input arrays (allocated on the machine heap; the entry
    /// parameter of the same name receives the base address).
    pub arrays: Vec<(String, Vec<i64>)>,
    /// Named integer parameters.
    pub ints: Vec<(String, i64)>,
}

impl SimInput {
    /// Adds an array parameter.
    pub fn array(mut self, name: &str, data: Vec<i64>) -> Self {
        self.arrays.push((name.to_owned(), data));
        self
    }

    /// Adds an integer parameter.
    pub fn int(mut self, name: &str, v: i64) -> Self {
        self.ints.push((name.to_owned(), v));
        self
    }
}

/// A workload's simulator specification: the IR program, its inputs, and
/// the expected checksum.
pub struct SimSpec {
    /// The IR program (lower it in any [`tpal_ir::Mode`]).
    pub ir: IrProgram,
    /// The inputs.
    pub input: SimInput,
    /// The expected result-register value.
    pub expected: i64,
}

/// A prepared (input-materialised) native workload instance.
pub trait Prepared: Send + Sync {
    /// The expected checksum.
    fn expected(&self) -> i64;
    /// Runs the plain serial kernel.
    fn run_serial(&self) -> i64;
    /// Runs the heartbeat kernel on a `tpal-rt` worker.
    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64;
    /// Runs the eager kernel on a `tpal-cilk` worker.
    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64;
}

/// A benchmark of the suite.
pub trait Workload: Send + Sync {
    /// The paper's benchmark name (e.g. `spmv-powerlaw`).
    fn name(&self) -> &'static str;
    /// Whether the paper groups it under "Recursive Benchmarks".
    fn is_recursive(&self) -> bool {
        false
    }
    /// Materialises native inputs.
    fn prepare(&self, scale: Scale) -> Box<dyn Prepared>;
    /// Builds the simulator specification.
    fn sim_spec(&self, scale: Scale) -> SimSpec;
}

/// All twelve workloads, in the paper's figure order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(plus_reduce::PlusReduceArray),
        Box::new(spmv::Spmv::random()),
        Box::new(spmv::Spmv::powerlaw()),
        Box::new(spmv::Spmv::arrowhead()),
        Box::new(mandelbrot::Mandelbrot),
        Box::new(kmeans::Kmeans),
        Box::new(srad::Srad),
        Box::new(floyd_warshall::FloydWarshall::small()),
        Box::new(floyd_warshall::FloydWarshall::large()),
        Box::new(knapsack::Knapsack),
        Box::new(mergesort::Mergesort::uniform()),
        Box::new(mergesort::Mergesort::exponential()),
    ]
}

/// Convenience: looks a workload up by name.
pub fn workload(name: &str) -> Option<Box<dyn Workload>> {
    all_workloads().into_iter().find(|w| w.name() == name)
}

/// A shared mutable `i64` buffer written at provably disjoint indices
/// by parallel tasks (each workload documents its disjointness
/// argument at the use site).
pub(crate) struct SyncPtr(*mut i64);

unsafe impl Sync for SyncPtr {}
unsafe impl Send for SyncPtr {}

impl SyncPtr {
    pub(crate) fn new(p: *mut i64) -> SyncPtr {
        SyncPtr(p)
    }

    /// Writes `v` at index `i`.
    ///
    /// # Safety
    ///
    /// No other task may access index `i` concurrently.
    #[inline]
    pub(crate) unsafe fn write(&self, i: usize, v: i64) {
        unsafe { *self.0.add(i) = v }
    }

    /// Reads index `i`.
    ///
    /// # Safety
    ///
    /// No other task may write index `i` concurrently.
    #[inline]
    pub(crate) unsafe fn read(&self, i: usize) -> i64 {
        unsafe { *self.0.add(i) }
    }

    /// The raw pointer.
    pub(crate) fn as_ptr(&self) -> *mut i64 {
        self.0
    }
}

/// Runs a prepared workload's heartbeat kernel on a runtime.
pub fn run_heartbeat_on(rt: &Runtime, p: &dyn Prepared) -> i64 {
    rt.run(|ctx| p.run_heartbeat(ctx))
}

/// Runs a prepared workload's cilk kernel on a runtime.
pub fn run_cilk_on(rt: &CilkRuntime, p: &dyn Prepared) -> i64 {
    rt.run(|ctx| p.run_cilk(ctx))
}
