//! `kmeans`: Lloyd's algorithm over clustered integer points (ported
//! from Rodinia, as in §4.1; 1 million objects in the paper). Each outer
//! iteration assigns every point to its nearest centroid in parallel
//! (the promotable loop) and recomputes centroids serially — like the
//! paper's TPAL port, the parallel phase accumulates into an auxiliary
//! structure rather than the centroids themselves (§4.4).

use tpal_cilk::cilk_reduce;
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Stmt};
use tpal_rt::WorkerCtx;

use crate::inputs::kmeans_points;
use crate::{Prepared, Scale, SimInput, SimSpec, Workload};

const DIMS: usize = 4;
const CLUSTERS: usize = 5;
const ROUNDS: usize = 4;

fn dist2(p: &[i64], c: &[i64]) -> i64 {
    let mut s = 0i64;
    for j in 0..DIMS {
        let d = p[j] - c[j];
        s += d * d;
    }
    s
}

fn nearest(p: &[i64], centroids: &[i64]) -> usize {
    let mut best = 0usize;
    let mut bd = i64::MAX;
    for c in 0..CLUSTERS {
        let d = dist2(p, &centroids[c * DIMS..(c + 1) * DIMS]);
        if d < bd {
            bd = d;
            best = c;
        }
    }
    best
}

/// Serial reference: runs `ROUNDS` Lloyd iterations, returns a checksum
/// over final memberships and centroids.
fn kmeans_serial(points: &[i64], n: usize) -> i64 {
    let mut centroids: Vec<i64> = points[..CLUSTERS * DIMS].to_vec();
    let mut members = vec![0i64; n];
    for _ in 0..ROUNDS {
        for i in 0..n {
            members[i] = nearest(&points[i * DIMS..(i + 1) * DIMS], &centroids) as i64;
        }
        recompute(points, n, &members, &mut centroids);
    }
    checksum(&members, &centroids)
}

fn recompute(points: &[i64], n: usize, members: &[i64], centroids: &mut [i64]) {
    let mut sums = [0i64; CLUSTERS * DIMS];
    let mut counts = [0i64; CLUSTERS];
    for i in 0..n {
        let c = members[i] as usize;
        counts[c] += 1;
        for j in 0..DIMS {
            sums[c * DIMS + j] += points[i * DIMS + j];
        }
    }
    for c in 0..CLUSTERS {
        if counts[c] > 0 {
            for j in 0..DIMS {
                centroids[c * DIMS + j] = sums[c * DIMS + j] / counts[c];
            }
        }
    }
}

fn checksum(members: &[i64], centroids: &[i64]) -> i64 {
    let mut h = 0i64;
    for (i, &m) in members.iter().enumerate() {
        h = h.wrapping_add(m.wrapping_mul(1 + (i as i64 % 7)));
    }
    for &c in centroids {
        h = h.wrapping_add(c);
    }
    h
}

/// The `kmeans` workload.
pub struct Kmeans;

struct PreparedKmeans {
    points: Vec<i64>,
    n: usize,
    expected: i64,
}

impl Prepared for PreparedKmeans {
    fn expected(&self) -> i64 {
        self.expected
    }

    fn run_serial(&self) -> i64 {
        kmeans_serial(&self.points, self.n)
    }

    fn run_heartbeat(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (points, n) = (&self.points, self.n);
        let mut centroids: Vec<i64> = points[..CLUSTERS * DIMS].to_vec();
        let mut members = vec![0i64; n];
        for _ in 0..ROUNDS {
            let c = centroids.clone();
            let mslice = crate::SyncPtr::new(members.as_mut_ptr());
            let mslice = &mslice;
            ctx.parallel_for(0..n, |_, i| {
                let m = nearest(&points[i * DIMS..(i + 1) * DIMS], &c) as i64;
                // SAFETY: each index written exactly once per round.
                unsafe { mslice.write(i, m) };
            });
            recompute(points, n, &members, &mut centroids);
        }
        checksum(&members, &centroids)
    }

    fn run_cilk(&self, ctx: &WorkerCtx<'_>) -> i64 {
        let (points, n) = (&self.points, self.n);
        let mut centroids: Vec<i64> = points[..CLUSTERS * DIMS].to_vec();
        let mut members = vec![0i64; n];
        for _ in 0..ROUNDS {
            let c = centroids.clone();
            let mslice = crate::SyncPtr::new(members.as_mut_ptr());
            let mslice = &mslice;
            // cilk_for over points; reduction unused (membership writes).
            let _ = cilk_reduce(
                ctx,
                0..n,
                0i64,
                &|_, i, acc| {
                    let m = nearest(&points[i * DIMS..(i + 1) * DIMS], &c) as i64;
                    // SAFETY: each index written exactly once per round.
                    unsafe { mslice.write(i, m) };
                    acc
                },
                &|a, b| a + b,
            );
            recompute(points, n, &members, &mut centroids);
        }
        checksum(&members, &centroids)
    }
}

impl Workload for Kmeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn prepare(&self, scale: Scale) -> Box<dyn Prepared> {
        let n = scale.pick(150_000, 1_000_000);
        let points = kmeans_points(n, DIMS, CLUSTERS, 0x4B4D);
        let expected = kmeans_serial(&points, n);
        Box::new(PreparedKmeans {
            points,
            n,
            expected,
        })
    }

    fn sim_spec(&self, scale: Scale) -> SimSpec {
        let n = scale.pick(2_500, 12_000);
        let points = kmeans_points(n, DIMS, CLUSTERS, 0x4B4D);
        let expected = kmeans_serial(&points, n);
        let v = Expr::var;
        let i = Expr::int;

        // The assignment phase as a ParFor; centroid recomputation and
        // the membership checksum run serially per round.
        let assign_body = vec![
            Stmt::assign("best", i(0)),
            Stmt::assign("bd", i(i64::MAX)),
            Stmt::for_(
                "c",
                i(0),
                i(CLUSTERS as i64),
                vec![
                    Stmt::assign("d", i(0)),
                    Stmt::for_(
                        "j",
                        i(0),
                        i(DIMS as i64),
                        vec![
                            Stmt::assign(
                                "dj",
                                v("pts")
                                    .load(v("p").mul(i(DIMS as i64)).add(v("j")))
                                    .sub(v("cent").load(v("c").mul(i(DIMS as i64)).add(v("j")))),
                            ),
                            Stmt::assign("d", v("d").add(v("dj").mul(v("dj")))),
                        ],
                    ),
                    Stmt::if_(
                        v("d").lt(v("bd")),
                        vec![Stmt::assign("bd", v("d")), Stmt::assign("best", v("c"))],
                    ),
                ],
            ),
            Stmt::store(v("mem"), v("p"), v("best")),
        ];

        let f = Function::new("main", ["pts", "cent", "mem", "sums", "counts", "n"])
            .stmt(Stmt::for_(
                "round",
                i(0),
                i(ROUNDS as i64),
                vec![
                    Stmt::ParFor(ParFor::new("p", i(0), v("n")).body(assign_body.clone())),
                    // Clear accumulators.
                    Stmt::for_(
                        "c",
                        i(0),
                        i(CLUSTERS as i64),
                        vec![
                            Stmt::store(v("counts"), v("c"), i(0)),
                            Stmt::for_(
                                "j",
                                i(0),
                                i(DIMS as i64),
                                vec![Stmt::store(
                                    v("sums"),
                                    v("c").mul(i(DIMS as i64)).add(v("j")),
                                    i(0),
                                )],
                            ),
                        ],
                    ),
                    // Accumulate and recompute (serial).
                    Stmt::for_(
                        "p",
                        i(0),
                        v("n"),
                        vec![
                            Stmt::assign("m", v("mem").load(v("p"))),
                            Stmt::store(v("counts"), v("m"), v("counts").load(v("m")).add(i(1))),
                            Stmt::for_(
                                "j",
                                i(0),
                                i(DIMS as i64),
                                vec![Stmt::store(
                                    v("sums"),
                                    v("m").mul(i(DIMS as i64)).add(v("j")),
                                    v("sums")
                                        .load(v("m").mul(i(DIMS as i64)).add(v("j")))
                                        .add(v("pts").load(v("p").mul(i(DIMS as i64)).add(v("j")))),
                                )],
                            ),
                        ],
                    ),
                    Stmt::for_(
                        "c",
                        i(0),
                        i(CLUSTERS as i64),
                        vec![Stmt::if_(
                            v("counts").load(v("c")).gt(i(0)),
                            vec![Stmt::for_(
                                "j",
                                i(0),
                                i(DIMS as i64),
                                vec![Stmt::store(
                                    v("cent"),
                                    v("c").mul(i(DIMS as i64)).add(v("j")),
                                    v("sums")
                                        .load(v("c").mul(i(DIMS as i64)).add(v("j")))
                                        .div(v("counts").load(v("c"))),
                                )],
                            )],
                        )],
                    ),
                ],
            ))
            // Checksum.
            .stmt(Stmt::assign("h", i(0)))
            .stmt(Stmt::for_(
                "p",
                i(0),
                v("n"),
                vec![Stmt::assign(
                    "h",
                    v("h").add(v("mem").load(v("p")).mul(v("p").rem(i(7)).add(i(1)))),
                )],
            ))
            .stmt(Stmt::for_(
                "c",
                i(0),
                i((CLUSTERS * DIMS) as i64),
                vec![Stmt::assign("h", v("h").add(v("cent").load(v("c"))))],
            ))
            .stmt(Stmt::Return(v("h")));

        SimSpec {
            ir: IrProgram::new("main").function(f),
            input: SimInput::default()
                .array("pts", points.clone())
                .array("cent", points[..CLUSTERS * DIMS].to_vec())
                .array("mem", vec![0; n])
                .array("sums", vec![0; CLUSTERS * DIMS])
                .array("counts", vec![0; CLUSTERS])
                .int("n", n as i64),
            expected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_kmeans_is_deterministic() {
        let pts = kmeans_points(500, DIMS, CLUSTERS, 1);
        assert_eq!(kmeans_serial(&pts, 500), kmeans_serial(&pts, 500));
    }

    #[test]
    fn nearest_picks_closest() {
        let centroids = vec![
            0, 0, 0, 0, 100, 100, 100, 100, -50, -50, -50, -50, 7, 7, 7, 7, 1, 2, 3, 4,
        ];
        assert_eq!(nearest(&[99, 99, 99, 101], &centroids), 1);
        assert_eq!(nearest(&[-49, -51, -50, -50], &centroids), 2);
    }
}
