//! A tiny deterministic RNG for reproducible scheduling decisions.

/// SplitMix64: fast, well-distributed, and trivially seedable. Used for
/// steal-victim selection and signal-delivery jitter so that every
/// simulation is a pure function of its seed. (Historically lived in
/// `tpal-sim`, which still re-exports it; it moved here with the rest of
/// the scheduling decisions.)
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, n)`; `n` must be positive.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Advances the stream past `n` draws in O(1), leaving the generator
    /// exactly as if [`Self::next_u64`] had been called `n` times and the
    /// results discarded. SplitMix64's state walks a fixed-increment
    /// Weyl sequence, so skipping is a single multiply-add.
    ///
    /// The simulator uses this to fast-forward over steal attempts whose
    /// failure is forced (every deque empty): the drawn victims are never
    /// observable, but the stream position after them is.
    #[inline]
    pub fn skip(&mut self, n: u64) {
        self.state = self
            .state
            .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn skip_matches_discarded_draws() {
        for n in [0u64, 1, 2, 7, 1000] {
            let mut fast = SplitMix64::new(0xABCD);
            let mut slow = SplitMix64::new(0xABCD);
            fast.skip(n);
            for _ in 0..n {
                slow.next_u64();
            }
            assert_eq!(fast.next_u64(), slow.next_u64(), "after skipping {n}");
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
