//! Heartbeat delivery: how beats reach the cores (§3.2 and §5 of the
//! paper), in both domains.
//!
//! The cycle domain (simulator) configures an [`InterruptModel`] and
//! advances deadlines/ping rounds through [`HeartbeatDelivery`] and
//! [`PingChain`]. The tick domain (native runtime) configures a
//! [`HeartbeatSource`] and polls a per-worker [`HeartbeatCell`]. The
//! mechanisms correspond pairwise: `PerCoreTimer`/`JitteredTimer` ↔
//! `LocalTimer`, `PingThread` ↔ `PingThread`, `Disabled` ↔ `Disabled`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::env::SchedEnv;

/// How heartbeat interrupts reach simulated cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterruptModel {
    /// Per-core timer interrupts (Nautilus: APIC timer + Nemo IPIs).
    /// Every core's flag is raised exactly every ♥ cycles; servicing
    /// costs `service_cost` cycles on the interrupted core.
    PerCoreTimer {
        /// Cycles charged to the core per delivered interrupt.
        service_cost: u64,
    },
    /// Per-core timers whose expiries wander: each delivery re-arms at
    /// `♥ + U[0, jitter]` cycles, modelling timers that cannot hold an
    /// exact period (coalescing, shared timer wheels). The mean beat
    /// interval is `♥ + jitter/2`.
    JitteredTimer {
        /// Uniform jitter added to each re-armed deadline, `[0, jitter]`.
        jitter: u64,
        /// Cycles charged to the core per delivered interrupt.
        service_cost: u64,
    },
    /// A dedicated ping thread delivering OS signals to the cores one at
    /// a time (the Linux INT-PingThread mechanism). Each delivery
    /// occupies the signaller for `latency ± jitter` cycles, so a full
    /// round over `P` cores takes about `P × latency`; when that exceeds
    /// ♥ the target heartbeat rate is missed, as in Figure 10.
    PingThread {
        /// Signaller cycles per delivered signal.
        latency: u64,
        /// Uniform jitter added to each delivery, `[0, jitter]`.
        jitter: u64,
        /// Cycles charged to the receiving core per signal (kernel
        /// signal-frame overhead).
        service_cost: u64,
    },
    /// No heartbeats: latent parallelism is never promoted.
    Disabled,
}

/// A uniform draw in `[0, jitter]`, drawing only when there is any
/// jitter (so jitter-free configurations consume no stream positions).
#[inline]
fn jitter_draw<E: SchedEnv>(env: &mut E, jitter: u64) -> u64 {
    if jitter > 0 {
        env.rand_below(jitter + 1)
    } else {
        0
    }
}

/// The delivery-policy face of the trait family: what the engines ask
/// of a delivery mechanism. Implemented by [`InterruptModel`] (cycle
/// domain) and [`HeartbeatSource`] (tick domain).
pub trait HeartbeatDelivery {
    /// Whether any delivery ever happens.
    fn enabled(&self) -> bool;

    /// Time charged to the receiving core per delivery (the tick
    /// domain's cost is real and therefore 0 here).
    fn service_cost(&self) -> u64;

    /// The deadline following a delivery whose previous deadline was
    /// `prev`, for per-core timer mechanisms. Jittered mechanisms draw
    /// from `env` at this point — delivery order *is* stream order.
    fn next_deadline<E: SchedEnv>(&self, env: &mut E, prev: u64, interval: u64) -> u64;
}

impl HeartbeatDelivery for InterruptModel {
    fn enabled(&self) -> bool {
        !matches!(self, InterruptModel::Disabled)
    }

    fn service_cost(&self) -> u64 {
        match *self {
            InterruptModel::PerCoreTimer { service_cost }
            | InterruptModel::JitteredTimer { service_cost, .. }
            | InterruptModel::PingThread { service_cost, .. } => service_cost,
            InterruptModel::Disabled => 0,
        }
    }

    fn next_deadline<E: SchedEnv>(&self, env: &mut E, prev: u64, interval: u64) -> u64 {
        match *self {
            InterruptModel::PerCoreTimer { .. } => prev + interval,
            InterruptModel::JitteredTimer { jitter, .. } => {
                prev + interval + jitter_draw(env, jitter)
            }
            // The ping thread has no per-core deadlines; its schedule is
            // the PingChain's.
            InterruptModel::PingThread { .. } => prev + interval,
            InterruptModel::Disabled => u64::MAX,
        }
    }
}

impl InterruptModel {
    /// The signaller occupancy of one ping delivery: `latency` plus the
    /// jitter draw. Only meaningful for [`InterruptModel::PingThread`];
    /// 0 (and no draw) otherwise.
    pub fn ping_delay<E: SchedEnv>(&self, env: &mut E) -> u64 {
        match *self {
            InterruptModel::PingThread {
                latency, jitter, ..
            } => latency + jitter_draw(env, jitter),
            _ => 0,
        }
    }
}

/// The ping-thread signaller's schedule: which core the next signal
/// targets and when, delivering round-robin and resting between rounds
/// so each round starts no earlier than one ♥ after the previous one.
/// Both simulator engines previously each hand-rolled this round-wrap
/// arithmetic; it lives here once now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingChain {
    /// The core the next signal targets.
    pub next_core: usize,
    /// When the next signal lands. Maintained strictly increasing: at
    /// most one delivery per time unit.
    pub next_time: u64,
    /// When the current round nominally began.
    pub round_start: u64,
}

impl PingChain {
    /// A signaller whose first delivery (to core 0) lands at
    /// `first_time`, opening a round that nominally begins at
    /// `round_start`.
    pub fn new(first_time: u64, round_start: u64) -> PingChain {
        PingChain {
            next_core: 0,
            next_time: first_time,
            round_start,
        }
    }

    /// Advances past a delivery performed at `now` that occupied the
    /// signaller for `delay`: targets the next core, or wraps the round
    /// and rests until the next beat boundary. `next_time` is clamped
    /// strictly past `now` (one delivery per time unit).
    pub fn advance(&mut self, now: u64, cores: usize, interval: u64, delay: u64) {
        self.next_core += 1;
        if self.next_core == cores {
            // Round complete: rest until the next beat.
            self.next_core = 0;
            self.round_start += interval;
            self.next_time = (now + delay).max(self.round_start);
        } else {
            self.next_time = now + delay;
        }
        self.next_time = self.next_time.max(now + 1);
    }
}

/// How heartbeats reach native workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeartbeatSource {
    /// A dedicated thread raises each worker's flag in turn every ♥
    /// (the Linux `INT-PingThread` mechanism: simple, linear, jittery).
    PingThread,
    /// Each worker compares the CPU timestamp counter against a private
    /// deadline at promotion-ready points (the Nautilus per-core APIC
    /// timer mechanism: precise, no cross-thread traffic).
    LocalTimer,
    /// Heartbeats never fire; latent parallelism is never promoted.
    Disabled,
}

impl HeartbeatDelivery for HeartbeatSource {
    fn enabled(&self) -> bool {
        !matches!(self, HeartbeatSource::Disabled)
    }

    fn service_cost(&self) -> u64 {
        0
    }

    fn next_deadline<E: SchedEnv>(&self, _env: &mut E, prev: u64, interval: u64) -> u64 {
        prev.wrapping_add(interval)
    }
}

/// Per-worker heartbeat state: the delivery half of the native domain.
/// The clock is passed in ([`HeartbeatCell::poll`] takes a `now`
/// closure) so the cell itself stays domain-neutral and testable.
#[derive(Debug)]
pub struct HeartbeatCell {
    /// Raised by the ping thread; consumed at promotion-ready points.
    pub flag: AtomicBool,
    /// Next local-timer deadline in ticks.
    pub deadline: AtomicU64,
    /// Heartbeats delivered to this worker.
    pub delivered: AtomicU64,
}

impl Default for HeartbeatCell {
    fn default() -> Self {
        HeartbeatCell::new()
    }
}

impl HeartbeatCell {
    /// A cell with no pending beat and an unarmed timer.
    pub fn new() -> Self {
        HeartbeatCell {
            flag: AtomicBool::new(false),
            deadline: AtomicU64::new(u64::MAX),
            delivered: AtomicU64::new(0),
        }
    }

    /// Ping-thread delivery.
    pub fn raise(&self) {
        self.flag.store(true, Ordering::Release);
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// The promotion-point check. Returns `true` when a heartbeat is due
    /// on this worker under the given source; `now` is read lazily (only
    /// the local-timer source consults the clock).
    #[inline]
    pub fn poll(
        &self,
        source: HeartbeatSource,
        interval_ticks: u64,
        now: impl FnOnce() -> u64,
    ) -> bool {
        match source {
            HeartbeatSource::Disabled => false,
            HeartbeatSource::PingThread => {
                // One relaxed load in the common case.
                if self.flag.load(Ordering::Relaxed) {
                    self.flag.store(false, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            HeartbeatSource::LocalTimer => {
                let now = now();
                let deadline = self.deadline.load(Ordering::Relaxed);
                if now >= deadline {
                    self.deadline
                        .store(now.wrapping_add(interval_ticks), Ordering::Relaxed);
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Clears the delivery counter. Must be part of every stats reset:
    /// delivery is counted here per worker rather than in any shared
    /// counter block, so resetting only shared counters would leave
    /// later serviced/delivered ratios computed against a stale
    /// cumulative denominator.
    pub fn reset_delivery(&self) {
        self.delivered.store(0, Ordering::Relaxed);
    }

    /// Arms the local timer: first deadline one interval from `now`.
    pub fn arm(&self, interval_ticks: u64, now: u64) {
        self.deadline
            .store(now.wrapping_add(interval_ticks), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RngEnv;
    use crate::rng::SplitMix64;

    #[test]
    fn ping_flag_consumed_once() {
        let c = HeartbeatCell::new();
        assert!(!c.poll(HeartbeatSource::PingThread, 0, || 0));
        c.raise();
        assert!(c.poll(HeartbeatSource::PingThread, 0, || 0));
        assert!(!c.poll(HeartbeatSource::PingThread, 0, || 0));
        assert_eq!(c.delivered.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn disabled_never_beats() {
        let c = HeartbeatCell::new();
        c.raise();
        assert!(!c.poll(HeartbeatSource::Disabled, 0, || 0));
    }

    #[test]
    fn local_timer_beats_after_deadline_and_rearms() {
        let c = HeartbeatCell::new();
        c.arm(100, 0);
        assert!(!c.poll(HeartbeatSource::LocalTimer, 100, || 99));
        assert!(c.poll(HeartbeatSource::LocalTimer, 100, || 100));
        // Re-armed at now + interval.
        assert!(!c.poll(HeartbeatSource::LocalTimer, 100, || 199));
        assert!(c.poll(HeartbeatSource::LocalTimer, 100, || 200));
        assert_eq!(c.delivered.load(Ordering::Relaxed), 2);
        c.reset_delivery();
        assert_eq!(c.delivered.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn ping_chain_rests_between_rounds() {
        // 3 cores, ♥ = 100, zero-latency deliveries: three deliveries
        // back to back, then rest until the next beat boundary.
        let mut chain = PingChain::new(100, 100);
        chain.advance(100, 3, 100, 0);
        assert_eq!((chain.next_core, chain.next_time), (1, 101));
        chain.advance(101, 3, 100, 0);
        assert_eq!((chain.next_core, chain.next_time), (2, 102));
        chain.advance(102, 3, 100, 0);
        assert_eq!((chain.next_core, chain.next_time), (0, 200));
        assert_eq!(chain.round_start, 200);
    }

    #[test]
    fn ping_chain_slow_round_slips_past_beat() {
        // A round slower than ♥ starts the next one immediately (the
        // Figure 10 missed-rate regime).
        let mut chain = PingChain::new(100, 100);
        chain.advance(100, 2, 100, 90);
        assert_eq!((chain.next_core, chain.next_time), (1, 190));
        chain.advance(190, 2, 100, 90);
        assert_eq!((chain.next_core, chain.next_time), (0, 280));
    }

    #[test]
    fn jittered_timer_draws_only_with_jitter() {
        let mut rng = SplitMix64::new(5);
        let position = rng.clone().next_u64();
        let m = InterruptModel::JitteredTimer {
            jitter: 0,
            service_cost: 1,
        };
        let mut env = RngEnv::new(&mut rng, 0, 1);
        assert_eq!(m.next_deadline(&mut env, 500, 100), 600);
        assert_eq!(rng.next_u64(), position, "jitter 0 must not draw");

        let mut rng = SplitMix64::new(5);
        let m = InterruptModel::JitteredTimer {
            jitter: 8,
            service_cost: 1,
        };
        let mut env = RngEnv::new(&mut rng, 0, 1);
        let d = m.next_deadline(&mut env, 500, 100);
        assert!((600..=608).contains(&d));
    }

    #[test]
    fn service_costs_and_enablement() {
        use super::HeartbeatDelivery as _;
        assert!(!InterruptModel::Disabled.enabled());
        assert_eq!(
            InterruptModel::PerCoreTimer { service_cost: 5 }.service_cost(),
            5
        );
        assert!(HeartbeatSource::LocalTimer.enabled());
        assert!(!HeartbeatSource::Disabled.enabled());
        assert_eq!(HeartbeatSource::PingThread.service_cost(), 0);
    }
}
