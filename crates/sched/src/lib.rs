//! The scheduler-policy kernel shared by the simulator and the native
//! runtime.
//!
//! Heartbeat scheduling's guarantees come from *policy* — when latent
//! parallelism is promoted, whom a thief probes, how heartbeats reach
//! the workers — and this crate owns every one of those decisions in
//! exactly one place. The two execution substrates differ only in their
//! *domain*: the simulator counts virtual cycles and draws randomness
//! from a seeded stream; the native runtime reads the CPU timestamp
//! counter. Both are abstracted by the tiny [`SchedEnv`] trait (clock,
//! RNG, core count), so the identical policy code drives both.
//!
//! The policy surface is a trait family with built-in implementations:
//!
//! * [`PromotionPolicy`] / [`Promotion`] — when a promotion-ready point
//!   promotes: on the heartbeat (the paper's scheme), eagerly at every
//!   opportunity (initial decomposition), never ("serial, interrupts
//!   only"), or adaptively with a minimum spacing τ.
//! * [`VictimPolicy`] / [`Victim`] — whom a thief probes: one uniform
//!   draw per probe, the proven [`victim_sequence`] salted sweep, or a
//!   locality-salted per-thief fixed order.
//! * [`HeartbeatDelivery`] / [`InterruptModel`] / [`HeartbeatSource`] —
//!   how beats reach cores: exact per-core timers, jittered timers, a
//!   modelled ping thread ([`PingChain`]), or a native flag/deadline
//!   cell ([`HeartbeatCell`]).
//!
//! A [`Policy`] bundles one promotion policy with one victim policy and
//! threads through `SimConfig`, `RtConfig`, and `tpal-run --policy`.

#![warn(missing_docs)]

mod delivery;
mod env;
mod policy;
mod promote;
mod rng;
mod victim;

pub use delivery::{HeartbeatCell, HeartbeatDelivery, HeartbeatSource, InterruptModel, PingChain};
pub use env::{RngEnv, SchedEnv};
pub use policy::Policy;
pub use promote::{PromoteState, PromoteStep, Promotion, PromotionPolicy};
pub use rng::SplitMix64;
pub use victim::{victim_sequence, Victim, VictimPolicy};
