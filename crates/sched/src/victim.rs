//! Steal-victim selection policies.

use crate::env::SchedEnv;

/// The `k`-th victim of the deterministic salted sweep for thief `id`
/// in a pool of `n`: `(id + 1 + (salt + k) % (n - 1)) % n`. For
/// `k in 0..n-1` this hits each of the other workers exactly once —
/// never `id` itself, never a duplicate. Requires `n >= 2`.
#[inline]
fn kth_victim(id: usize, n: usize, salt: u64, k: u64) -> usize {
    debug_assert!(n >= 2);
    (id + 1 + ((salt.wrapping_add(k)) % (n as u64 - 1)) as usize) % n
}

/// The victim probe order for worker `id` in a pool of `n`: every one of
/// the other `n - 1` workers exactly once, starting at a salt-chosen
/// offset (so concurrent thieves spread out). Empty for `n <= 1`.
///
/// The offsets `1 + (salt + k) % (n - 1)` for `k in 0..n-1` hit each of
/// `1..n` exactly once, so the sequence can neither probe the same victim
/// twice nor yield `id` itself. (An earlier version, then private to the
/// native runtime's pool, iterated `k in 0..n`, re-probing its first
/// victim on the final iteration — a wasted steal attempt per failed
/// round — and carried a dead `v == id` guard.)
pub fn victim_sequence(id: usize, n: usize, salt: usize) -> impl Iterator<Item = usize> {
    (0..n.saturating_sub(1) as u64).map(move |k| kth_victim(id, n, salt as u64, k))
}

/// A stable per-thief salt for [`Victim::Locality`]: thieves keep a
/// fixed probe order (so repeated steals revisit the same victims, in
/// cache-warm order) that still differs between thieves.
#[inline]
fn locality_salt(id: usize) -> u64 {
    (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

/// How a thief chooses whom to probe. Implemented by [`Victim`]; the
/// engines are generic in spirit but statically use the built-in enum.
pub trait VictimPolicy {
    /// RNG draws one probe consumes. The simulator's parked-core
    /// fast-forward uses this to advance the stream past `k` forced
    /// failures in O(1) (`skip(k × draws_per_probe)`).
    fn draws_per_probe(&self) -> u64;

    /// The victim for probe number `k` of thief `id`, where `salt`
    /// seeds the deterministic orders (the native runtime passes a
    /// fresh sweep salt per round; the simulator passes 0 and a
    /// monotone per-core `k`). Randomized policies draw from `env`.
    /// Requires at least two workers.
    fn probe<E: SchedEnv>(&self, env: &mut E, id: usize, salt: u64, k: u64) -> usize;
}

/// The built-in victim-selection policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// One uniformly random *other* core per probe — the simulator's
    /// historical behaviour: `(id + 1 + rand(n - 1)) % n`.
    Uniform,
    /// The deterministic salted sweep [`victim_sequence`] — the native
    /// runtime's behaviour: each round probes every other worker
    /// exactly once from a salt-rotated start.
    Sequence,
    /// [`victim_sequence`] with a stable per-thief salt: every thief
    /// keeps one fixed probe order for the whole run (locality).
    Locality,
}

// Probes run on the steal hot path in a different crate, so
// cross-crate inlining must be explicit.
impl VictimPolicy for Victim {
    #[inline]
    fn draws_per_probe(&self) -> u64 {
        match self {
            Victim::Uniform => 1,
            Victim::Sequence | Victim::Locality => 0,
        }
    }

    #[inline]
    fn probe<E: SchedEnv>(&self, env: &mut E, id: usize, salt: u64, k: u64) -> usize {
        let n = env.cores();
        debug_assert!(n >= 2, "probing needs someone to probe");
        match self {
            Victim::Uniform => (id + 1 + env.rand_below(n as u64 - 1) as usize) % n,
            Victim::Sequence => kth_victim(id, n, salt, k),
            Victim::Locality => kth_victim(id, n, locality_salt(id), k),
        }
    }
}

impl Default for Victim {
    /// `Uniform` — the simulator's historical draw.
    fn default() -> Self {
        Victim::Uniform
    }
}

impl Victim {
    /// Parses a CLI name: `uniform`, `sequence`, or `locality`.
    pub fn parse(s: &str) -> Result<Victim, String> {
        match s {
            "uniform" => Ok(Victim::Uniform),
            "sequence" => Ok(Victim::Sequence),
            "locality" => Ok(Victim::Locality),
            other => Err(format!(
                "unknown victim policy `{other}` (expected uniform|sequence|locality)"
            )),
        }
    }

    /// The CLI/trace-facing name.
    pub fn label(&self) -> &'static str {
        match self {
            Victim::Uniform => "uniform",
            Victim::Sequence => "sequence",
            Victim::Locality => "locality",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::RngEnv;
    use crate::rng::SplitMix64;

    /// The probe order must cover each of the other workers exactly
    /// once — no duplicate probe, never self, and no division by zero
    /// for a single-worker pool. (The proptest in `tests/victim_prop.rs`
    /// extends this to arbitrary id/n/salt.)
    #[test]
    fn victim_sequence_covers_others_exactly_once() {
        for n in 1..=3usize {
            for id in 0..n {
                for salt in 0..7usize {
                    let seq: Vec<usize> = victim_sequence(id, n, salt).collect();
                    assert_eq!(seq.len(), n - 1, "n={n} id={id} salt={salt}");
                    assert!(!seq.contains(&id), "self-probe: n={n} id={id} {seq:?}");
                    let mut sorted = seq.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), n - 1, "duplicate probe: {seq:?}");
                    for v in &seq {
                        assert!(*v < n, "out of range: {seq:?}");
                    }
                }
            }
        }
    }

    /// Different salts rotate the starting victim, so concurrent thieves
    /// spread over victims instead of convoying.
    #[test]
    fn victim_sequence_salt_rotates_start() {
        let n = 3;
        let starts: std::collections::BTreeSet<usize> = (0..2)
            .map(|salt| victim_sequence(0, n, salt).next().unwrap())
            .collect();
        assert_eq!(starts.len(), 2, "salt must vary the first victim");
    }

    /// Uniform probing matches the simulator's historical expression
    /// draw for draw.
    #[test]
    fn uniform_probe_matches_legacy_expression() {
        let cores = 7usize;
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for id in [0usize, 3, 6] {
            let legacy = (id + 1 + b.below(cores as u64 - 1) as usize) % cores;
            let mut env = RngEnv::new(&mut a, 0, cores);
            assert_eq!(Victim::Uniform.probe(&mut env, id, 0, 0), legacy);
        }
    }

    /// Sequence/Locality probes are pure: no draws consumed, self never
    /// probed, and a full round of either covers everyone else.
    #[test]
    fn deterministic_policies_probe_everyone_without_draws() {
        let cores = 5usize;
        for policy in [Victim::Sequence, Victim::Locality] {
            assert_eq!(policy.draws_per_probe(), 0);
            for id in 0..cores {
                let mut rng = SplitMix64::new(1);
                let before = rng.clone().next_u64();
                let mut seen: Vec<usize> = (0..cores as u64 - 1)
                    .map(|k| {
                        let mut env = RngEnv::new(&mut rng, 0, cores);
                        policy.probe(&mut env, id, 3, k)
                    })
                    .collect();
                assert_eq!(rng.next_u64(), before, "{policy:?} drew from the RNG");
                assert!(!seen.contains(&id));
                seen.sort_unstable();
                seen.dedup();
                assert_eq!(seen.len(), cores - 1, "{policy:?} repeated a victim");
            }
        }
    }
}
