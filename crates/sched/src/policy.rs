//! The policy bundle threaded through engine and runtime configs.

use crate::promote::Promotion;
use crate::victim::Victim;

/// One promotion policy plus one victim policy — the unit selected by
/// `tpal-run --policy`/`--victim`, stored in `SimConfig`/`RtConfig`,
/// and tagged into traces for per-policy overhead attribution.
///
/// The default (`heartbeat` promotion, `uniform` victims) reproduces
/// the pre-kernel simulator bit for bit; the native runtime overrides
/// the victim half to its historical `sequence` sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Policy {
    /// When promotion-ready points promote.
    pub promotion: Promotion,
    /// Whom a thief probes.
    pub victim: Victim,
}

impl Policy {
    /// The trace/CLI-facing name, e.g. `heartbeat/uniform` or
    /// `adaptive:250/sequence`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.promotion.label(), self.victim.label())
    }

    /// Parses a combined label: a promotion policy name, optionally
    /// followed by `/` and a victim policy name (the other half keeps
    /// its default). Accepts everything [`Promotion::parse`] and
    /// [`Victim::parse`] accept.
    pub fn parse(s: &str) -> Result<Policy, String> {
        let mut policy = Policy::default();
        match s.split_once('/') {
            Some((promo, victim)) => {
                policy.promotion = Promotion::parse(promo)?;
                policy.victim = Victim::parse(victim)?;
            }
            None => policy.promotion = Promotion::parse(s)?,
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_pre_kernel_configuration() {
        let p = Policy::default();
        assert_eq!(p.promotion, Promotion::Heartbeat);
        assert_eq!(p.victim, Victim::Uniform);
        assert_eq!(p.label(), "heartbeat/uniform");
    }

    #[test]
    fn parse_combined_and_partial() {
        assert_eq!(
            Policy::parse("eager/sequence").unwrap(),
            Policy {
                promotion: Promotion::Eager,
                victim: Victim::Sequence,
            }
        );
        assert_eq!(
            Policy::parse("adaptive:64").unwrap(),
            Policy {
                promotion: Promotion::AdaptiveTau { tau: 64 },
                victim: Victim::Uniform,
            }
        );
        assert!(Policy::parse("eager/elsewhere").is_err());
        assert!(Policy::parse("nope/uniform").is_err());
    }

    #[test]
    fn label_round_trips() {
        for s in ["heartbeat/uniform", "never/locality", "adaptive:9/sequence"] {
            assert_eq!(Policy::parse(s).unwrap().label(), s);
        }
    }
}
