//! The execution-domain abstraction policies are written against.

use crate::rng::SplitMix64;

/// What a scheduling policy may observe of its execution substrate: a
/// clock, a randomness source, and the worker count. The simulator
/// implements it over virtual cycles and its seeded [`SplitMix64`]
/// stream; the native runtime over RDTSC ticks and per-worker
/// generators. Policies written against this trait are therefore
/// domain-portable by construction — the property the cross-domain
/// parity suite checks.
pub trait SchedEnv {
    /// The current time, in the domain's unit (virtual cycles in the
    /// simulator, timestamp ticks in the native runtime).
    fn now(&self) -> u64;

    /// The number of worker cores `P`.
    fn cores(&self) -> usize;

    /// The next 64 random bits.
    fn rand_u64(&mut self) -> u64;

    /// A uniform value in `[0, n)`; `n` must be positive. The default
    /// reduction (`rand_u64() % n`) is the one both domains have always
    /// used, so overriding it would change observable victim streams.
    #[inline]
    fn rand_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.rand_u64() % n
    }
}

/// A ready-made [`SchedEnv`] over a borrowed [`SplitMix64`] stream —
/// the simulator's domain (and the per-worker native one).
#[derive(Debug)]
pub struct RngEnv<'a> {
    rng: &'a mut SplitMix64,
    now: u64,
    cores: usize,
}

impl<'a> RngEnv<'a> {
    /// An environment at time `now` over `cores` cores drawing from
    /// `rng`.
    #[inline]
    pub fn new(rng: &'a mut SplitMix64, now: u64, cores: usize) -> Self {
        RngEnv { rng, now, cores }
    }
}

impl SchedEnv for RngEnv<'_> {
    #[inline]
    fn now(&self) -> u64 {
        self.now
    }

    #[inline]
    fn cores(&self) -> usize {
        self.cores
    }

    #[inline]
    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}
