//! Promotion policies: when a promotion-ready point promotes.

/// Per-core (simulator) or per-worker (runtime) promotion state. The
/// delivery mechanism raises `beat`; the policy consumes it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PromoteState {
    /// A heartbeat has been delivered and not yet consumed.
    pub beat: bool,
    /// Time of the last admitted promotion (adaptive-τ spacing), or
    /// `None` before the first one — the first is always admitted, in
    /// both time domains (cycle counts start near 0, timestamp-counter
    /// ticks do not, so measuring spacing from a zero default would
    /// make the domains disagree on the opening beat).
    pub last_promotion: Option<u64>,
    /// The previous machine-level decision was a handler diversion that
    /// has not forked yet. [`Promotion::Eager`]'s livelock guard: a
    /// handler that finds nothing to promote jumps straight back to the
    /// promotion-ready entry it diverted from, so an unconditional
    /// re-divert would spin forever; one ordinary instruction must run
    /// in between.
    pub bounced: bool,
}

impl PromoteState {
    /// Records an admitted promotion at `now` (adaptive-τ spacing).
    pub fn record_promotion(&mut self, now: u64) {
        self.last_promotion = Some(now);
    }
}

/// What a core should do at a scheduling boundary (the simulator's
/// machine-level decision; the runtime's library constructs promote
/// directly and use [`PromotionPolicy::should_attempt`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteStep {
    /// Divert the task to its promotion handler (a promotion attempt).
    Divert,
    /// Execute exactly one instruction without watching for
    /// promotion-ready entries: the policy declined this point and the
    /// task must step past it to make progress.
    StepPast,
    /// Run normally.
    Run,
}

/// When promotion-ready points promote. Implemented by [`Promotion`].
///
/// The trait has two surfaces for the two domains:
///
/// * The simulator executes TPAL programs, where promotion means
///   diverting a task to its handler block: it calls
///   [`wants_point_check`](Self::wants_point_check),
///   [`decide`](Self::decide), and [`watch`](Self::watch) around every
///   instruction run, and [`on_fork`](Self::on_fork) when a task forks.
/// * The native runtime's library constructs (`join2`, `reduce`) hold
///   the latent-parallelism list themselves: they ask
///   [`should_attempt`](Self::should_attempt) at each poll point and
///   promote directly.
///
/// Both surfaces are driven by the same [`PromoteState`] and the same
/// admission rule, so a policy behaves consistently across domains —
/// what the cross-domain parity suite checks.
pub trait PromotionPolicy {
    /// Whether the (mildly expensive) promotion-point test is worth
    /// running given the current state. `false` short-circuits exactly
    /// where the pre-kernel engines short-circuited on the raw flag.
    fn wants_point_check(&self, st: &PromoteState) -> bool;

    /// The machine-level decision at a scheduling boundary: `at_point`
    /// says whether the task sits at a promotion-ready block entry.
    /// Consumes the beat and updates spacing/bounce state.
    fn decide(&self, at_point: bool, st: &mut PromoteState, now: u64) -> PromoteStep;

    /// Whether instruction runs should pause at promotion-ready block
    /// entries (the decoded-stream `watch` flag).
    fn watch(&self, st: &PromoteState) -> bool;

    /// Notifies the policy that the core's task forked (clears the
    /// eager bounce guard: the diversion produced a task).
    fn on_fork(&self, st: &mut PromoteState);

    /// The library-level decision: should a poll point with `beat`
    /// (a consumed due heartbeat) attempt a promotion now?
    fn should_attempt(&self, st: &PromoteState, beat: bool, now: u64) -> bool;
}

/// The built-in promotion policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Promotion {
    /// Promote exactly one opportunity per delivered heartbeat — the
    /// paper's scheme, amortising task-creation cost τ against ♥ of
    /// useful work. The default.
    #[default]
    Heartbeat,
    /// Promote at every promotion-ready point — initial decomposition,
    /// the eager baseline heartbeat scheduling is measured against
    /// (task-creation cost on every opportunity).
    Eager,
    /// Never promote. With deliveries still armed this is the paper's
    /// "serial, interrupts only" configuration (Figures 9 and 13),
    /// isolating the cost of the interrupt mechanism itself.
    Never,
    /// Promote on the heartbeat, but drop beats arriving within `tau`
    /// time units of the last admitted promotion — a minimum-spacing
    /// ablation (rejected beats are consumed, not deferred).
    AdaptiveTau {
        /// Minimum spacing between admitted promotions, in the
        /// domain's time unit.
        tau: u64,
    },
}

// These run on the engines' per-pause / per-poll hot paths in a
// different crate, so cross-crate inlining must be explicit.
impl PromotionPolicy for Promotion {
    #[inline]
    fn wants_point_check(&self, st: &PromoteState) -> bool {
        match self {
            Promotion::Heartbeat | Promotion::AdaptiveTau { .. } => st.beat,
            Promotion::Eager => true,
            Promotion::Never => false,
        }
    }

    #[inline]
    fn decide(&self, at_point: bool, st: &mut PromoteState, now: u64) -> PromoteStep {
        match self {
            Promotion::Eager => {
                if at_point {
                    if st.bounced {
                        // The handler just bounced back here without
                        // forking; force one instruction of progress.
                        st.bounced = false;
                        PromoteStep::StepPast
                    } else {
                        st.bounced = true;
                        PromoteStep::Divert
                    }
                } else {
                    PromoteStep::Run
                }
            }
            _ => {
                if at_point && st.beat {
                    st.beat = false;
                    if self.should_attempt(st, true, now) {
                        st.record_promotion(now);
                        PromoteStep::Divert
                    } else {
                        PromoteStep::Run
                    }
                } else {
                    PromoteStep::Run
                }
            }
        }
    }

    #[inline]
    fn watch(&self, st: &PromoteState) -> bool {
        match self {
            Promotion::Heartbeat | Promotion::AdaptiveTau { .. } => st.beat,
            Promotion::Eager => true,
            Promotion::Never => false,
        }
    }

    #[inline]
    fn on_fork(&self, st: &mut PromoteState) {
        st.bounced = false;
    }

    #[inline]
    fn should_attempt(&self, st: &PromoteState, beat: bool, now: u64) -> bool {
        match self {
            Promotion::Heartbeat => beat,
            Promotion::Eager => true,
            Promotion::Never => false,
            Promotion::AdaptiveTau { tau } => {
                beat && st
                    .last_promotion
                    .is_none_or(|last| now.wrapping_sub(last) >= *tau)
            }
        }
    }
}

impl Promotion {
    /// Parses a CLI name: `heartbeat`, `eager`, `never`, or
    /// `adaptive:N` (τ in the domain's time unit).
    pub fn parse(s: &str) -> Result<Promotion, String> {
        match s {
            "heartbeat" => Ok(Promotion::Heartbeat),
            "eager" => Ok(Promotion::Eager),
            "never" => Ok(Promotion::Never),
            other => {
                if let Some(tau) = other.strip_prefix("adaptive:") {
                    let tau: u64 = tau
                        .parse()
                        .map_err(|e| format!("adaptive:N promotion policy: {e}"))?;
                    Ok(Promotion::AdaptiveTau { tau })
                } else {
                    Err(format!(
                        "unknown promotion policy `{other}` \
                         (expected heartbeat|eager|never|adaptive:N)"
                    ))
                }
            }
        }
    }

    /// The CLI/trace-facing name.
    pub fn label(&self) -> String {
        match self {
            Promotion::Heartbeat => "heartbeat".to_owned(),
            Promotion::Eager => "eager".to_owned(),
            Promotion::Never => "never".to_owned(),
            Promotion::AdaptiveTau { tau } => format!("adaptive:{tau}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Default policy, step by step: a beat is consumed by exactly one
    /// diversion at a promotion-ready point, and watch mirrors the flag.
    #[test]
    fn heartbeat_consumes_one_beat_per_divert() {
        let p = Promotion::Heartbeat;
        let mut st = PromoteState::default();
        assert!(!p.wants_point_check(&st));
        assert!(!p.watch(&st));
        st.beat = true;
        assert!(p.wants_point_check(&st));
        assert!(p.watch(&st));
        assert_eq!(p.decide(false, &mut st, 5), PromoteStep::Run);
        assert!(st.beat, "a non-point boundary must not consume the beat");
        assert_eq!(p.decide(true, &mut st, 6), PromoteStep::Divert);
        assert!(!st.beat);
        assert_eq!(p.decide(true, &mut st, 7), PromoteStep::Run);
    }

    /// Eager alternates Divert / StepPast at a bouncing handler (the
    /// livelock guard), and a fork re-arms the diversion.
    #[test]
    fn eager_bounce_guard_alternates_and_fork_rearms() {
        let p = Promotion::Eager;
        let mut st = PromoteState::default();
        assert_eq!(p.decide(true, &mut st, 0), PromoteStep::Divert);
        assert_eq!(p.decide(true, &mut st, 0), PromoteStep::StepPast);
        assert_eq!(p.decide(true, &mut st, 0), PromoteStep::Divert);
        p.on_fork(&mut st);
        assert!(!st.bounced);
        assert_eq!(p.decide(true, &mut st, 0), PromoteStep::Divert);
        assert!(p.watch(&st));
        assert!(p.should_attempt(&st, false, 0), "eager ignores the beat");
    }

    /// Never: no checks, no watch, no attempts — beats pile up unread.
    #[test]
    fn never_declines_everything() {
        let p = Promotion::Never;
        let mut st = PromoteState {
            beat: true,
            ..Default::default()
        };
        assert!(!p.wants_point_check(&st));
        assert!(!p.watch(&st));
        assert!(!p.should_attempt(&st, true, 0));
        assert_eq!(p.decide(true, &mut st, 0), PromoteStep::Run);
    }

    /// Adaptive-τ: a beat within τ of the last admitted promotion is
    /// consumed without promoting; one at ≥ τ is admitted.
    #[test]
    fn adaptive_tau_drops_close_beats() {
        let p = Promotion::AdaptiveTau { tau: 100 };
        let mut st = PromoteState {
            beat: true,
            ..Default::default()
        };
        assert_eq!(
            p.decide(true, &mut st, 10),
            PromoteStep::Divert,
            "the first promotion is always admitted"
        );
        assert_eq!(st.last_promotion, Some(10));
        st.beat = true;
        assert_eq!(p.decide(true, &mut st, 50), PromoteStep::Run);
        assert!(!st.beat, "a rejected beat is dropped, not deferred");
        st.beat = true;
        assert_eq!(p.decide(true, &mut st, 110), PromoteStep::Divert);
        assert_eq!(st.last_promotion, Some(110));
    }

    #[test]
    fn parse_round_trips() {
        for s in ["heartbeat", "eager", "never", "adaptive:250"] {
            assert_eq!(Promotion::parse(s).unwrap().label(), s);
        }
        assert!(Promotion::parse("sometimes").is_err());
        assert!(Promotion::parse("adaptive:x").is_err());
    }
}
