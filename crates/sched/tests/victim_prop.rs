//! Property tests for the deterministic victim sweep: for every thief
//! id, core count, and salt, [`victim_sequence`] must visit *every
//! other* core exactly once — never the thief itself, no repeats — so a
//! full sweep is a fair probe of the whole machine regardless of where
//! the salt rotates the start.

use proptest::prelude::*;
use tpal_sched::victim_sequence;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The sweep is a permutation of all cores but the thief.
    #[test]
    fn sweep_is_a_permutation_of_the_other_cores(
        n in 2usize..=64,
        id_raw in any::<usize>(),
        salt in any::<usize>(),
    ) {
        let id = id_raw % n;
        let victims: Vec<usize> = victim_sequence(id, n, salt).collect();
        prop_assert_eq!(victims.len(), n - 1, "one probe per other core");

        let mut seen = vec![false; n];
        for &v in &victims {
            prop_assert!(v < n, "victim {} out of range {}", v, n);
            prop_assert!(v != id, "thief {} probed itself", id);
            prop_assert!(!seen[v], "victim {} probed twice", v);
            seen[v] = true;
        }
    }

    /// The salt only rotates the sweep's starting point: consecutive
    /// salts begin one offset apart but cover the same set.
    #[test]
    fn salt_rotates_the_start(
        n in 3usize..=64,
        id_raw in any::<usize>(),
        salt in 0usize..1_000_000,
    ) {
        let id = id_raw % n;
        let a: Vec<usize> = victim_sequence(id, n, salt).collect();
        let b: Vec<usize> = victim_sequence(id, n, salt + 1).collect();
        // b is a rotated one step ahead: b[k] == a[k + 1] for the
        // overlapping prefix.
        prop_assert_eq!(&b[..n - 2], &a[1..]);
    }

    /// A single core has no one to steal from.
    #[test]
    fn solo_core_has_empty_sweep(salt in any::<usize>()) {
        prop_assert_eq!(victim_sequence(0, 1, salt).count(), 0);
    }
}
