//! Shared harness utilities for the figure-reproduction benchmarks.
//!
//! Each `benches/figNN_*.rs` target regenerates one table or figure of
//! the paper (see `DESIGN.md` for the index and `EXPERIMENTS.md` for
//! recorded results). All targets honour `TPAL_BENCH_MODE=quick|full`
//! (default `quick`) and print plain-text tables to stdout.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

use tpal_ir::lower::{lower, Mode};
use tpal_sim::{Sim, SimConfig, SimOutcome};
use tpal_workloads::{Scale, SimSpec};

pub use tpal_workloads::{all_workloads, Prepared, Workload};

/// The scale selected by `TPAL_BENCH_MODE`.
pub fn scale() -> Scale {
    Scale::from_env()
}

/// Native trial count per measurement at the current scale.
pub fn trials() -> usize {
    match scale() {
        Scale::Quick => 5,
        Scale::Full => 10,
    }
}

/// Times `f`, returning the **minimum** over [`trials`] runs (robust to
/// interference on shared machines) and asserting every run returns
/// `expected`.
pub fn time_native(expected: i64, mut f: impl FnMut() -> i64) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..trials() {
        let t = Instant::now();
        let got = f();
        best = best.min(t.elapsed());
        assert_eq!(got, expected, "benchmark kernel returned a wrong checksum");
    }
    best
}

/// Runs a workload's simulator spec in the given mode/config, asserting
/// the checksum.
pub fn run_sim(spec: &SimSpec, mode: Mode, config: SimConfig) -> SimOutcome {
    let lowered = lower(&spec.ir, mode).expect("lowering");
    let mut sim = Sim::new(&lowered.program, config);
    for (name, data) in &spec.input.arrays {
        let base = sim.alloc_array(data);
        sim.set_reg(&lowered.param_reg(name), base)
            .expect("array param");
    }
    for (name, v) in &spec.input.ints {
        sim.set_reg(&lowered.param_reg(name), *v)
            .expect("int param");
    }
    let out = sim.run().expect("simulation");
    assert_eq!(
        out.read_reg(&lowered.result_reg),
        Some(spec.expected),
        "simulated checksum mismatch"
    );
    out
}

/// The simulated serial-baseline makespan of a spec (1 core, serial
/// lowering, no interrupts).
pub fn sim_serial_time(spec: &SimSpec) -> u64 {
    run_sim(spec, Mode::Serial, SimConfig::serial()).time
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, then rename, so a reader (or an interrupted run) never
/// observes a half-written record. Used by every bench that persists a
/// `BENCH_*.json` record at the repo root.
pub fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).expect("write bench record temp file");
    std::fs::rename(&tmp, path).expect("rename bench record into place");
}

/// Geometric mean of a slice of ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints a header banner for a figure.
pub fn banner(fig: &str, what: &str) {
    println!("\n================================================================");
    println!("{fig}: {what}");
    println!(
        "(mode: {:?}; see EXPERIMENTS.md for interpretation)",
        scale()
    );
    println!("================================================================");
}

/// Formats a duration as fractional milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The worker count used for native parallel measurements (the paper
/// uses 15 workers; on a small machine we oversubscribe only modestly).
pub fn native_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// The simulated core count of the paper's full-scale runs.
pub const SIM_CORES: usize = 15;

/// The default simulated heartbeat ♥ in cycles (tuned by the
/// `heartbeat_tuner` bench, mirroring §4.2's 100µs).
pub const SIM_HEARTBEAT: u64 = 3_000;

/// The "aggressive" simulated heartbeat, mirroring the paper's 20µs.
pub const SIM_HEARTBEAT_FAST: u64 = 600;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_ones() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixed() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sim_runner_checks_expectation() {
        let w = tpal_workloads::workload("plus-reduce-array").unwrap();
        let spec = w.sim_spec(Scale::Quick);
        let t = sim_serial_time(&spec);
        assert!(t > 0);
    }
}
