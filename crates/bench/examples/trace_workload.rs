//! Records a structured scheduling trace of one simulated workload and
//! writes it as Chrome `trace_event` JSON, printing the TASKPROF-style
//! work/span profile and the per-core metrics report on the way out.
//!
//! ```text
//! cargo run --release -p tpal-bench --example trace_workload -- \
//!     [WORKLOAD] [CORES] [OUT.json]
//! ```
//!
//! Defaults: `mergesort-uniform`, 4 cores, `trace_<workload>.json` in
//! the current directory. Open the output at `chrome://tracing` or
//! <https://ui.perfetto.dev> — one track per simulated core, work spans
//! labelled by task, instants for spawns/steals/heartbeats/joins. CI
//! runs this for the trace-artifact smoke.

use std::process::ExitCode;

use tpal_ir::lower::{lower, Mode};
use tpal_sim::{Sim, SimConfig};
use tpal_trace::{chrome, MetricsReport, WorkSpanProfile};
use tpal_workloads::{all_workloads, workload, Scale};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "mergesort-uniform".into());
    let cores: usize = match args.next().as_deref().map(str::parse).unwrap_or(Ok(4)) {
        Ok(c) if c > 0 => c,
        _ => {
            eprintln!("CORES must be a positive integer");
            return ExitCode::FAILURE;
        }
    };
    let out_path = args.next().unwrap_or_else(|| format!("trace_{name}.json"));

    let Some(w) = workload(&name) else {
        let known: Vec<_> = all_workloads().iter().map(|w| w.name()).collect();
        eprintln!("unknown workload `{name}`; known: {}", known.join(", "));
        return ExitCode::FAILURE;
    };
    let spec = w.sim_spec(Scale::Quick);
    let lowered = match lower(&spec.ir, Mode::Heartbeat) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{name}: lowering failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut config = SimConfig::nautilus(cores, 3_000);
    config.record_trace = true;
    let mut sim = Sim::new(&lowered.program, config);
    for (pname, data) in &spec.input.arrays {
        let base = sim.alloc_array(data);
        sim.set_reg(&lowered.param_reg(pname), base).unwrap();
    }
    for (pname, v) in &spec.input.ints {
        sim.set_reg(&lowered.param_reg(pname), *v).unwrap();
    }
    let out = match sim.run() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{name}: simulation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if out.read_reg(&lowered.result_reg) != Some(spec.expected) {
        eprintln!("{name}: wrong result — refusing to write a trace of a broken run");
        return ExitCode::FAILURE;
    }

    let trace = out.trace.as_ref().expect("record_trace was set");
    let json = chrome::chrome_json(trace);
    if let Err(e) = chrome::validate(&json) {
        eprintln!("{name}: rendered trace failed validation: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("{out_path}: {e}");
        return ExitCode::FAILURE;
    }

    println!(
        "{name} on {cores} cores: {} cycles, {} events -> {out_path}",
        out.time,
        trace.len()
    );
    let p = WorkSpanProfile::from_trace(trace);
    println!(
        "work/span: T1 = {} cycles, Tinf = {} cycles, parallelism = {:.1}, tasks = {}",
        p.work,
        p.span,
        p.parallelism(),
        p.tasks
    );
    print!("{}", MetricsReport::from_trace(trace).render());
    ExitCode::SUCCESS
}
