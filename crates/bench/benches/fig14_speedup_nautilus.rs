//! Figure 14: 15-core speedups over serial — Cilk vs TPAL/Linux vs
//! TPAL/Nautilus.
//!
//! The paper's punchline: taking both implementations together, TPAL
//! strictly outperforms Cilk — the per-core-timer (Nautilus) mechanism
//! fixes the cases where Linux signal delivery starves promotion
//! (notably mandelbrot).

use tpal_bench::{
    all_workloads, banner, geomean, run_sim, scale, sim_serial_time, SIM_CORES, SIM_HEARTBEAT,
};
use tpal_ir::lower::Mode;
use tpal_sim::{InterruptModel, SimConfig};

fn main() {
    banner(
        "Figure 14",
        "15-core speedups: Cilk vs TPAL/Linux vs TPAL/Nautilus",
    );
    println!(
        "\n{:<22} {:>10} {:>12} {:>14} {:>8}",
        "benchmark", "cilk x", "tpal/linux x", "tpal/nautilus x", "best"
    );

    let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 3]; // cilk, linux, nautilus
    let mut geo_rec: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut tpal_strictly_wins = true;

    for w in all_workloads() {
        let spec = w.sim_spec(scale());
        let t_serial = sim_serial_time(&spec);

        let mut cilk_cfg = SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT);
        cilk_cfg.interrupt = InterruptModel::Disabled;
        let cilk = t_serial as f64
            / run_sim(
                &spec,
                Mode::Eager {
                    workers: SIM_CORES as u32,
                },
                cilk_cfg,
            )
            .time as f64;
        let linux = t_serial as f64
            / run_sim(
                &spec,
                Mode::Heartbeat,
                SimConfig::linux(SIM_CORES, SIM_HEARTBEAT),
            )
            .time as f64;
        let nautilus = t_serial as f64
            / run_sim(
                &spec,
                Mode::Heartbeat,
                SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT),
            )
            .time as f64;

        let g = if w.is_recursive() {
            &mut geo_rec
        } else {
            &mut geo
        };
        g[0].push(cilk);
        g[1].push(linux);
        g[2].push(nautilus);
        if linux.max(nautilus) < cilk {
            tpal_strictly_wins = false;
        }
        let best = if nautilus >= linux && nautilus >= cilk {
            "naut"
        } else if linux >= cilk {
            "linux"
        } else {
            "cilk"
        };
        println!(
            "{:<22} {:>9.2}x {:>11.2}x {:>13.2}x {:>8}",
            w.name(),
            cilk,
            linux,
            nautilus,
            best
        );
    }

    println!(
        "\ngeomean (iterative): cilk {:.2}x  tpal/linux {:.2}x  tpal/nautilus {:.2}x",
        geomean(&geo[0]),
        geomean(&geo[1]),
        geomean(&geo[2])
    );
    println!(
        "geomean (recursive): cilk {:.2}x  tpal/linux {:.2}x  tpal/nautilus {:.2}x",
        geomean(&geo_rec[0]),
        geomean(&geo_rec[1]),
        geomean(&geo_rec[2])
    );
    println!(
        "\n'at least one TPAL implementation beats Cilk on every benchmark': {}",
        if tpal_strictly_wins {
            "HOLDS"
        } else {
            "HOLDS ONLY PARTIALLY — on regular memory-bound loops the simulator\n             has no bandwidth ceiling, so eager decomposition looks relatively\n             better than on the paper's hardware; the decisive cases (irregular\n             matrices, recursion, granularity sensitivity) reproduce. See\n             EXPERIMENTS.md."
        }
    );
}
