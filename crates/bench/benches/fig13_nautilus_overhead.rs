//! Figure 13: the Figure 9 measurement under the Nautilus-style
//! per-core timer mechanism (local deadline checks instead of a ping
//! thread). The paper's finding: the precise, per-core mechanism masks
//! the interrupt cost that Linux signalling makes visible, even at 20µs.

use std::time::Duration;

use tpal_bench::{all_workloads, banner, geomean, scale, time_native};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};

fn main() {
    banner(
        "Figure 13",
        "1-worker overhead of per-core-timer (Nautilus) heartbeats",
    );

    let configs: Vec<(Runtime, &str)> = vec![
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(HeartbeatSource::LocalTimer)
                    .heartbeat(Duration::from_micros(100))
                    .suppress_promotions(true),
            ),
            "int 100µs",
        ),
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(HeartbeatSource::LocalTimer)
                    .heartbeat(Duration::from_micros(100)),
            ),
            "all 100µs",
        ),
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(HeartbeatSource::LocalTimer)
                    .heartbeat(Duration::from_micros(20))
                    .suppress_promotions(true),
            ),
            "int 20µs",
        ),
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(HeartbeatSource::LocalTimer)
                    .heartbeat(Duration::from_micros(20)),
            ),
            "all 20µs",
        ),
    ];

    println!(
        "\n{:<22} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", configs[0].1, configs[1].1, configs[2].1, configs[3].1
    );
    let mut geos: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for w in all_workloads() {
        let p = w.prepare(scale());
        let expected = p.expected();
        let t_serial = time_native(expected, || p.run_serial());
        let mut row = format!("{:<22}", w.name());
        for (k, (rt, _)) in configs.iter().enumerate() {
            let t = time_native(expected, || rt.run(|ctx| p.run_heartbeat(ctx)));
            let r = t.as_secs_f64() / t_serial.as_secs_f64();
            geos[k].push(r);
            row.push_str(&format!(" {:>8.2}x", r));
        }
        println!("{row}");
    }
    print!("{:<22}", "geomean");
    for g in &geos {
        print!(" {:>8.2}x", geomean(g));
    }
    println!();
    println!(
        "\npaper's shape: interrupt-only overhead is fully masked at 100µs and\n\
         at most ~5% at 20µs — compare against fig09 (Linux ping thread)."
    );
}
