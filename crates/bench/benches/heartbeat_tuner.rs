//! The heartbeat tuner (§2.2, §4.2): the one-time, per-machine sweep
//! that picks ♥ "just large enough to amortise the creation of a task,
//! but small enough to avoid pruning away useful amounts of
//! parallelism".
//!
//! Sweeps ♥ on the simulator and reports, for a fine-grained loop
//! benchmark: single-core overhead versus serial (must stay low ⇒ ♥
//! large enough) and 15-core speedup (must stay high ⇒ ♥ small
//! enough). The knee of the two curves is the tuned ♥.

use tpal_bench::{banner, run_sim, scale, sim_serial_time, SIM_CORES};
use tpal_ir::lower::Mode;
use tpal_sim::SimConfig;

fn main() {
    banner(
        "heartbeat tuner",
        "♥ sweep: 1-core overhead vs 15-core speedup (the §2.2 tuning process)",
    );
    let w = tpal_workloads::workload("plus-reduce-array").expect("workload");
    let spec = w.sim_spec(scale());
    let t_serial = sim_serial_time(&spec);

    println!(
        "\n{:>8} {:>16} {:>16} {:>12}",
        "♥", "1-core overhead", "15-core speedup", "tasks@15"
    );
    let mut best: Option<(u64, f64)> = None;
    for hb in [300u64, 600, 1_200, 3_000, 6_000, 12_000, 30_000, 100_000] {
        let one = run_sim(&spec, Mode::Heartbeat, SimConfig::nautilus(1, hb));
        let many = run_sim(&spec, Mode::Heartbeat, SimConfig::nautilus(SIM_CORES, hb));
        let overhead = one.time as f64 / t_serial as f64;
        let speedup = t_serial as f64 / many.time as f64;
        println!(
            "{:>8} {:>15.2}x {:>15.2}x {:>12}",
            hb, overhead, speedup, many.stats.forks
        );
        // Tuning criterion: highest speedup subject to ≤5% 1-core cost.
        if overhead <= 1.05 && best.map(|(_, s)| speedup > s).unwrap_or(true) {
            best = Some((hb, speedup));
        }
    }
    match best {
        Some((hb, s)) => println!(
            "\ntuned ♥ = {hb} cycles (speedup {s:.2}x with ≤5% single-core cost);\n\
             the workspace default SIM_HEARTBEAT is 3000."
        ),
        None => println!("\nno ♥ met the ≤5% single-core criterion at this scale"),
    }
    println!(
        "paper's shape: overhead falls and then flattens as ♥ grows, while\n\
         speedup falls once ♥ prunes useful parallelism — pick the knee."
    );
}
