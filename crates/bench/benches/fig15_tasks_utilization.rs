//! Figure 15: (a) tasks created and (b) utilization — Cilk vs
//! TPAL/Linux, 15 cores — plus the §4.3 floyd-warshall case study.
//!
//! The paper's discrepancy to notice: Cilk sometimes reaches *higher*
//! utilization while running *slower*, because the cores are kept busy
//! creating, moving, and destroying an overabundance of tasks.

use tpal_bench::{
    all_workloads, banner, run_sim, scale, sim_serial_time, SIM_CORES, SIM_HEARTBEAT,
};
use tpal_ir::lower::Mode;
use tpal_sim::{InterruptModel, SimConfig};

fn main() {
    banner(
        "Figure 15",
        "tasks created (a) and utilization (b), Cilk vs TPAL/Linux, 15 cores",
    );
    println!(
        "\n{:<22} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "cilk tsk", "tpal tsk", "cilk ut", "tpal ut", "cilk x", "tpal x"
    );

    for w in all_workloads() {
        let spec = w.sim_spec(scale());
        let t_serial = sim_serial_time(&spec);
        let mut cilk_cfg = SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT);
        cilk_cfg.interrupt = InterruptModel::Disabled;
        let cilk = run_sim(
            &spec,
            Mode::Eager {
                workers: SIM_CORES as u32,
            },
            cilk_cfg,
        );
        let tpal = run_sim(
            &spec,
            Mode::Heartbeat,
            SimConfig::linux(SIM_CORES, SIM_HEARTBEAT),
        );
        println!(
            "{:<22} {:>10} {:>10} {:>8.0}% {:>8.0}% {:>8.2}x {:>8.2}x",
            w.name(),
            cilk.stats.forks,
            tpal.stats.forks,
            cilk.utilization() * 100.0,
            tpal.utilization() * 100.0,
            t_serial as f64 / cilk.time as f64,
            t_serial as f64 / tpal.time as f64,
        );
        if w.name() == "floyd-warshall-small" {
            println!(
                "    ^ §4.3 case study: task-count ratio cilk/tpal = {:.1}x",
                cilk.stats.forks as f64 / tpal.stats.forks.max(1) as f64
            );
        }
    }
    println!(
        "\npaper's shape: TPAL creates more tasks than Cilk on about half the\n\
         suite and fewer on the rest, yet wins at scale; on the starved\n\
         floyd-warshall size Cilk creates ~23x more tasks than TPAL."
    );
}
