//! Native runtime scaling: wall-clock speedup of the heartbeat runtime
//! over the plain serial kernel as workers grow, on four workload
//! shapes — flat reduction (`plus-reduce-array`), nested loops
//! (`floyd-warshall-small`), irregular fork-join recursion
//! (`mergesort-uniform`), and an escape-time loop with data-dependent
//! trip counts (`mandelbrot`). Each workload runs serial once, then on
//! the runtime at 1, 2, and 4 workers (min-of-trials, counters reset
//! between trials), recording wall-clock, speedup vs the 1-worker
//! runtime and vs serial, the heartbeat-vs-serial overhead % at one
//! worker (the paper's "uncompromising" bound), and the scheduler's own
//! account of the run: steals, promotions, tasks created. Writes
//! `BENCH_rt_scaling.json` at the repo root (atomically: temp file in
//! the same directory, then rename). The record carries the machine's
//! core count — on fewer cores than workers the speedup columns
//! measure oversubscription honesty, not parallel scaling.
//!
//! Every timed run also asserts the counter-shard invariant: the
//! field-wise sum of `per_worker_stats` must equal the aggregate
//! `stats` snapshot exactly (sharding partitions the counters, it does
//! not resample them).
//!
//! With `TPAL_BENCH_SMOKE=1` the bench times `plus-reduce-array` at 1
//! and 4 workers only and fails if the 4-worker run is not faster than
//! the 1-worker run — skipped with a note when the machine has fewer
//! than 4 cores, where the inversion is expected — without touching
//! the JSON record. The shard invariant is asserted in both modes.

use std::time::Duration;

use tpal_bench::{time_native, trials, write_atomic};
use tpal_rt::{HeartbeatSource, RtConfig, RtStats, Runtime};
use tpal_workloads::{run_heartbeat_on, workload, Prepared, Scale};

const CASES: [&str; 4] = [
    "plus-reduce-array",
    "floyd-warshall-small",
    "mergesort-uniform",
    "mandelbrot",
];

/// Worker counts of the scaling matrix (the acceptance floor is three).
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

/// The paper's native heartbeat interval (§4.2: ♥ = 100µs).
const HEARTBEAT_US: u64 = 100;

fn runtime(workers: usize) -> Runtime {
    Runtime::new(
        RtConfig::default()
            .workers(workers)
            .source(HeartbeatSource::LocalTimer)
            .heartbeat(Duration::from_micros(HEARTBEAT_US)),
    )
}

/// Asserts that the sharded per-worker counters partition the aggregate
/// snapshot (ISSUE 7 acceptance: sharded totals == previous globals).
fn assert_shard_invariant(rt: &Runtime, workers: usize) -> RtStats {
    let agg = rt.stats();
    let per = rt.per_worker_stats();
    assert_eq!(per.len(), workers, "one shard per worker");
    assert_eq!(
        per.iter().map(|s| s.promotions).sum::<u64>(),
        agg.promotions,
        "promotion shards must sum to the aggregate"
    );
    assert_eq!(
        per.iter().map(|s| s.tasks_created).sum::<u64>(),
        agg.tasks_created,
        "task shards must sum to the aggregate"
    );
    assert_eq!(
        per.iter().map(|s| s.steals).sum::<u64>(),
        agg.steals,
        "steal shards must sum to the aggregate"
    );
    assert_eq!(
        per.iter().map(|s| s.heartbeats_serviced).sum::<u64>(),
        agg.heartbeats_serviced,
        "serviced shards must sum to the aggregate"
    );
    agg
}

/// Times one workload on one runtime: min-of-[`trials`] wall-clock with
/// the counters reset before every trial, returning the best time and
/// the counter snapshot of the final trial (each trial's shard
/// invariant is asserted).
fn time_heartbeat(rt: &Runtime, workers: usize, p: &dyn Prepared) -> (Duration, RtStats) {
    let expected = p.expected();
    let mut best = Duration::MAX;
    let mut stats = RtStats::default();
    for _ in 0..trials() {
        rt.reset_stats();
        let t = std::time::Instant::now();
        let got = run_heartbeat_on(rt, p);
        let elapsed = t.elapsed();
        assert_eq!(got, expected, "heartbeat kernel returned a wrong checksum");
        best = best.min(elapsed);
        stats = assert_shard_invariant(rt, workers);
    }
    (best, stats)
}

fn cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// CI-sized canary: `plus-reduce-array` at 1 and 4 workers. On a
/// machine with at least 4 cores, 4 workers must beat 1; on smaller
/// machines the gate is skipped (oversubscribed workers cannot beat a
/// single pinned one) but the checksum and shard-invariant checks still
/// run at both counts.
fn smoke() {
    let p = workload("plus-reduce-array")
        .expect("known workload")
        .prepare(Scale::Quick);
    let mut times = [Duration::MAX; 2];
    for (k, workers) in [1usize, 4].into_iter().enumerate() {
        let rt = runtime(workers);
        let (best, stats) = time_heartbeat(&rt, workers, p.as_ref());
        times[k] = best;
        println!(
            "rt_scaling smoke plus-reduce-array @{workers}w: {:.3} ms \
             ({} promotions, {} steals)",
            best.as_secs_f64() * 1e3,
            stats.promotions,
            stats.steals
        );
    }
    let [t1, t4] = times;
    if cores() >= 4 {
        assert!(
            t4 < t1,
            "4 workers ({t4:?}) must beat 1 worker ({t1:?}) on a {}-core machine",
            cores()
        );
    } else {
        println!(
            "rt_scaling smoke: speedup gate skipped ({} core(s) < 4 — \
             oversubscribed workers cannot beat one)",
            cores()
        );
    }
}

fn main() {
    if std::env::var_os("TPAL_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let cores = cores();
    println!(
        "rt_scaling: {} trials per point, heartbeat {HEARTBEAT_US}us, {cores} core(s)",
        trials()
    );

    let mut rows = Vec::new();
    for name in CASES {
        let p = workload(name)
            .expect("known workload")
            .prepare(Scale::Quick);
        let expected = p.expected();
        let t_serial = time_native(expected, || p.run_serial());

        let mut t_1w = Duration::MAX;
        for &workers in &WORKER_COUNTS {
            let rt = runtime(workers);
            let (best, stats) = time_heartbeat(&rt, workers, p.as_ref());
            if workers == 1 {
                t_1w = best;
            }
            let speedup_vs_1w = t_1w.as_secs_f64() / best.as_secs_f64().max(1e-12);
            let speedup_vs_serial = t_serial.as_secs_f64() / best.as_secs_f64().max(1e-12);
            // The paper's overhead bound: heartbeat at one worker vs
            // the plain serial kernel (promotion machinery priced in,
            // parallelism not).
            let overhead_pct =
                (best.as_secs_f64() / t_serial.as_secs_f64().max(1e-12) - 1.0).max(-1.0) * 100.0;
            println!(
                "rt_scaling {name} @{workers}w: {:.3} ms \
                 (serial {:.3} ms, {speedup_vs_1w:.2}x vs 1w, \
                 {speedup_vs_serial:.2}x vs serial{}), \
                 {} steals, {} promotions, {} tasks",
                best.as_secs_f64() * 1e3,
                t_serial.as_secs_f64() * 1e3,
                if workers == 1 {
                    format!(", overhead {overhead_pct:+.1}%")
                } else {
                    String::new()
                },
                stats.steals,
                stats.promotions,
                stats.tasks_created
            );
            rows.push(format!(
                "    {{\n      \"workload\": \"{name}\",\n      \"workers\": {workers},\n      \
                 \"serial_ns\": {},\n      \"heartbeat_ns\": {},\n      \
                 \"speedup_vs_1w\": {speedup_vs_1w:.3},\n      \
                 \"speedup_vs_serial\": {speedup_vs_serial:.3},\n      \
                 \"overhead_vs_serial_pct\": {overhead_pct:.2},\n      \
                 \"steals\": {},\n      \"promotions\": {},\n      \
                 \"tasks_created\": {}\n    }}",
                t_serial.as_nanos(),
                best.as_nanos(),
                stats.steals,
                stats.promotions,
                stats.tasks_created
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"rt_scaling\",\n  \"config\": {{\n    \"cores\": {cores},\n    \
         \"heartbeat_us\": {HEARTBEAT_US},\n    \"source\": \"local-timer\",\n    \
         \"trials\": {},\n    \"scale\": \"quick\",\n    \
         \"worker_counts\": [1, 2, 4]\n  }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        trials(),
        rows.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_rt_scaling.json");
    write_atomic(path, &json);
    println!("rt_scaling: wrote {path}");
}
