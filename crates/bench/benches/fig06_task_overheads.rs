//! Figure 6: task-creation overheads on a single worker.
//!
//! The paper runs every benchmark on one core under Cilk Plus and under
//! TPAL (♥ = 100µs) and normalises to the serial program. Cilk pays its
//! eager decomposition even with nobody to steal (up to 16× on
//! fine-grained benchmarks); TPAL stays near 1× because tasks are only
//! created on beats.
//!
//! Reproduced natively: one worker thread, `tpal-cilk` vs `tpal-rt`
//! (ping-thread source at 100µs), normalised to the plain serial kernel.

use std::time::Duration;

use tpal_bench::{all_workloads, banner, geomean, ms, scale, time_native};
use tpal_cilk::CilkRuntime;
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};

fn main() {
    banner(
        "Figure 6",
        "single-worker task-creation overhead, normalised to serial",
    );
    let cilk = CilkRuntime::new(1);
    let hb = Runtime::new(
        RtConfig::default()
            .workers(1)
            .source(HeartbeatSource::PingThread)
            .heartbeat(Duration::from_micros(100)),
    );

    println!(
        "\n{:<22} {:>10} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9}",
        "benchmark", "serial ms", "cilk ms", "tpal ms", "cilk x", "tpal x", "cilk tsk", "tpal tsk"
    );

    let mut cilk_ratios_iter = Vec::new();
    let mut tpal_ratios_iter = Vec::new();
    let mut cilk_ratios_rec = Vec::new();
    let mut tpal_ratios_rec = Vec::new();

    for w in all_workloads() {
        let p = w.prepare(scale());
        let expected = p.expected();

        let t_serial = time_native(expected, || p.run_serial());

        cilk.reset_stats();
        let t_cilk = time_native(expected, || cilk.run(|ctx| p.run_cilk(ctx)));
        let cilk_tasks = cilk.stats().tasks_created / tpal_bench::trials() as u64;

        hb.reset_stats();
        let t_tpal = time_native(expected, || hb.run(|ctx| p.run_heartbeat(ctx)));
        let tpal_tasks = hb.stats().tasks_created / tpal_bench::trials() as u64;

        let rc = t_cilk.as_secs_f64() / t_serial.as_secs_f64();
        let rt = t_tpal.as_secs_f64() / t_serial.as_secs_f64();
        if w.is_recursive() {
            cilk_ratios_rec.push(rc);
            tpal_ratios_rec.push(rt);
        } else {
            cilk_ratios_iter.push(rc);
            tpal_ratios_iter.push(rt);
        }
        println!(
            "{:<22} {:>10.2} {:>10.2} {:>10.2} {:>7.2}x {:>7.2}x {:>9} {:>9}",
            w.name(),
            ms(t_serial),
            ms(t_cilk),
            ms(t_tpal),
            rc,
            rt,
            cilk_tasks,
            tpal_tasks
        );
    }

    println!(
        "\ngeomean slowdown vs serial  (iterative): cilk {:.2}x   tpal {:.2}x",
        geomean(&cilk_ratios_iter),
        geomean(&tpal_ratios_iter)
    );
    println!(
        "geomean slowdown vs serial  (recursive): cilk {:.2}x   tpal {:.2}x",
        geomean(&cilk_ratios_rec),
        geomean(&tpal_ratios_rec)
    );
    println!(
        "\npaper's shape: TPAL ≈ serial everywhere (worst case knapsack);\n\
         Cilk shows large single-core slowdowns on fine-grained benchmarks."
    );
}
