//! Open-loop load generation against `tpal-serve`: sustained runs/sec
//! and latency quantiles of the simulation service under offered load.
//!
//! The bench starts a server in-process, measures single-request
//! latency on a warm cache to calibrate the server's closed-loop
//! capacity, then offers three open-loop arrival rates — 25%, 50%, and
//! 90% of that capacity — from a pool of keep-alive clients firing on a
//! precomputed schedule. Latency is measured from each request's
//! *scheduled* arrival time (not its send time), so queueing delay
//! under overload is charged to the server, the defining property of
//! an open-loop harness. Shed requests (`429` from the bounded
//! admission queue) are counted separately and excluded from the
//! latency quantiles.
//!
//! A separate pass measures the decode cache's effect: first
//! submissions of distinct programs (misses, each paying
//! validate + decode + threaded-compile) versus resubmissions (hits,
//! straight to execution).
//!
//! Writes `BENCH_serve_throughput.json` at the repo root (atomically:
//! temp file, then rename).
//!
//! With `TPAL_BENCH_SMOKE=1` the bench runs a miss/hit/replay
//! correctness gate and a small fixed-rate burst, asserting every
//! admitted request completes and replay output is bit-identical —
//! without touching the JSON record.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tpal_bench::write_atomic;
use tpal_serve::http::Client;
use tpal_serve::server::{ServeConfig, Server};
use tpal_trace::json::{escape, parse, Json};

/// The benchmark workload: a parallel reduction sized so one run costs
/// roughly a millisecond — large enough to exercise the scheduler,
/// small enough for thousands of runs per bench.
const SUM_N: u64 = 4_000;
const SIM_CORES: u64 = 2;

/// Open-loop client threads (each with its own keep-alive connection).
const CLIENTS: usize = 16;

/// Requests per offered-load point.
const RUNS_PER_LOAD: usize = 300;

/// Offered loads as fractions of the calibrated capacity.
const LOAD_FRACTIONS: [f64; 3] = [0.25, 0.5, 0.9];

/// Distinct programs for the miss-vs-hit pass.
const MISS_PROGRAMS: usize = 20;

fn sum_body(k: u64) -> String {
    // `k` salts a constant, making each program's content hash (and so
    // its decode-cache entry) distinct while keeping the work identical.
    let src = format!(
        "fn main(n) {{\n    s = 0;\n    parfor i in 0..n reduce(s: +, 0) \
         {{ s = s + i + {k}; }}\n    return s;\n}}\n"
    );
    format!(
        "{{\"source\":\"{}\",\"ir\":true,\"cores\":{SIM_CORES},\"sets\":{{\"n\":{SUM_N}}}}}",
        escape(&src)
    )
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One open-loop point: offer `rate` requests/sec for `total` requests
/// across [`CLIENTS`] threads, returning (achieved runs/sec, shed
/// count, sorted latencies of completed runs).
fn open_loop(addr: std::net::SocketAddr, rate: f64, total: usize) -> (f64, u64, Vec<Duration>) {
    let interarrival = Duration::from_secs_f64(1.0 / rate);
    let start = Instant::now() + Duration::from_millis(50);
    let shed = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let shed = Arc::clone(&shed);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let body = sum_body(0);
                let mut latencies = Vec::new();
                // Client c fires requests c, c+CLIENTS, c+2·CLIENTS, …
                // at their scheduled times; a late previous reply just
                // delays the send, and the schedule-anchored clock
                // charges that delay to the measurement.
                let mut i = c;
                while i < total {
                    let scheduled = start + interarrival.mul_f64(i as f64);
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let (status, _) = client.request("POST", "/run", &body).expect("request");
                    match status {
                        200 => latencies.push(scheduled.elapsed()),
                        429 => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected status {other}"),
                    }
                    i += CLIENTS;
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("client thread"));
    }
    let elapsed = start.elapsed();
    latencies.sort();
    let achieved = latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9);
    (achieved, shed.load(Ordering::Relaxed), latencies)
}

/// Measures the decode cache: median first-submission (miss) latency vs
/// median resubmission (hit) latency over [`MISS_PROGRAMS`] distinct
/// programs.
fn miss_vs_hit(addr: std::net::SocketAddr) -> (Duration, Duration) {
    let mut client = Client::connect(addr).expect("connect");
    let mut misses = Vec::new();
    let mut hits = Vec::new();
    for k in 0..MISS_PROGRAMS as u64 {
        let body = sum_body(1_000 + k);
        for (bucket, expect) in [
            (&mut misses, "\"cache\":\"miss\""),
            (&mut hits, "\"cache\":\"hit\""),
        ] {
            let t = Instant::now();
            let (status, resp) = client.request("POST", "/run", &body).expect("request");
            let elapsed = t.elapsed();
            assert_eq!(status, 200, "{resp}");
            assert!(resp.contains(expect), "{resp}");
            bucket.push(elapsed);
        }
    }
    misses.sort();
    hits.sort();
    (percentile(&misses, 0.5), percentile(&hits, 0.5))
}

fn server() -> Server {
    Server::start(ServeConfig {
        queue_cap: 64,
        executors: std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2),
        ..ServeConfig::default()
    })
    .expect("bind")
}

/// CI-sized canary: miss → hit → bit-identical replay, then a short
/// fixed-rate burst where every request must be admitted and complete.
fn smoke() {
    let server = server();
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let body = sum_body(0);
    let (status, first) = client.request("POST", "/run", &body).expect("request");
    assert_eq!(status, 200, "{first}");
    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    let (status, second) = client.request("POST", "/run", &body).expect("request");
    assert_eq!(status, 200);
    assert!(second.contains("\"cache\":\"hit\""), "{second}");
    let first_doc = parse(&first).expect("response JSON");
    let token = first_doc
        .get("replay")
        .and_then(Json::as_str)
        .expect("token")
        .to_owned();
    let (status, replayed) = client
        .request("GET", &format!("/replay/{token}"), "")
        .expect("replay");
    assert_eq!(status, 200, "{replayed}");
    let replayed_doc = parse(&replayed).expect("response JSON");
    assert_eq!(
        first_doc.get("result"),
        replayed_doc.get("result"),
        "replay must be bit-identical: {first} vs {replayed}"
    );

    let (achieved, shed, latencies) = open_loop(addr, 50.0, 40);
    assert_eq!(shed, 0, "smoke burst must stay under capacity");
    assert_eq!(latencies.len(), 40, "every admitted request completes");
    println!(
        "serve_throughput smoke: miss->hit->replay identical; \
         burst {achieved:.0} runs/s, p99 {:.2} ms",
        percentile(&latencies, 0.99).as_secs_f64() * 1e3
    );
    server.shutdown();
    server.join();
}

fn main() {
    if std::env::var_os("TPAL_BENCH_SMOKE").is_some() {
        smoke();
        return;
    }

    let server = server();
    let addr = server.addr();

    let (miss_med, hit_med) = miss_vs_hit(addr);
    println!(
        "serve_throughput cache: median miss {:.3} ms, median hit {:.3} ms ({:.2}x)",
        miss_med.as_secs_f64() * 1e3,
        hit_med.as_secs_f64() * 1e3,
        miss_med.as_secs_f64() / hit_med.as_secs_f64().max(1e-9)
    );

    // Calibrate capacity: closed-loop latency on a warm cache, scaled
    // by the executor count (each executor runs one sim at a time).
    let mut client = Client::connect(addr).expect("connect");
    let body = sum_body(0);
    client.request("POST", "/run", &body).expect("warm-up");
    let mut base = Duration::MAX;
    for _ in 0..20 {
        let t = Instant::now();
        let (status, _) = client.request("POST", "/run", &body).expect("request");
        assert_eq!(status, 200);
        base = base.min(t.elapsed());
    }
    let executors = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(2);
    let capacity = executors as f64 / base.as_secs_f64().max(1e-9);
    println!(
        "serve_throughput: base latency {:.3} ms, {executors} executors, \
         calibrated capacity {capacity:.0} runs/s",
        base.as_secs_f64() * 1e3
    );

    let mut rows = Vec::new();
    for fraction in LOAD_FRACTIONS {
        let offered = capacity * fraction;
        let (achieved, shed, latencies) = open_loop(addr, offered, RUNS_PER_LOAD);
        let p50 = percentile(&latencies, 0.5);
        let p99 = percentile(&latencies, 0.99);
        println!(
            "serve_throughput @{:.0}% load: offered {offered:.0} runs/s, achieved \
             {achieved:.0} runs/s, p50 {:.2} ms, p99 {:.2} ms, {shed} shed",
            fraction * 100.0,
            p50.as_secs_f64() * 1e3,
            p99.as_secs_f64() * 1e3
        );
        rows.push(format!(
            "    {{\n      \"load_fraction\": {fraction},\n      \
             \"offered_rps\": {offered:.1},\n      \"achieved_rps\": {achieved:.1},\n      \
             \"completed\": {},\n      \"shed\": {shed},\n      \
             \"p50_us\": {},\n      \"p99_us\": {}\n    }}",
            latencies.len(),
            p50.as_micros(),
            p99.as_micros()
        ));
    }

    server.shutdown();
    server.join();

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"config\": {{\n    \
         \"clients\": {CLIENTS},\n    \"executors\": {executors},\n    \
         \"program\": \"parfor-sum\",\n    \"queue_cap\": 64,\n    \
         \"runs_per_load\": {RUNS_PER_LOAD},\n    \"sim_cores\": {SIM_CORES},\n    \
         \"sum_n\": {SUM_N}\n  }},\n  \"cache\": {{\n    \
         \"hit_median_us\": {},\n    \"miss_median_us\": {},\n    \
         \"miss_over_hit\": {:.3},\n    \"programs\": {MISS_PROGRAMS}\n  }},\n  \
         \"calibration\": {{\n    \"base_latency_us\": {},\n    \
         \"capacity_rps\": {capacity:.1}\n  }},\n  \"rows\": [\n{}\n  ]\n}}\n",
        hit_med.as_micros(),
        miss_med.as_micros(),
        miss_med.as_secs_f64() / hit_med.as_secs_f64().max(1e-9),
        base.as_micros(),
        rows.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_serve_throughput.json"
    );
    write_atomic(path, &json);
    println!("serve_throughput: wrote {path}");
}
