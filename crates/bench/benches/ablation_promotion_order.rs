//! Ablation (§2.3): outermost-first versus innermost-first promotion.
//!
//! The paper's promotion policy pops the *oldest* promotion-ready mark,
//! handing thieves the largest remaining subcomputation so that each
//! heartbeat's fixed promotion cost τ buys the most parallelism. This
//! ablation flips `prmsplit` to pop the *newest* mark instead and
//! re-runs representative workloads on the 15-core simulator. Checksums
//! are asserted equal — promotion order is a pure scheduling choice —
//! while task counts and speedups show why the paper chose outermost
//! first, most visibly on deep recursion (mergesort) where innermost
//! promotion ships leaf-sized tasks.

use tpal_bench::{banner, run_sim, scale, sim_serial_time, SIM_CORES, SIM_HEARTBEAT};
use tpal_core::machine::PromotionOrder;
use tpal_ir::lower::Mode;
use tpal_sim::SimConfig;

fn main() {
    banner(
        "ablation: promotion order",
        "outermost-first (paper §2.3) vs innermost-first prmsplit on 15 simulated cores",
    );
    println!(
        "\n{:<18} {:>9}  {:>8} {:>8} {:>8}  {:>8} {:>8} {:>8}",
        "workload", "serial", "old/spd", "tasks", "util", "new/spd", "tasks", "util"
    );
    let mut ratios: Vec<f64> = Vec::new();
    for name in [
        "plus-reduce-array",
        "spmv-powerlaw",
        "mandelbrot",
        "mergesort-uniform",
        "knapsack",
    ] {
        let w = tpal_workloads::workload(name).expect("workload");
        let spec = w.sim_spec(scale());
        let t_serial = sim_serial_time(&spec);
        let mut row = format!("{name:<18} {t_serial:>9} ");
        let mut speedups = [0.0f64; 2];
        for (k, order) in [PromotionOrder::OldestFirst, PromotionOrder::NewestFirst]
            .into_iter()
            .enumerate()
        {
            let mut cfg = SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT);
            cfg.promotion_order = order;
            let out = run_sim(&spec, Mode::Heartbeat, cfg);
            speedups[k] = t_serial as f64 / out.time as f64;
            row.push_str(&format!(
                " {:>7.2}x {:>8} {:>7.0}% ",
                speedups[k],
                out.stats.forks,
                out.utilization() * 100.0
            ));
        }
        ratios.push(speedups[0] / speedups[1]);
        println!("{row}");
    }
    let geo = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!("\ngeomean advantage of outermost-first: {:.2}x", geo.exp());
    println!(
        "\nshape: flat loops expose one mark at a time, so the policies tie;\n\
         on recursive workloads innermost-first promotes leaf-sized\n\
         continuations — more tasks for less overlap — which is exactly why\n\
         §2.3 promotes the oldest mark. Checksums matched throughout:\n\
         promotion order never affects results, only schedules."
    );
}
