//! Figure 11: speedup curves over core counts — Cilk versus TPAL/Linux,
//! per benchmark (the paper plots 1–15 cores).
//!
//! Reproduced on the simulator at cores ∈ {1, 2, 4, 8, 15}.

use tpal_bench::{all_workloads, banner, run_sim, scale, sim_serial_time, SIM_HEARTBEAT};
use tpal_ir::lower::Mode;
use tpal_sim::{InterruptModel, SimConfig};

const CORES: [usize; 5] = [1, 2, 4, 8, 15];

fn main() {
    banner("Figure 11", "speedup curves vs cores: Cilk vs TPAL/Linux");

    for w in all_workloads() {
        let spec = w.sim_spec(scale());
        let t_serial = sim_serial_time(&spec);
        println!("\n{} (serial {} cycles)", w.name(), t_serial);
        println!("{:<8} {:>10} {:>10}", "cores", "cilk x", "tpal x");
        for &cores in &CORES {
            let mut cilk_cfg = SimConfig::nautilus(cores, SIM_HEARTBEAT);
            cilk_cfg.interrupt = InterruptModel::Disabled;
            let cilk = run_sim(
                &spec,
                Mode::Eager {
                    workers: cores as u32,
                },
                cilk_cfg,
            );
            let tpal = run_sim(
                &spec,
                Mode::Heartbeat,
                SimConfig::linux(cores, SIM_HEARTBEAT),
            );
            println!(
                "{:<8} {:>9.2}x {:>9.2}x",
                cores,
                t_serial as f64 / cilk.time as f64,
                t_serial as f64 / tpal.time as f64
            );
        }
    }
    println!(
        "\npaper's shape: both systems scale; TPAL shows the lowest overhead at\n\
         small core counts and wins at scale except on mandelbrot, where the\n\
         Linux signalling rate cannot generate enough tasks (fixed by the\n\
         Nautilus mechanism, Figure 14)."
    );
}
