//! Figure 9: single-worker overhead of the Linux (ping-thread) heartbeat
//! mechanism — interrupts only, and interrupts plus promotions — at
//! ♥ = 100µs and ♥ = 20µs, normalised to serial.
//!
//! "Interrupts only" runs the TPAL kernels with promotions suppressed:
//! signals are delivered and serviced but no tasks are created, exactly
//! the paper's `Serial, N µs interrupts` bars.

use std::time::Duration;

use tpal_bench::{all_workloads, banner, geomean, scale, time_native};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};

fn measure(source: HeartbeatSource, banner_name: &str) {
    println!(
        "\n{:<22} {:>9} {:>9} {:>9} {:>9}",
        banner_name, "int 100µs", "all 100µs", "int 20µs", "all 20µs"
    );
    let configs: Vec<(Runtime, &str)> = vec![
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(source)
                    .heartbeat(Duration::from_micros(100))
                    .suppress_promotions(true),
            ),
            "int100",
        ),
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(source)
                    .heartbeat(Duration::from_micros(100)),
            ),
            "all100",
        ),
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(source)
                    .heartbeat(Duration::from_micros(20))
                    .suppress_promotions(true),
            ),
            "int20",
        ),
        (
            Runtime::new(
                RtConfig::default()
                    .workers(1)
                    .source(source)
                    .heartbeat(Duration::from_micros(20)),
            ),
            "all20",
        ),
    ];

    let mut geos: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for w in all_workloads() {
        let p = w.prepare(scale());
        let expected = p.expected();
        let t_serial = time_native(expected, || p.run_serial());
        let mut row = format!("{:<22}", w.name());
        for (k, (rt, _)) in configs.iter().enumerate() {
            let t = time_native(expected, || rt.run(|ctx| p.run_heartbeat(ctx)));
            let r = t.as_secs_f64() / t_serial.as_secs_f64();
            geos[k].push(r);
            row.push_str(&format!(" {:>8.2}x", r));
        }
        println!("{row}");
    }
    print!("{:<22}", "geomean");
    for g in &geos {
        print!(" {:>8.2}x", geomean(g));
    }
    println!();
}

fn main() {
    banner(
        "Figure 9",
        "1-worker overhead of Linux ping-thread heartbeats (interrupts only / +promotions)",
    );
    measure(HeartbeatSource::PingThread, "ping-thread (Linux)");
    println!(
        "\npaper's shape: ~3% interrupt-only at 100µs (geomean), up to ~16% at\n\
         20µs; promotions add a few percent at 100µs and become costly at 20µs."
    );
}
