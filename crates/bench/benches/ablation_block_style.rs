//! Ablation (§D.5): the *expanded* versus *reduced* block styles for
//! heartbeat loops.
//!
//! Expanded (the paper's `prod` listing): separate serial and parallel
//! loop blocks — the never-promoted path carries no join-record code at
//! all, at the cost of emitting every loop body twice. Reduced: one
//! block with a sentinel join record — smaller code, a couple of extra
//! instructions per loop *instance*.
//!
//! Measured three ways: static code size across the suite; dynamic
//! serial-path instructions on a microbenchmark that enters many small
//! loop instances (where the per-instance overhead shows); and 15-core
//! speedup (the styles must be performance-equivalent once promotion
//! begins).

use tpal_bench::{banner, run_sim, SIM_CORES, SIM_HEARTBEAT};
use tpal_ir::ast::{Expr, Function, IrProgram, ParFor, Reducer, Stmt};
use tpal_ir::lower::{lower, Mode};
use tpal_sim::{Sim, SimConfig};
use tpal_workloads::{all_workloads, Scale, SimSpec};

/// `m` calls of a function whose body is a tiny (n-iteration) parallel
/// loop: loop-instance entry/exit costs dominate.
fn many_small_loops(m: i64, n: i64) -> (IrProgram, i64) {
    let v = Expr::var;
    let i = Expr::int;
    let leaf = Function::new("leaf", ["n", "base"])
        .stmt(Stmt::assign("s", i(0)))
        .stmt(Stmt::ParFor(
            ParFor::new("k", i(0), v("n"))
                .body(vec![Stmt::assign("s", v("s").add(v("k")).add(v("base")))])
                .reducer(Reducer::new("s", tpal_core::isa::BinOp::Add, 0)),
        ))
        .stmt(Stmt::Return(v("s")));
    let main = Function::new("main", ["m", "n"])
        .stmt(Stmt::assign("total", i(0)))
        .stmt(Stmt::for_(
            "r",
            i(0),
            v("m"),
            vec![
                Stmt::call("leaf", vec![v("n"), v("r")], Some("x")),
                Stmt::assign("total", v("total").add(v("x"))),
            ],
        ))
        .stmt(Stmt::Return(v("total")));
    let expected: i64 = (0..m).map(|r| (0..n).map(|k| k + r).sum::<i64>()).sum();
    (
        IrProgram::new("main").function(main).function(leaf),
        expected,
    )
}

fn main() {
    banner(
        "ablation: block style",
        "expanded vs reduced heartbeat loop blocks (§D.5)",
    );

    // (a) Static code size across the suite.
    println!("\nstatic code size (blocks / instructions)");
    println!(
        "{:<22} {:>16} {:>16} {:>8}",
        "benchmark", "reduced", "expanded", "growth"
    );
    for w in all_workloads() {
        let spec = w.sim_spec(Scale::Quick);
        let red = lower(&spec.ir, Mode::Heartbeat).unwrap().program;
        let exp = lower(&spec.ir, Mode::HeartbeatExpanded).unwrap().program;
        println!(
            "{:<22} {:>7}/{:<8} {:>7}/{:<8} {:>7.2}x",
            w.name(),
            red.block_count(),
            red.instr_count(),
            exp.block_count(),
            exp.instr_count(),
            exp.instr_count() as f64 / red.instr_count() as f64
        );
    }

    // (b) Dynamic serial-path cost on many small loop instances.
    let (ir, expected) = many_small_loops(2_000, 8);
    println!("\nserial-path instructions, 2000 calls of an 8-iteration loop");
    let mut counts = Vec::new();
    for (label, mode) in [
        ("serial", Mode::Serial),
        ("reduced", Mode::Heartbeat),
        ("expanded", Mode::HeartbeatExpanded),
    ] {
        let lowered = lower(&ir, mode).unwrap();
        let mut cfg = SimConfig::serial();
        cfg.cores = 1;
        let mut sim = Sim::new(&lowered.program, cfg);
        sim.set_reg(&lowered.param_reg("m"), 2_000).unwrap();
        sim.set_reg(&lowered.param_reg("n"), 8).unwrap();
        let out = sim.run().unwrap();
        assert_eq!(out.read_reg(&lowered.result_reg), Some(expected));
        println!("  {label:<10} {:>10} instructions", out.stats.instructions);
        counts.push(out.stats.instructions);
    }
    println!(
        "  per-instance saving of expanded over reduced: {:.2} instructions",
        (counts[1] as f64 - counts[2] as f64) / 2_000.0
    );

    // (c) Promotion-path equivalence at scale.
    println!("\n15-core speedup equivalence (spmv-powerlaw)");
    let w = tpal_workloads::workload("spmv-powerlaw").unwrap();
    let spec: SimSpec = w.sim_spec(Scale::Quick);
    let serial = run_sim(&spec, Mode::Serial, SimConfig::serial()).time;
    for (label, mode) in [
        ("reduced", Mode::Heartbeat),
        ("expanded", Mode::HeartbeatExpanded),
    ] {
        let out = run_sim(&spec, mode, SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT));
        println!(
            "  {label:<10} {:>6.2}x  (tasks {})",
            serial as f64 / out.time as f64,
            out.stats.forks
        );
    }
    println!(
        "\nshape (§D.5): expanded trades code size for the cleanest serial\n\
         path; both styles perform alike once promotions begin."
    );
}
