//! Figure 10: achieved versus target heartbeat rate, Linux (ping
//! thread) versus Nautilus (per-core timer), at the leisurely and
//! aggressive intervals.
//!
//! Two reproductions are reported:
//!
//! * **simulated, 15 cores** — the delivery models of `tpal-sim`, where
//!   the sequential ping round provably cannot meet `P × latency > ♥`;
//! * **native** — the real ping thread (sleep-based) and the real local
//!   timer on this machine's workers, measured over a fixed busy
//!   workload.

use std::time::Duration;

use tpal_bench::{banner, run_sim, scale, SIM_CORES, SIM_HEARTBEAT, SIM_HEARTBEAT_FAST};
use tpal_ir::lower::Mode;
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};
use tpal_sim::SimConfig;

fn native_rate(source: HeartbeatSource, us: u64, workers: usize) -> (f64, f64) {
    let rt = Runtime::new(
        RtConfig::default()
            .workers(workers)
            .source(source)
            .heartbeat(Duration::from_micros(us)),
    );
    let t = std::time::Instant::now();
    // A busy parallel workload, repeated until the run is long enough
    // to average over many beats.
    let n = 8_000_000usize;
    let budget = match scale() {
        tpal_workloads::Scale::Quick => Duration::from_millis(120),
        tpal_workloads::Scale::Full => Duration::from_millis(1_000),
    };
    while t.elapsed() < budget {
        let s = rt.run(|ctx| {
            ctx.reduce(
                0..n,
                0u64,
                |_, i, a| a ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                |a, b| a ^ b,
            )
        });
        std::hint::black_box(s);
    }
    let elapsed = t.elapsed();
    let delivered = rt.stats().heartbeats_delivered as f64;
    let target = (elapsed.as_micros() as f64 / us as f64) * workers as f64;
    (delivered / elapsed.as_secs_f64(), delivered / target)
}

fn main() {
    banner(
        "Figure 10",
        "achieved vs target heartbeat rate (Linux ping thread vs per-core timer)",
    );

    // --- Simulated, 15 cores, every workload -------------------------
    println!("\nsimulated (15 cores): fraction of target rate achieved");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "linux ♥=3k", "naut ♥=3k", "linux ♥=600", "naut ♥=600"
    );
    for w in tpal_workloads::all_workloads() {
        let spec = w.sim_spec(scale());
        let mut row = format!("{:<22}", w.name());
        for cfg in [
            SimConfig::linux(SIM_CORES, SIM_HEARTBEAT),
            SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT),
            SimConfig::linux(SIM_CORES, SIM_HEARTBEAT_FAST),
            SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT_FAST),
        ] {
            let out = run_sim(&spec, Mode::Heartbeat, cfg);
            row.push_str(&format!(
                " {:>11.0}%",
                out.heartbeat_rate_achieved() * 100.0
            ));
        }
        println!("{row}");
    }

    // --- Native --------------------------------------------------------
    let workers = tpal_bench::native_workers();
    println!("\nnative ({workers} workers): delivered heartbeats per second (and % of target)");
    println!(
        "{:<22} {:>20} {:>20}",
        "interval", "ping thread", "local timer"
    );
    for us in [100u64, 20] {
        let (rp, fp) = native_rate(HeartbeatSource::PingThread, us, workers);
        let (rl, fl) = native_rate(HeartbeatSource::LocalTimer, us, workers);
        println!(
            "{:<22} {:>11.0}/s ({:>3.0}%) {:>11.0}/s ({:>3.0}%)",
            format!("♥ = {us}µs"),
            rp,
            fp * 100.0,
            rl,
            fl * 100.0
        );
    }
    println!(
        "\npaper's shape: the ping thread misses the target — mildly at 100µs,\n\
         by 2.7–9x at 20µs — while the per-core timer consistently hits it.\n\
         (Natively, only busy workers poll, so the achievable ceiling is\n\
         busy-workers/total; on this machine's single CPU the sleep-based ping\n\
         thread additionally contends with the workers for the core — an\n\
         exaggerated form of the Linux delivery problems of §4.4.)"
    );
}
