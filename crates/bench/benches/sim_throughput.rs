//! Simulated instructions per second of the event-driven engine
//! ([`Sim`]) at each **execution tier** (reference interpreter, decoded
//! micro-ops, threaded code) versus the cycle-tick reference
//! ([`SimRef`]), at the paper's 15 cores, over four workload shapes:
//! flat reduction (`plus-reduce-array`), nested loops
//! (`floyd-warshall-small`), irregular fork-join recursion
//! (`mergesort-uniform`), and an escape-time flat loop with
//! data-dependent trip counts (`mandelbrot`). Writes
//! `BENCH_sim_throughput.json` at the repo root (atomically: temp file
//! in the same directory, then rename) with per-tier throughput
//! columns, the threaded-over-decoded speedup, the decoded tier's
//! throughput relative to the pre-trace baseline (the
//! zero-cost-when-off check), the slowdown with structured tracing
//! recording, and a scheduling-policy sweep (`heartbeat` vs `eager` vs
//! `never` promotion on the flat and nested shapes) tracking what each
//! policy costs the simulator hot path.
//!
//! With `TPAL_BENCH_SMOKE=1` the bench runs each workload once per
//! engine *per tier* and asserts they all agree — a CI-sized canary for
//! decode/threaded-compile regressions (panics, equivalence drift under
//! `debug_assertions`) — then times `plus-reduce-array` on the decoded
//! and threaded tiers and fails if threaded is more than 10% slower
//! than decoded, without criterion sampling and without touching the
//! JSON record.

use criterion::{criterion_group, Criterion, Throughput};

use tpal_bench::write_atomic;
use tpal_ir::lower::{lower, Mode};
use tpal_sim::{ExecTier, Policy, Sim, SimConfig, SimRef};
use tpal_workloads::{workload, Scale};

const CASES: [&str; 4] = [
    "plus-reduce-array",
    "floyd-warshall-small",
    "mergesort-uniform",
    "mandelbrot",
];

/// The policy sweep: one flat and one nested shape, under the three
/// promotion policies whose costs bracket the design space.
const SWEEP_CASES: [&str; 2] = ["plus-reduce-array", "floyd-warshall-small"];
const SWEEP_POLICIES: [&str; 3] = ["heartbeat", "eager", "never"];

/// Decoded-tier throughput (instr/s) recorded by the previous bench run
/// on this machine, before the trace subsystem landed. The decoded
/// column of the JSON record reports the relative change against these —
/// the "tracing off costs nothing" regression check, now also guarding
/// the decoded hot loop against slowdowns from the threaded-tier work.
const BASELINE_INSTR_PER_SEC: [(&str, f64); 4] = [
    ("plus-reduce-array", 186_024_958.0),
    ("floyd-warshall-small", 212_638_181.0),
    ("mergesort-uniform", 207_766_463.0),
    ("mandelbrot", 180_049_343.0),
];

/// Smoke-mode regression gate: threaded may be at most this much slower
/// than decoded on `plus-reduce-array` (it should be *faster*; the
/// slack absorbs shared-runner noise).
const SMOKE_MAX_THREADED_SLOWDOWN: f64 = 1.10;

fn config() -> SimConfig {
    SimConfig::nautilus(15, 3_000)
}

fn tier_config(tier: ExecTier) -> SimConfig {
    let mut cfg = config();
    cfg.exec_tier = tier;
    cfg
}

/// Builds, seeds, and runs one simulator engine on a workload spec.
macro_rules! run_engine {
    ($engine:ident, $lowered:expr, $spec:expr, $config:expr) => {{
        let mut sim = $engine::new(&$lowered.program, $config);
        for (name, data) in &$spec.input.arrays {
            let base = sim.alloc_array(data);
            sim.set_reg(&$lowered.param_reg(name), base).unwrap();
        }
        for (name, v) in &$spec.input.ints {
            sim.set_reg(&$lowered.param_reg(name), *v).unwrap();
        }
        sim.run().unwrap()
    }};
}

/// One engine-agreement pass over every case and every tier: each
/// tier's stats must equal the cycle-tick reference's under the bench
/// configuration. Then the smoke-sized perf gate: threaded must not be
/// more than [`SMOKE_MAX_THREADED_SLOWDOWN`] slower than decoded on the
/// flat reduction.
fn check_equivalence() {
    for name in CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        let ref_out = run_engine!(SimRef, lowered, spec, config());
        for tier in ExecTier::ALL {
            let new_out = run_engine!(Sim, lowered, spec, tier_config(tier));
            assert_eq!(
                new_out.stats, ref_out.stats,
                "{name} [{tier}]: engines diverged under bench config"
            );
        }
        println!(
            "sim_throughput smoke {name}: {} instrs, all tiers agree",
            ref_out.stats.instructions
        );
    }

    // Perf gate, min-of-7 interleaved (same estimator as the JSON
    // record): a threaded-tier dispatch regression should not hide
    // behind the equivalence checks.
    let name = "plus-reduce-array";
    let spec = workload(name)
        .expect("known workload")
        .sim_spec(Scale::Quick);
    let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
    let mut decoded_ns = u128::MAX;
    let mut threaded_ns = u128::MAX;
    for _ in 0..7 {
        let start = std::time::Instant::now();
        std::hint::black_box(
            run_engine!(Sim, lowered, spec, tier_config(ExecTier::Decoded))
                .stats
                .instructions,
        );
        decoded_ns = decoded_ns.min(start.elapsed().as_nanos());
        let start = std::time::Instant::now();
        std::hint::black_box(
            run_engine!(Sim, lowered, spec, tier_config(ExecTier::Threaded))
                .stats
                .instructions,
        );
        threaded_ns = threaded_ns.min(start.elapsed().as_nanos());
    }
    let ratio = threaded_ns as f64 / decoded_ns.max(1) as f64;
    println!(
        "sim_throughput smoke {name}: decoded {decoded_ns} ns, \
         threaded {threaded_ns} ns ({:.2}x decoded-over-threaded)",
        1.0 / ratio
    );
    assert!(
        ratio <= SMOKE_MAX_THREADED_SLOWDOWN,
        "{name}: threaded tier is {:.0}% slower than decoded \
         (gate: {:.0}%)",
        (ratio - 1.0) * 100.0,
        (SMOKE_MAX_THREADED_SLOWDOWN - 1.0) * 100.0
    );
}

fn bench_sim_throughput(c: &mut Criterion) {
    let config = config();

    let mut g = c.benchmark_group("sim_throughput");
    for name in CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        let instructions = run_engine!(Sim, lowered, spec, config).stats.instructions;
        g.throughput(Throughput::Elements(instructions));
        for tier in ExecTier::ALL {
            let cfg = tier_config(tier);
            g.bench_function(&format!("{name}/tier_{tier}"), |b| {
                b.iter(|| run_engine!(Sim, lowered, spec, cfg).stats.instructions)
            });
        }
        g.bench_function(&format!("{name}/cycle_tick_ref"), |b| {
            b.iter(|| {
                run_engine!(SimRef, lowered, spec, config)
                    .stats
                    .instructions
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sim_policy_sweep");
    for name in SWEEP_CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        for pname in SWEEP_POLICIES {
            let mut cfg = config;
            cfg.policy = Policy::parse(pname).unwrap();
            g.bench_function(&format!("{name}/{pname}"), |b| {
                b.iter(|| run_engine!(Sim, lowered, spec, cfg).stats.instructions)
            });
        }
    }
    g.finish();

    // Direct timed comparison for the JSON record (the criterion samples
    // above are for humans, this is for the regression file). All
    // engines' samples are interleaved and the minimum is kept:
    // run-to-run noise on a shared machine is strictly additive, so
    // min-of-N is the robust estimator for a deterministic
    // single-threaded run, and interleaving keeps a noisy phase from
    // landing entirely on one engine.
    let mut entries = Vec::new();
    for name in CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();

        let ref_out = run_engine!(SimRef, lowered, spec, config);
        for tier in ExecTier::ALL {
            let new_out = run_engine!(Sim, lowered, spec, tier_config(tier));
            assert_eq!(
                new_out.stats, ref_out.stats,
                "{name} [{tier}]: engines diverged under bench config"
            );
        }
        let instructions = ref_out.stats.instructions;
        let mut traced_config = tier_config(ExecTier::Threaded);
        traced_config.record_trace = true;
        let mut tier_ns = [u128::MAX; 3];
        let mut ref_ns = u128::MAX;
        let mut traced_ns = u128::MAX;
        for _ in 0..7 {
            for (k, tier) in ExecTier::ALL.into_iter().enumerate() {
                let cfg = tier_config(tier);
                let start = std::time::Instant::now();
                std::hint::black_box(run_engine!(Sim, lowered, spec, cfg).stats.instructions);
                tier_ns[k] = tier_ns[k].min(start.elapsed().as_nanos());
            }
            let start = std::time::Instant::now();
            std::hint::black_box(
                run_engine!(SimRef, lowered, spec, config)
                    .stats
                    .instructions,
            );
            ref_ns = ref_ns.min(start.elapsed().as_nanos());
            let start = std::time::Instant::now();
            std::hint::black_box(
                run_engine!(Sim, lowered, spec, traced_config)
                    .stats
                    .instructions,
            );
            traced_ns = traced_ns.min(start.elapsed().as_nanos());
        }
        let [interp_ns, decoded_ns, threaded_ns] = tier_ns;
        let speedup = ref_ns as f64 / threaded_ns.max(1) as f64;
        let threaded_vs_decoded = decoded_ns as f64 / threaded_ns.max(1) as f64;
        let ips = |ns: u128| instructions as f64 * 1e9 / ns.max(1) as f64;
        let baseline = BASELINE_INSTR_PER_SEC
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, b)| *b)
            .expect("baseline recorded for every case");
        // Positive = decoded tier faster than the pre-trace baseline run.
        let decoded_vs_baseline_pct = (ips(decoded_ns) / baseline - 1.0) * 100.0;
        let tracing_overhead_pct = (traced_ns as f64 / threaded_ns.max(1) as f64 - 1.0) * 100.0;
        println!(
            "sim_throughput {name}: {instructions} instrs, \
             interp {:.1} / decoded {:.1} / threaded {:.1} Minstr/s \
             (threaded {threaded_vs_decoded:.2}x decoded, \
             decoded {decoded_vs_baseline_pct:+.1}% vs pre-trace baseline), \
             cycle-tick ref {:.1} Minstr/s, speedup {speedup:.1}x, \
             tracing on {tracing_overhead_pct:+.1}%",
            ips(interp_ns) / 1e6,
            ips(decoded_ns) / 1e6,
            ips(threaded_ns) / 1e6,
            ips(ref_ns) / 1e6,
        );
        entries.push(format!(
            "    {{\n      \"workload\": \"{name}\",\n      \"instructions\": {instructions},\n      \
             \"tier_ref_ns\": {interp_ns},\n      \
             \"tier_decoded_ns\": {decoded_ns},\n      \
             \"tier_threaded_ns\": {threaded_ns},\n      \
             \"cycle_tick_ref_ns\": {ref_ns},\n      \
             \"tier_threaded_traced_ns\": {traced_ns},\n      \
             \"tier_ref_instr_per_sec\": {:.0},\n      \
             \"tier_decoded_instr_per_sec\": {:.0},\n      \
             \"tier_threaded_instr_per_sec\": {:.0},\n      \
             \"cycle_tick_ref_instr_per_sec\": {:.0},\n      \
             \"speedup\": {speedup:.2},\n      \
             \"threaded_speedup_vs_decoded\": {threaded_vs_decoded:.2},\n      \
             \"decoded_vs_baseline_pct\": {decoded_vs_baseline_pct:.2},\n      \
             \"tracing_on_overhead_pct\": {tracing_overhead_pct:.2}\n    }}",
            ips(interp_ns),
            ips(decoded_ns),
            ips(threaded_ns),
            ips(ref_ns),
        ));
    }
    // Scheduling-policy sweep: same min-of-N estimator, event engine
    // at the default (threaded) tier only (the equivalence suite covers
    // engine agreement per policy). Eager runs more instructions (every
    // handler runs) and never runs fewer (no handlers at all), so each
    // row records its own count.
    let mut sweep_entries = Vec::new();
    for name in SWEEP_CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        for pname in SWEEP_POLICIES {
            let mut cfg = config;
            cfg.policy = Policy::parse(pname).unwrap();
            let out = run_engine!(Sim, lowered, spec, cfg);
            let instructions = out.stats.instructions;
            let promotions = out.stats.promotions;
            let mut ns = u128::MAX;
            for _ in 0..5 {
                let start = std::time::Instant::now();
                std::hint::black_box(run_engine!(Sim, lowered, spec, cfg).stats.instructions);
                ns = ns.min(start.elapsed().as_nanos());
            }
            let ips = instructions as f64 * 1e9 / ns.max(1) as f64;
            println!(
                "sim_policy_sweep {name}/{pname}: {instructions} instrs, \
                 {promotions} promotions, {:.1} Minstr/s",
                ips / 1e6
            );
            sweep_entries.push(format!(
                "    {{\n      \"workload\": \"{name}\",\n      \"policy\": \"{pname}\",\n      \
                 \"instructions\": {instructions},\n      \"promotions\": {promotions},\n      \
                 \"event_engine_ns\": {ns},\n      \
                 \"event_engine_instr_per_sec\": {ips:.0}\n    }}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"config\": {{\n    \"cores\": {},\n    \
         \"heartbeat\": {},\n    \"interrupt\": \"nautilus\",\n    \"mode\": \"heartbeat\",\n    \
         \"scale\": \"quick\"\n  }},\n  \"workloads\": [\n{}\n  ],\n  \"policy_sweep\": [\n{}\n  ]\n}}\n",
        config.cores,
        config.heartbeat,
        entries.join(",\n"),
        sweep_entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_throughput.json"
    );
    write_atomic(path, &json);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim_throughput
}

fn main() {
    if std::env::var_os("TPAL_BENCH_SMOKE").is_some() {
        check_equivalence();
        return;
    }
    benches();
}
