//! Simulated instructions per second of the decoded, event-driven
//! engine ([`Sim`]) versus the cycle-tick reference ([`SimRef`]), at
//! the paper's 15 cores, over four workload shapes: flat reduction
//! (`plus-reduce-array`), nested loops (`floyd-warshall-small`),
//! irregular fork-join recursion (`mergesort-uniform`), and an
//! escape-time flat loop with data-dependent trip counts
//! (`mandelbrot`). Writes `BENCH_sim_throughput.json` at the repo root
//! with the measured speedups, the tracing-off throughput relative to
//! the pre-trace baseline (the zero-cost-when-off check), the slowdown
//! with structured tracing recording, and a scheduling-policy sweep
//! (`heartbeat` vs `eager` vs `never` promotion on the flat and nested
//! shapes) tracking what each policy costs the simulator hot path.
//!
//! With `TPAL_BENCH_SMOKE=1` the bench runs each workload once per
//! engine and asserts the engines agree — a CI-sized canary for decode
//! regressions (panics, equivalence drift under `debug_assertions`) —
//! without criterion sampling and without touching the JSON record.

use criterion::{criterion_group, Criterion, Throughput};

use tpal_ir::lower::{lower, Mode};
use tpal_sim::{Policy, Sim, SimConfig, SimRef};
use tpal_workloads::{workload, Scale};

const CASES: [&str; 4] = [
    "plus-reduce-array",
    "floyd-warshall-small",
    "mergesort-uniform",
    "mandelbrot",
];

/// The policy sweep: one flat and one nested shape, under the three
/// promotion policies whose costs bracket the design space.
const SWEEP_CASES: [&str; 2] = ["plus-reduce-array", "floyd-warshall-small"];
const SWEEP_POLICIES: [&str; 3] = ["heartbeat", "eager", "never"];

/// Event-engine throughput (instr/s) recorded by the previous bench run
/// on this machine, before the trace subsystem landed. The tracing-off
/// column of the JSON record reports the relative change against these —
/// the "tracing off costs nothing" regression check.
const BASELINE_INSTR_PER_SEC: [(&str, f64); 4] = [
    ("plus-reduce-array", 186_024_958.0),
    ("floyd-warshall-small", 212_638_181.0),
    ("mergesort-uniform", 207_766_463.0),
    ("mandelbrot", 180_049_343.0),
];

fn config() -> SimConfig {
    SimConfig::nautilus(15, 3_000)
}

/// Builds, seeds, and runs one simulator engine on a workload spec.
macro_rules! run_engine {
    ($engine:ident, $lowered:expr, $spec:expr, $config:expr) => {{
        let mut sim = $engine::new(&$lowered.program, $config);
        for (name, data) in &$spec.input.arrays {
            let base = sim.alloc_array(data);
            sim.set_reg(&$lowered.param_reg(name), base).unwrap();
        }
        for (name, v) in &$spec.input.ints {
            sim.set_reg(&$lowered.param_reg(name), *v).unwrap();
        }
        sim.run().unwrap()
    }};
}

/// One engine-agreement pass over every case: the decoded engine's
/// stats must equal the reference's under the bench configuration.
fn check_equivalence() {
    let config = config();
    for name in CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        let new_out = run_engine!(Sim, lowered, spec, config);
        let ref_out = run_engine!(SimRef, lowered, spec, config);
        assert_eq!(
            new_out.stats, ref_out.stats,
            "{name}: engines diverged under bench config"
        );
        println!(
            "sim_throughput smoke {name}: {} instrs, engines agree",
            new_out.stats.instructions
        );
    }
}

fn bench_sim_throughput(c: &mut Criterion) {
    let config = config();

    let mut g = c.benchmark_group("sim_throughput");
    for name in CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        let instructions = run_engine!(Sim, lowered, spec, config).stats.instructions;
        g.throughput(Throughput::Elements(instructions));
        g.bench_function(&format!("{name}/event_batched"), |b| {
            b.iter(|| run_engine!(Sim, lowered, spec, config).stats.instructions)
        });
        g.bench_function(&format!("{name}/cycle_tick_ref"), |b| {
            b.iter(|| {
                run_engine!(SimRef, lowered, spec, config)
                    .stats
                    .instructions
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sim_policy_sweep");
    for name in SWEEP_CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        for pname in SWEEP_POLICIES {
            let mut cfg = config;
            cfg.policy = Policy::parse(pname).unwrap();
            g.bench_function(&format!("{name}/{pname}"), |b| {
                b.iter(|| run_engine!(Sim, lowered, spec, cfg).stats.instructions)
            });
        }
    }
    g.finish();

    // Direct timed comparison for the JSON record (the criterion samples
    // above are for humans, this is for the regression file). The two
    // engines' samples are interleaved and the minimum is kept:
    // run-to-run noise on a shared machine is strictly additive, so
    // min-of-N is the robust estimator for a deterministic
    // single-threaded run, and interleaving keeps a noisy phase from
    // landing entirely on one engine.
    let mut entries = Vec::new();
    for name in CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();

        let new_out = run_engine!(Sim, lowered, spec, config);
        let ref_out = run_engine!(SimRef, lowered, spec, config);
        assert_eq!(
            new_out.stats, ref_out.stats,
            "{name}: engines diverged under bench config"
        );
        let instructions = new_out.stats.instructions;
        let mut traced_config = config;
        traced_config.record_trace = true;
        let mut new_ns = u128::MAX;
        let mut ref_ns = u128::MAX;
        let mut traced_ns = u128::MAX;
        for _ in 0..7 {
            let start = std::time::Instant::now();
            std::hint::black_box(run_engine!(Sim, lowered, spec, config).stats.instructions);
            new_ns = new_ns.min(start.elapsed().as_nanos());
            let start = std::time::Instant::now();
            std::hint::black_box(
                run_engine!(SimRef, lowered, spec, config)
                    .stats
                    .instructions,
            );
            ref_ns = ref_ns.min(start.elapsed().as_nanos());
            let start = std::time::Instant::now();
            std::hint::black_box(
                run_engine!(Sim, lowered, spec, traced_config)
                    .stats
                    .instructions,
            );
            traced_ns = traced_ns.min(start.elapsed().as_nanos());
        }
        let speedup = ref_ns as f64 / new_ns.max(1) as f64;
        let ips = |ns: u128| instructions as f64 * 1e9 / ns.max(1) as f64;
        let baseline = BASELINE_INSTR_PER_SEC
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, b)| *b)
            .expect("baseline recorded for every case");
        // Positive = faster than the pre-trace baseline run.
        let vs_baseline_pct = (ips(new_ns) / baseline - 1.0) * 100.0;
        let tracing_overhead_pct = (traced_ns as f64 / new_ns.max(1) as f64 - 1.0) * 100.0;
        println!(
            "sim_throughput {name}: {instructions} instrs, \
             event {:.1} Minstr/s ({vs_baseline_pct:+.1}% vs pre-trace baseline), \
             ref {:.1} Minstr/s, speedup {speedup:.1}x, \
             tracing on {tracing_overhead_pct:+.1}%",
            ips(new_ns) / 1e6,
            ips(ref_ns) / 1e6,
        );
        entries.push(format!(
            "    {{\n      \"workload\": \"{name}\",\n      \"instructions\": {instructions},\n      \
             \"event_engine_ns\": {new_ns},\n      \"cycle_tick_ref_ns\": {ref_ns},\n      \
             \"event_engine_traced_ns\": {traced_ns},\n      \
             \"event_engine_instr_per_sec\": {:.0},\n      \
             \"cycle_tick_ref_instr_per_sec\": {:.0},\n      \"speedup\": {speedup:.2},\n      \
             \"tracing_off_vs_baseline_pct\": {vs_baseline_pct:.2},\n      \
             \"tracing_on_overhead_pct\": {tracing_overhead_pct:.2}\n    }}",
            ips(new_ns),
            ips(ref_ns),
        ));
    }
    // Scheduling-policy sweep: same min-of-N estimator, event engine
    // only (the equivalence suite covers engine agreement per policy).
    // Eager runs more instructions (every handler runs) and never runs
    // fewer (no handlers at all), so each row records its own count.
    let mut sweep_entries = Vec::new();
    for name in SWEEP_CASES {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        for pname in SWEEP_POLICIES {
            let mut cfg = config;
            cfg.policy = Policy::parse(pname).unwrap();
            let out = run_engine!(Sim, lowered, spec, cfg);
            let instructions = out.stats.instructions;
            let promotions = out.stats.promotions;
            let mut ns = u128::MAX;
            for _ in 0..5 {
                let start = std::time::Instant::now();
                std::hint::black_box(run_engine!(Sim, lowered, spec, cfg).stats.instructions);
                ns = ns.min(start.elapsed().as_nanos());
            }
            let ips = instructions as f64 * 1e9 / ns.max(1) as f64;
            println!(
                "sim_policy_sweep {name}/{pname}: {instructions} instrs, \
                 {promotions} promotions, {:.1} Minstr/s",
                ips / 1e6
            );
            sweep_entries.push(format!(
                "    {{\n      \"workload\": \"{name}\",\n      \"policy\": \"{pname}\",\n      \
                 \"instructions\": {instructions},\n      \"promotions\": {promotions},\n      \
                 \"event_engine_ns\": {ns},\n      \
                 \"event_engine_instr_per_sec\": {ips:.0}\n    }}"
            ));
        }
    }

    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"config\": {{\n    \"cores\": {},\n    \
         \"heartbeat\": {},\n    \"interrupt\": \"nautilus\",\n    \"mode\": \"heartbeat\",\n    \
         \"scale\": \"quick\"\n  }},\n  \"workloads\": [\n{}\n  ],\n  \"policy_sweep\": [\n{}\n  ]\n}}\n",
        config.cores,
        config.heartbeat,
        entries.join(",\n"),
        sweep_entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_throughput.json"
    );
    std::fs::write(path, json).expect("write BENCH_sim_throughput.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sim_throughput
}

fn main() {
    if std::env::var_os("TPAL_BENCH_SMOKE").is_some() {
        check_equivalence();
        return;
    }
    benches();
}
