//! Ablation (§6): the cost of software polling, the substitution this
//! reproduction makes for rollforward compilation.
//!
//! The paper argues (§6) that software polling works if the polls are
//! sparse enough to be cheap but dense enough to meet the heartbeat —
//! advanced Java runtimes get it to ~2%. This bench sweeps the polling
//! stride of the native runtime's latent loops on a fine-grained
//! reduction and reports (a) the single-worker overhead versus serial
//! and (b) whether the heartbeat still lands (promotions happen) at
//! coarse strides.

use std::time::Duration;

use tpal_bench::{banner, ms, scale, time_native};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};
use tpal_workloads::{workload, Scale};

fn main() {
    banner(
        "ablation: polling stride",
        "software-polling cost vs heartbeat granularity (§6)",
    );
    let w = workload("plus-reduce-array").expect("workload");
    let p = w.prepare(scale());
    let expected = p.expected();
    let t_serial = time_native(expected, || p.run_serial());
    println!(
        "\nserial baseline: {:.2} ms ({:?} input)\n",
        ms(t_serial),
        match scale() {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    println!(
        "{:>8} {:>12} {:>10} {:>12}",
        "stride", "time ms", "overhead", "tasks"
    );
    for stride in [1usize, 4, 16, 32, 128, 1024] {
        let rt = Runtime::new(
            RtConfig::default()
                .workers(1)
                .source(HeartbeatSource::PingThread)
                .heartbeat(Duration::from_micros(100))
                .poll_stride(stride),
        );
        let t = time_native(expected, || rt.run(|ctx| p.run_heartbeat(ctx)));
        println!(
            "{:>8} {:>12.2} {:>9.2}x {:>12}",
            stride,
            ms(t),
            t.as_secs_f64() / t_serial.as_secs_f64(),
            rt.stats().tasks_created / tpal_bench::trials() as u64
        );
    }
    println!(
        "\nshape: per-iteration polling (stride 1) inhibits loop optimisation\n\
         and costs the most; modest strides recover most of it while\n\
         promotions still land every beat. plus-reduce is the adversarial\n\
         case — a maximally vectorisable kernel — so a residual gap versus\n\
         pure serial remains: that residue is the price of substituting\n\
         software polling for the paper's rollforward compilation (§6). On\n\
         kernels with real bodies the same machinery costs ~0-10% (fig08)."
    );
}
