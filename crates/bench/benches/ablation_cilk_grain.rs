//! Ablation (§4.3): Cilk's loop-grain heuristic versus manual grains on
//! the parallelism-starved floyd-warshall size — the granularity-control
//! dilemma that motivates heartbeat scheduling.
//!
//! Sweeps the eager split grain on the simulator. Small grains create
//! floods of tiny tasks (task overheads dominate); large grains starve
//! the cores; and the best fixed grain is input-dependent, which is
//! exactly the manual-tuning burden TPAL removes.

use tpal_bench::{banner, run_sim, scale, sim_serial_time, SIM_CORES, SIM_HEARTBEAT};
use tpal_ir::lower::Mode;
use tpal_sim::{InterruptModel, SimConfig};

fn main() {
    banner(
        "ablation: cilk grain",
        "eager split grain sweep (8P-equivalent worker counts) on floyd-warshall",
    );

    for name in ["floyd-warshall-small", "floyd-warshall-large"] {
        let w = tpal_workloads::workload(name).expect("workload");
        let spec = w.sim_spec(scale());
        let t_serial = sim_serial_time(&spec);
        println!("\n{name} (serial {t_serial} cycles, 15 cores)");
        println!("{:>24} {:>10} {:>10}", "grain policy", "tasks", "speedup");

        // Vary the `workers` knob of the 8P heuristic: grain = n/(8w).
        for (label, w8) in [
            ("8P for P=1  (coarse)", 1u32),
            ("8P for P=4", 4),
            ("8P for P=15 (Cilk)", 15),
            ("8P for P=60 (fine)", 60),
            ("8P for P=240 (finest)", 240),
        ] {
            let mut cfg = SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT);
            cfg.interrupt = InterruptModel::Disabled;
            let out = run_sim(&spec, Mode::Eager { workers: w8 }, cfg);
            println!(
                "{:>24} {:>10} {:>9.2}x",
                label,
                out.stats.forks,
                t_serial as f64 / out.time as f64
            );
        }

        let tpal = run_sim(
            &spec,
            Mode::Heartbeat,
            SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT),
        );
        println!(
            "{:>24} {:>10} {:>9.2}x",
            "heartbeat (no tuning)",
            tpal.stats.forks,
            t_serial as f64 / tpal.time as f64
        );
    }
    println!(
        "\nshape: no fixed grain is right for both sizes, while heartbeat\n\
         scheduling needs no per-input tuning — §4.3's argument."
    );
}
