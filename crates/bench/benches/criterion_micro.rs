//! Criterion microbenchmarks of the substrates: deque operations, the
//! abstract machine's step rate, assembler throughput, and the
//! per-construct costs of the two native runtimes (the unit costs behind
//! τ and ♥ tuning).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tpal_cilk::{cilk_spawn2, CilkRuntime};
use tpal_core::asm::parse_program;
use tpal_core::machine::{Machine, MachineConfig};
use tpal_core::programs::prod;
use tpal_deque::{deque, Steal};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};

fn bench_deque(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let (w, _s) = deque::<u64>();
        b.iter(|| {
            w.push(1);
            w.pop()
        });
    });
    g.bench_function("push_steal", |b| {
        let (w, s) = deque::<u64>();
        b.iter(|| {
            w.push(1);
            match s.steal() {
                Steal::Success(v) => v,
                _ => unreachable!("single-threaded steal"),
            }
        });
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let program = prod();
    let mut g = c.benchmark_group("machine");
    // prod(a=1000) executes ~4k instructions serially.
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("steps_serial_prod_1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program, MachineConfig::serial());
            m.set_reg("a", 1_000).unwrap();
            m.set_reg("b", 3).unwrap();
            m.run().unwrap().read_reg("c")
        });
    });
    g.bench_function("steps_heartbeat_prod_1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program, MachineConfig::default().with_heartbeat(100));
            m.set_reg("a", 1_000).unwrap();
            m.set_reg("b", 3).unwrap();
            m.run().unwrap().read_reg("c")
        });
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let text = tpal_core::asm::print_program(&prod());
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_prod", |b| {
        b.iter(|| parse_program(&text).unwrap());
    });
    g.finish();
}

fn bench_runtime_constructs(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_constructs");

    // The cost of a latent (unpromoted) join2: the serial-by-default
    // price of a fork point.
    let rt = Runtime::new(
        RtConfig::default()
            .workers(1)
            .source(HeartbeatSource::Disabled),
    );
    g.bench_function("join2_latent", |b| {
        b.iter_batched(
            || (),
            |()| rt.run(|ctx| ctx.join2(|_| 1u64, |_| 2u64)),
            BatchSize::SmallInput,
        );
    });

    // The cost of an eager spawn (Cilk's per-fork price).
    let cilk = CilkRuntime::new(1);
    g.bench_function("spawn2_eager", |b| {
        b.iter_batched(
            || (),
            |()| cilk.run(|ctx| cilk_spawn2(ctx, |_| 1u64, |_| 2u64)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_deque, bench_machine, bench_assembler, bench_runtime_constructs
}
criterion_main!(benches);
