//! Criterion microbenchmarks of the substrates: deque operations, the
//! abstract machine's step rate, assembler throughput, and the
//! per-construct costs of the two native runtimes (the unit costs behind
//! τ and ♥ tuning).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tpal_cilk::{cilk_spawn2, CilkRuntime};
use tpal_core::asm::parse_program;
use tpal_core::machine::{Machine, MachineConfig};
use tpal_core::programs::prod;
use tpal_deque::{deque, Steal};
use tpal_ir::lower::{lower, Mode};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};
use tpal_sim::{Sim, SimConfig, SimRef};
use tpal_workloads::{workload, Scale};

fn bench_deque(c: &mut Criterion) {
    let mut g = c.benchmark_group("deque");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push_pop", |b| {
        let (w, _s) = deque::<u64>();
        b.iter(|| {
            w.push(1);
            w.pop()
        });
    });
    g.bench_function("push_steal", |b| {
        let (w, s) = deque::<u64>();
        b.iter(|| {
            w.push(1);
            match s.steal() {
                Steal::Success(v) => v,
                _ => unreachable!("single-threaded steal"),
            }
        });
    });
    g.finish();
}

fn bench_machine(c: &mut Criterion) {
    let program = prod();
    let mut g = c.benchmark_group("machine");
    // prod(a=1000) executes ~4k instructions serially.
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("steps_serial_prod_1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program, MachineConfig::serial());
            m.set_reg("a", 1_000).unwrap();
            m.set_reg("b", 3).unwrap();
            m.run().unwrap().read_reg("c")
        });
    });
    g.bench_function("steps_heartbeat_prod_1000", |b| {
        b.iter(|| {
            let mut m = Machine::new(&program, MachineConfig::default().with_heartbeat(100));
            m.set_reg("a", 1_000).unwrap();
            m.set_reg("b", 3).unwrap();
            m.run().unwrap().read_reg("c")
        });
    });
    g.finish();
}

fn bench_assembler(c: &mut Criterion) {
    let text = tpal_core::asm::print_program(&prod());
    let mut g = c.benchmark_group("assembler");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("parse_prod", |b| {
        b.iter(|| parse_program(&text).unwrap());
    });
    g.finish();
}

fn bench_runtime_constructs(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_constructs");

    // The cost of a latent (unpromoted) join2: the serial-by-default
    // price of a fork point.
    let rt = Runtime::new(
        RtConfig::default()
            .workers(1)
            .source(HeartbeatSource::Disabled),
    );
    g.bench_function("join2_latent", |b| {
        b.iter_batched(
            || (),
            |()| rt.run(|ctx| ctx.join2(|_| 1u64, |_| 2u64)),
            BatchSize::SmallInput,
        );
    });

    // The cost of an eager spawn (Cilk's per-fork price).
    let cilk = CilkRuntime::new(1);
    g.bench_function("spawn2_eager", |b| {
        b.iter_batched(
            || (),
            |()| cilk.run(|ctx| cilk_spawn2(ctx, |_| 1u64, |_| 2u64)),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

/// Builds, seeds, and runs one simulator engine on a workload spec.
macro_rules! run_engine {
    ($engine:ident, $lowered:expr, $spec:expr, $config:expr) => {{
        let mut sim = $engine::new(&$lowered.program, $config);
        for (name, data) in &$spec.input.arrays {
            let base = sim.alloc_array(data);
            sim.set_reg(&$lowered.param_reg(name), base).unwrap();
        }
        for (name, v) in &$spec.input.ints {
            sim.set_reg(&$lowered.param_reg(name), *v).unwrap();
        }
        sim.run().unwrap()
    }};
}

/// Simulated instructions per second, old (cycle-tick `SimRef`) versus
/// new (event-driven, batching `Sim`) engine, at the paper's 15 cores.
/// Also writes `BENCH_sim_throughput.json` at the repo root with the
/// measured speedups.
fn bench_sim_throughput(c: &mut Criterion) {
    let cases = ["plus-reduce-array", "floyd-warshall-small"];
    let config = SimConfig::nautilus(15, 3_000);

    let mut g = c.benchmark_group("sim_throughput");
    for name in cases {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();
        let instructions = run_engine!(Sim, lowered, spec, config).stats.instructions;
        g.throughput(Throughput::Elements(instructions));
        g.bench_function(&format!("{name}/event_batched"), |b| {
            b.iter(|| run_engine!(Sim, lowered, spec, config).stats.instructions)
        });
        g.bench_function(&format!("{name}/cycle_tick_ref"), |b| {
            b.iter(|| {
                run_engine!(SimRef, lowered, spec, config)
                    .stats
                    .instructions
            })
        });
    }
    g.finish();

    // Direct timed comparison for the JSON record (the criterion samples
    // above are for humans, this is for the regression file). The two
    // engines' samples are interleaved and the minimum is kept:
    // run-to-run noise on a shared machine is strictly additive, so
    // min-of-N is the robust estimator for a deterministic
    // single-threaded run, and interleaving keeps a noisy phase from
    // landing entirely on one engine.
    let mut entries = Vec::new();
    for name in cases {
        let spec = workload(name)
            .expect("known workload")
            .sim_spec(Scale::Quick);
        let lowered = lower(&spec.ir, Mode::Heartbeat).unwrap();

        let new_out = run_engine!(Sim, lowered, spec, config);
        let ref_out = run_engine!(SimRef, lowered, spec, config);
        assert_eq!(
            new_out.stats, ref_out.stats,
            "{name}: engines diverged under bench config"
        );
        let instructions = new_out.stats.instructions;
        let mut new_ns = u128::MAX;
        let mut ref_ns = u128::MAX;
        for _ in 0..7 {
            let start = std::time::Instant::now();
            std::hint::black_box(run_engine!(Sim, lowered, spec, config).stats.instructions);
            new_ns = new_ns.min(start.elapsed().as_nanos());
            let start = std::time::Instant::now();
            std::hint::black_box(
                run_engine!(SimRef, lowered, spec, config)
                    .stats
                    .instructions,
            );
            ref_ns = ref_ns.min(start.elapsed().as_nanos());
        }
        let speedup = ref_ns as f64 / new_ns.max(1) as f64;
        let ips = |ns: u128| instructions as f64 * 1e9 / ns.max(1) as f64;
        println!(
            "sim_throughput {name}: {instructions} instrs, \
             event {:.1} Minstr/s, ref {:.1} Minstr/s, speedup {speedup:.1}x",
            ips(new_ns) / 1e6,
            ips(ref_ns) / 1e6,
        );
        entries.push(format!(
            "    {{\n      \"workload\": \"{name}\",\n      \"instructions\": {instructions},\n      \
             \"event_engine_ns\": {new_ns},\n      \"cycle_tick_ref_ns\": {ref_ns},\n      \
             \"event_engine_instr_per_sec\": {:.0},\n      \
             \"cycle_tick_ref_instr_per_sec\": {:.0},\n      \"speedup\": {speedup:.2}\n    }}",
            ips(new_ns),
            ips(ref_ns),
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"config\": {{\n    \"cores\": {},\n    \
         \"heartbeat\": {},\n    \"interrupt\": \"nautilus\",\n    \"mode\": \"heartbeat\",\n    \
         \"scale\": \"quick\"\n  }},\n  \"workloads\": [\n{}\n  ]\n}}\n",
        config.cores,
        config.heartbeat,
        entries.join(",\n")
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_sim_throughput.json"
    );
    std::fs::write(path, json).expect("write BENCH_sim_throughput.json");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_deque, bench_machine, bench_assembler, bench_runtime_constructs, bench_sim_throughput
}
criterion_main!(benches);
