//! Ablation (§5): how signal-delivery latency degrades heartbeat
//! scheduling — the design space between Linux signals and Nautilus
//! IPIs.
//!
//! Sweeps the simulated per-signal delivery latency of the ping-thread
//! model at the aggressive ♥ and reports achieved rate, tasks, and
//! speedup. At latency × cores > ♥, the target rate is unreachable and
//! promotions starve — the quantitative version of Figure 12's
//! "unsteady rates" picture.

use tpal_bench::{banner, run_sim, scale, sim_serial_time, SIM_CORES, SIM_HEARTBEAT_FAST};
use tpal_ir::lower::Mode;
use tpal_sim::{InterruptModel, SimConfig};

fn main() {
    banner(
        "ablation: delivery latency",
        "ping-thread per-signal latency sweep at the aggressive ♥",
    );
    let w = tpal_workloads::workload("mandelbrot").expect("workload");
    let spec = w.sim_spec(scale());
    let t_serial = sim_serial_time(&spec);

    println!(
        "\n{:>10} {:>14} {:>10} {:>12}  (♥ = {}, {} cores)",
        "latency", "rate achieved", "tasks", "speedup", SIM_HEARTBEAT_FAST, SIM_CORES
    );
    for latency in [5u64, 20, 60, 110, 200, 400] {
        let mut cfg = SimConfig::linux(SIM_CORES, SIM_HEARTBEAT_FAST);
        cfg.interrupt = InterruptModel::PingThread {
            latency,
            jitter: latency / 2,
            service_cost: 60,
        };
        let out = run_sim(&spec, Mode::Heartbeat, cfg);
        println!(
            "{:>10} {:>13.0}% {:>10} {:>11.2}x",
            latency,
            out.heartbeat_rate_achieved() * 100.0,
            out.stats.forks,
            t_serial as f64 / out.time as f64
        );
    }
    println!(
        "\nshape: once cores × latency exceeds ♥ ({} cycles), the achieved rate\n\
         collapses proportionally. Note §5.3's double-edged sword: when the\n\
         aggressive ♥ over-provisions tasks, *missing* it can even help — the\n\
         same effect the paper observes for Linux at 20µs.",
        SIM_HEARTBEAT_FAST
    );
}
