//! Figure 7: 15-core speedups over the serial baseline — Cilk versus
//! TPAL/Linux (♥ = 100µs).
//!
//! Reproduced on the multicore simulator: each workload's IR is lowered
//! eagerly (Cilk) and with heartbeat code versioning (TPAL), and both
//! run on 15 simulated cores; TPAL uses the ping-thread (Linux signal)
//! interrupt model.

use tpal_bench::{
    all_workloads, banner, geomean, run_sim, scale, sim_serial_time, SIM_CORES, SIM_HEARTBEAT,
};
use tpal_ir::lower::Mode;
use tpal_sim::{InterruptModel, SimConfig};

fn main() {
    banner(
        "Figure 7",
        "15-core speedup over serial: Cilk vs TPAL/Linux",
    );
    println!(
        "\n{:<22} {:>12} {:>12} {:>12}",
        "benchmark", "serial cyc", "cilk x", "tpal x"
    );

    let mut cilk_iter = Vec::new();
    let mut tpal_iter = Vec::new();
    let mut cilk_rec = Vec::new();
    let mut tpal_rec = Vec::new();

    for w in all_workloads() {
        let spec = w.sim_spec(scale());
        let t_serial = sim_serial_time(&spec);

        // Cilk: eager decomposition, no interrupts.
        let mut cilk_cfg = SimConfig::nautilus(SIM_CORES, SIM_HEARTBEAT);
        cilk_cfg.interrupt = InterruptModel::Disabled;
        let cilk = run_sim(
            &spec,
            Mode::Eager {
                workers: SIM_CORES as u32,
            },
            cilk_cfg,
        );

        // TPAL with the Linux ping-thread delivery model.
        let tpal = run_sim(
            &spec,
            Mode::Heartbeat,
            SimConfig::linux(SIM_CORES, SIM_HEARTBEAT),
        );

        let sc = t_serial as f64 / cilk.time as f64;
        let st = t_serial as f64 / tpal.time as f64;
        if w.is_recursive() {
            cilk_rec.push(sc);
            tpal_rec.push(st);
        } else {
            cilk_iter.push(sc);
            tpal_iter.push(st);
        }
        println!(
            "{:<22} {:>12} {:>11.2}x {:>11.2}x",
            w.name(),
            t_serial,
            sc,
            st
        );
    }

    println!(
        "\ngeomean speedup (iterative): cilk {:.2}x   tpal {:.2}x",
        geomean(&cilk_iter),
        geomean(&tpal_iter)
    );
    println!(
        "geomean speedup (recursive): cilk {:.2}x   tpal {:.2}x",
        geomean(&cilk_rec),
        geomean(&tpal_rec)
    );
    println!("\npaper's shape: TPAL outperforms Cilk overall; Cilk's worst cases are\nthe irregular matrices and the parallelism-starved floyd-warshall size.");
}
