//! Figure 8: compilation-related overhead — TPAL binaries with heartbeat
//! interrupts turned off versus the plain serial program, single worker.
//!
//! The paper's point: serial-by-default code versioning leaves the
//! common path nearly untouched (≤6% except kmeans's auxiliary
//! structure and knapsack's promotion-mark bookkeeping). Our analogue
//! measures the heartbeat kernels with `HeartbeatSource::Disabled`:
//! what remains is the promotion-point instrumentation (the polling
//! check standing in for rollforward, §6's ~2% budget) and any
//! structural differences in the parallel-ready kernels.

use tpal_bench::{all_workloads, banner, geomean, ms, scale, time_native};
use tpal_rt::{HeartbeatSource, RtConfig, Runtime};

fn main() {
    banner(
        "Figure 8",
        "TPAL with interrupts off vs serial (instrumentation only), 1 worker",
    );
    let rt = Runtime::new(
        RtConfig::default()
            .workers(1)
            .source(HeartbeatSource::Disabled),
    );

    println!(
        "\n{:<22} {:>11} {:>12} {:>9}",
        "benchmark", "serial ms", "tpal-off ms", "ratio"
    );
    let mut ratios = Vec::new();
    for w in all_workloads() {
        let p = w.prepare(scale());
        let expected = p.expected();
        let t_serial = time_native(expected, || p.run_serial());
        rt.reset_stats();
        let t_off = time_native(expected, || rt.run(|ctx| p.run_heartbeat(ctx)));
        assert_eq!(
            rt.stats().tasks_created,
            0,
            "interrupts off must stay serial"
        );
        let r = t_off.as_secs_f64() / t_serial.as_secs_f64();
        ratios.push(r);
        println!(
            "{:<22} {:>11.2} {:>12.2} {:>8.2}x",
            w.name(),
            ms(t_serial),
            ms(t_off),
            r,
        );
    }
    println!(
        "\ngeomean instrumentation overhead: {:.2}x",
        geomean(&ratios)
    );
    println!(
        "paper's shape: ≈1.0x across the suite (worst cases kmeans 1.17x,\n\
         knapsack 1.51x from promotion-mark maintenance)."
    );
}
