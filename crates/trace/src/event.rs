//! The event vocabulary and the two recorders (single-threaded builder
//! for the simulator, shared multi-producer tracer for the runtime).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Identifier of a task within one trace. The initial task is 0; every
/// fork and every join resolution (merge or completion) allocates a
/// fresh id, so an id names one contiguous segment of the task DAG.
/// Executors without per-task identity (the native runtime's type-erased
/// jobs) record 0 throughout.
pub type TaskId = u64;

/// What an overhead span was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadKind {
    /// Task allocation and deque push (the per-task cost τ).
    Fork,
    /// Successful steal (task migration).
    Steal,
    /// Join resolution (stash or merge).
    Join,
    /// Heartbeat interrupt servicing on the receiving core.
    Interrupt,
}

impl OverheadKind {
    /// A short lower-case label (used as the Chrome event name).
    pub fn label(self) -> &'static str {
        match self {
            OverheadKind::Fork => "fork",
            OverheadKind::Steal => "steal",
            OverheadKind::Join => "join",
            OverheadKind::Interrupt => "interrupt",
        }
    }
}

/// One recorded event. Spans carry their duration in `dur`; instants
/// have `dur == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The core executed instructions of `task` for `dur` cycles.
    Work {
        /// The executing task.
        task: TaskId,
    },
    /// The core was charged `dur` cycles of scheduling overhead.
    Overhead {
        /// What the cycles were spent on.
        what: OverheadKind,
    },
    /// The core had nothing to run for `dur` cycles (failed steal
    /// attempts included).
    Idle,
    /// `parent` forked `child` (a task was created — Fig. 15a).
    TaskSpawn {
        /// The forking task.
        parent: TaskId,
        /// The new task.
        child: TaskId,
    },
    /// A pending heartbeat was serviced at a promotion-ready point and
    /// the promotion handler ran (simulator) or a latent entry was
    /// promoted (runtime).
    TaskPromote {
        /// The task that took the beat.
        task: TaskId,
    },
    /// A heartbeat reached this core (timer expiry or ping signal) —
    /// the Fig. 10 *delivered* quantity.
    HeartbeatDelivered,
    /// A heartbeat was observed at a promotion-ready point — the
    /// Fig. 10 *serviced* quantity.
    HeartbeatServiced,
    /// A successful steal landed on this core.
    Steal {
        /// The victim core index.
        victim: u32,
    },
    /// `task` arrived first at its join: it stashed its state on fork
    /// tree node `node` and died.
    JoinStash {
        /// The stashing task.
        task: TaskId,
        /// The fork-tree node holding the stash.
        node: u32,
    },
    /// `task` arrived second at fork-tree node `node`: the pair merged
    /// into `merged`.
    JoinMerge {
        /// The second-arriving task.
        task: TaskId,
        /// The fork-tree node.
        node: u32,
        /// The merged continuation task.
        merged: TaskId,
    },
    /// `task` joined at the record root: the record completed and
    /// `resumed` continues at the continuation label.
    JoinContinue {
        /// The joining task.
        task: TaskId,
        /// The continuation task.
        resumed: TaskId,
    },
    /// `task` executed `halt`.
    TaskEnd {
        /// The halting task.
        task: TaskId,
    },
}

/// One recorded event: a kind plus where and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global record-order sequence number (monotone across tracks; the
    /// causal order of the run).
    pub seq: u64,
    /// Start time, in the trace's time unit (simulator: cycles;
    /// runtime: timestamp ticks since runtime start).
    pub ts: u64,
    /// Duration for span kinds; 0 for instants.
    pub dur: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The events of one core or worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Track {
    /// Display name (`core 3`, `worker 1`).
    pub name: String,
    /// Events in record order. Note that record order is *not* sorted
    /// by `ts` — lazily settled idle chains are recorded retroactively —
    /// so renderers sort by `ts` per track and analyses sort by `seq`
    /// globally.
    pub events: Vec<TraceEvent>,
}

/// A complete recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The unit `ts`/`dur` are measured in (`"cycles"` or `"ticks"`).
    pub time_unit: &'static str,
    /// The heartbeat interval ♥ of the run, in the same unit (0 when
    /// heartbeats were disabled).
    pub heartbeat: u64,
    /// The scheduling-policy label of the run (`"heartbeat/uniform"`,
    /// `"eager/sequence"`, …) so reports attribute overhead per policy;
    /// empty when the recorder was not tagged.
    pub policy: String,
    /// One track per core/worker.
    pub tracks: Vec<Track>,
}

impl Trace {
    /// All events of all tracks in global causal (sequence) order.
    pub fn causal_order(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .tracks
            .iter()
            .flat_map(|t| t.events.iter().copied())
            .collect();
        all.sort_unstable_by_key(|e| e.seq);
        all
    }

    /// The end of the last event — the makespan the trace covers.
    pub fn makespan(&self) -> u64 {
        self.tracks
            .iter()
            .flat_map(|t| t.events.iter())
            .map(|e| e.ts + e.dur)
            .max()
            .unwrap_or(0)
    }

    /// Total number of recorded events.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Single-threaded trace recorder (the simulator's: one owner, per-core
/// buffers, sequence numbers handed out in program order).
#[derive(Debug)]
pub struct TraceBuilder {
    time_unit: &'static str,
    heartbeat: u64,
    policy: String,
    tracks: Vec<Vec<TraceEvent>>,
    next_seq: u64,
}

impl TraceBuilder {
    /// A builder with `tracks` empty tracks.
    pub fn new(tracks: usize, time_unit: &'static str, heartbeat: u64) -> TraceBuilder {
        TraceBuilder {
            time_unit,
            heartbeat,
            policy: String::new(),
            tracks: vec![Vec::new(); tracks],
            next_seq: 0,
        }
    }

    /// Tags the trace with the run's scheduling-policy label.
    pub fn policy(mut self, label: impl Into<String>) -> TraceBuilder {
        self.policy = label.into();
        self
    }

    /// Records one event on `track`.
    #[inline]
    pub fn record(&mut self, track: usize, ts: u64, dur: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tracks[track].push(TraceEvent { seq, ts, dur, kind });
    }

    /// Finishes the trace, naming tracks `core 0`, `core 1`, …
    pub fn finish(self) -> Trace {
        Trace {
            time_unit: self.time_unit,
            heartbeat: self.heartbeat,
            policy: self.policy,
            tracks: self
                .tracks
                .into_iter()
                .enumerate()
                .map(|(i, events)| Track {
                    name: format!("core {i}"),
                    events,
                })
                .collect(),
        }
    }
}

/// Events per allocated chunk of a [`SharedTracer`] track.
const CHUNK: usize = 256;

/// Slot lifecycle in a tracer chunk: claimed-but-unwritten, published,
/// drained by a collect.
const SLOT_PENDING: u32 = 0;
const SLOT_READY: u32 = 1;
const SLOT_COLLECTED: u32 = 2;

struct EventSlot {
    state: AtomicU32,
    ev: UnsafeCell<MaybeUninit<TraceEvent>>,
}

/// One chunk of a track's append-only event log. `claimed` hands out
/// slot indices by fetch-add (it may overshoot `CHUNK`; overshooting
/// claimants install or adopt the next chunk and retry there).
struct EventChunk {
    /// The previously filled chunk (older events); fixed before this
    /// chunk is published.
    prev: *mut EventChunk,
    claimed: AtomicUsize,
    slots: Box<[EventSlot]>,
}

impl EventChunk {
    fn alloc(prev: *mut EventChunk) -> *mut EventChunk {
        let slots = (0..CHUNK)
            .map(|_| EventSlot {
                state: AtomicU32::new(SLOT_PENDING),
                ev: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Box::into_raw(Box::new(EventChunk {
            prev,
            claimed: AtomicUsize::new(0),
            slots,
        }))
    }
}

/// A track's chunk-list head, padded so adjacent tracks' heads (and the
/// owner-worker fetch-adds behind them) never share a cache line.
#[repr(align(64))]
struct TrackRow {
    head: AtomicPtr<EventChunk>,
}

/// Multi-producer trace recorder (the native runtime's): per-worker
/// chunked append-only logs, **lock-free on every record**. Each track
/// is a linked list of fixed-size chunks; a record claims a slot with
/// one `fetch_add` on the newest chunk (uncontended in the steady state
/// — each worker appends to its own track; the ping thread appending
/// delivery instants to a worker's track is the rare multi-producer
/// case the same protocol already covers) and publishes it with one
/// release store. Chunks are retained until the tracer is dropped, so
/// collection never races reclamation; [`SharedTracer::collect`] merges
/// each track by the global sequence number.
pub struct SharedTracer {
    time_unit: &'static str,
    heartbeat: u64,
    policy: String,
    rows: Vec<TrackRow>,
    next_seq: AtomicU64,
}

// SAFETY: chunk slots are published with release stores after their
// `UnsafeCell` write and consumed behind an acquire CAS that each slot
// can win exactly once; chunks are only freed by `Drop` (`&mut self`).
unsafe impl Send for SharedTracer {}
unsafe impl Sync for SharedTracer {}

impl std::fmt::Debug for SharedTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTracer")
            .field("tracks", &self.rows.len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl SharedTracer {
    /// A tracer with `tracks` empty per-worker logs.
    pub fn new(tracks: usize, time_unit: &'static str, heartbeat: u64) -> SharedTracer {
        SharedTracer {
            time_unit,
            heartbeat,
            policy: String::new(),
            rows: (0..tracks)
                .map(|_| TrackRow {
                    head: AtomicPtr::new(EventChunk::alloc(std::ptr::null_mut())),
                })
                .collect(),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Tags collected traces with the run's scheduling-policy label.
    pub fn policy(mut self, label: impl Into<String>) -> SharedTracer {
        self.policy = label.into();
        self
    }

    /// Records one event on `track`. Lock-free; safe from any thread.
    #[inline]
    pub fn record(&self, track: usize, ts: u64, dur: u64, kind: EventKind) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let row = &self.rows[track];
        loop {
            let chunk_ptr = row.head.load(Ordering::Acquire);
            // SAFETY: chunks are never freed while the tracer is live.
            let chunk = unsafe { &*chunk_ptr };
            let i = chunk.claimed.fetch_add(1, Ordering::Relaxed);
            if i < CHUNK {
                let slot = &chunk.slots[i];
                // SAFETY: the fetch_add gave us index `i` exclusively.
                unsafe { (*slot.ev.get()).write(TraceEvent { seq, ts, dur, kind }) };
                slot.state.store(SLOT_READY, Ordering::Release);
                return;
            }
            // Chunk exhausted: install a fresh one (or adopt a racer's)
            // and retry. This is the once-per-CHUNK growth path.
            let fresh = EventChunk::alloc(chunk_ptr);
            if row
                .head
                .compare_exchange(chunk_ptr, fresh, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // SAFETY: `fresh` never escaped; we still own it.
                drop(unsafe { Box::from_raw(fresh) });
            }
        }
    }

    /// Drains every published event into a [`Trace`], naming tracks
    /// `worker 0`, `worker 1`, … and sorting each track by the global
    /// sequence number (concurrent producers may publish out of claim
    /// order). Events recorded after collection begins may land in
    /// either this trace or the next; drained slots are never reused.
    pub fn collect(&self) -> Trace {
        Trace {
            time_unit: self.time_unit,
            heartbeat: self.heartbeat,
            policy: self.policy.clone(),
            tracks: self
                .rows
                .iter()
                .enumerate()
                .map(|(i, row)| {
                    // Walk newest→oldest, then drain oldest-first so the
                    // common case needs no post-sort reshuffling.
                    let mut chain = Vec::new();
                    let mut p = row.head.load(Ordering::Acquire);
                    while !p.is_null() {
                        chain.push(p);
                        // SAFETY: live until Drop; prev fixed pre-publish.
                        p = unsafe { (*p).prev };
                    }
                    let mut events = Vec::new();
                    for &chunk_ptr in chain.iter().rev() {
                        // SAFETY: as above.
                        let chunk = unsafe { &*chunk_ptr };
                        let n = chunk.claimed.load(Ordering::Acquire).min(CHUNK);
                        for slot in &chunk.slots[..n] {
                            if slot
                                .state
                                .compare_exchange(
                                    SLOT_READY,
                                    SLOT_COLLECTED,
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                // SAFETY: READY (acquire) published the
                                // write; the CAS wins at most once.
                                events.push(unsafe { (*slot.ev.get()).assume_init() });
                            }
                        }
                    }
                    events.sort_unstable_by_key(|e| e.seq);
                    Track {
                        name: format!("worker {i}"),
                        events,
                    }
                })
                .collect(),
        }
    }
}

impl Drop for SharedTracer {
    fn drop(&mut self) {
        for row in &self.rows {
            let mut p = row.head.load(Ordering::Relaxed);
            while !p.is_null() {
                // SAFETY: `&mut self` means no concurrent record/collect;
                // the chain is ours to free (TraceEvent is Copy).
                let prev = unsafe { (*p).prev };
                drop(unsafe { Box::from_raw(p) });
                p = prev;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_global_seq() {
        let mut b = TraceBuilder::new(2, "cycles", 100);
        b.record(1, 5, 0, EventKind::HeartbeatDelivered);
        b.record(0, 5, 3, EventKind::Idle);
        b.record(1, 6, 0, EventKind::TaskEnd { task: 0 });
        let t = b.finish();
        assert_eq!(t.len(), 3);
        let order = t.causal_order();
        assert_eq!(order[0].kind, EventKind::HeartbeatDelivered);
        assert_eq!(order[1].kind, EventKind::Idle);
        assert_eq!(t.makespan(), 8);
        assert_eq!(t.tracks[0].name, "core 0");
    }

    #[test]
    fn shared_tracer_collects_and_drains() {
        let tr = SharedTracer::new(2, "ticks", 0);
        tr.record(0, 1, 0, EventKind::HeartbeatServiced);
        tr.record(1, 2, 4, EventKind::Work { task: 0 });
        let t = tr.collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.tracks[1].name, "worker 1");
        assert!(tr.collect().is_empty(), "collect drains");
    }

    #[test]
    fn shared_tracer_crosses_chunk_boundaries() {
        let tr = SharedTracer::new(1, "ticks", 0);
        let n = 3 * CHUNK + 17;
        for i in 0..n as u64 {
            tr.record(0, i, 0, EventKind::HeartbeatDelivered);
        }
        let t = tr.collect();
        assert_eq!(t.len(), n);
        // In-order single-producer: seq and ts both monotone.
        for (i, e) in t.tracks[0].events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.ts, i as u64);
        }
        assert!(tr.collect().is_empty(), "collect drains");
    }

    #[test]
    fn shared_tracer_concurrent_producers_lose_nothing() {
        // Several threads hammer the same two tracks (the worker + ping
        // thread shape, amplified): every recorded event must come back
        // exactly once, sorted by seq within its track.
        let tr = std::sync::Arc::new(SharedTracer::new(2, "ticks", 0));
        let threads = 4;
        let per_thread = 2_000;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let tr = std::sync::Arc::clone(&tr);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        tr.record(t % 2, i as u64, 0, EventKind::Steal { victim: t as u32 });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let t = tr.collect();
        assert_eq!(t.len(), threads * per_thread);
        let mut seqs: Vec<u64> = t
            .tracks
            .iter()
            .flat_map(|tr| tr.events.iter().map(|e| e.seq))
            .collect();
        seqs.sort_unstable();
        let expect: Vec<u64> = (0..(threads * per_thread) as u64).collect();
        assert_eq!(seqs, expect, "every seq exactly once");
        for track in &t.tracks {
            assert!(track.events.windows(2).all(|w| w[0].seq < w[1].seq));
        }
    }

    #[test]
    fn policy_tag_flows_into_traces() {
        let t = TraceBuilder::new(1, "cycles", 8)
            .policy("eager/sequence")
            .finish();
        assert_eq!(t.policy, "eager/sequence");
        let tr = SharedTracer::new(1, "ticks", 8).policy("never/uniform");
        assert_eq!(tr.collect().policy, "never/uniform");
        assert_eq!(tr.collect().policy, "never/uniform", "tag survives drains");
        assert_eq!(TraceBuilder::new(1, "cycles", 0).finish().policy, "");
    }

    #[test]
    fn empty_trace_reports_zero_makespan() {
        let t = TraceBuilder::new(1, "cycles", 0).finish();
        assert!(t.is_empty());
        assert_eq!(t.makespan(), 0);
    }
}
