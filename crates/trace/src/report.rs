//! Paper-figure metrics computed from a recorded trace.
//!
//! [`MetricsReport`] folds one pass over a [`Trace`] into the quantities
//! the paper's evaluation plots: scheduling-overhead fraction (the
//! Fig. 8 polling-overhead axis), delivered-versus-serviced heartbeat
//! rates (Fig. 10), task counts (Fig. 15a), and per-core plus total
//! utilization. Everything derives from the same event stream the
//! Chrome backend renders, so numbers and timeline pictures can't drift
//! apart.

use std::fmt::Write as _;

use crate::event::{EventKind, OverheadKind, Trace};

/// Per-core activity totals, in trace time units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreActivity {
    /// Cycles spent executing task instructions.
    pub work: u64,
    /// Cycles charged to scheduling (fork/steal/join/interrupt).
    pub overhead: u64,
    /// Cycles with nothing to run.
    pub idle: u64,
}

impl CoreActivity {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.work + self.overhead + self.idle
    }

    /// Fraction of accounted cycles doing useful work (0 when empty).
    pub fn utilization(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.work as f64 / total as f64
        }
    }
}

/// A summary of one recorded run in paper-figure terms.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Trace time unit (`"cycles"` / `"ticks"`).
    pub time_unit: &'static str,
    /// Heartbeat interval ♥ of the run (0 if disabled).
    pub heartbeat: u64,
    /// Scheduling-policy label of the run (empty if untagged), so
    /// side-by-side reports attribute overhead per policy.
    pub policy: String,
    /// End of the last recorded event.
    pub makespan: u64,
    /// Activity totals per core, indexed like `trace.tracks`.
    pub per_core: Vec<CoreActivity>,
    /// Successful steals landed per core (thief side), indexed like
    /// `trace.tracks`. Sums to [`MetricsReport::steals`] — on the native
    /// runtime this mirrors the per-worker counter shards, keeping the
    /// sharded counters observable end-to-end.
    pub per_core_steals: Vec<u64>,
    /// Promotions performed per core, indexed like `trace.tracks`.
    /// Sums to [`MetricsReport::promotions`].
    pub per_core_promotions: Vec<u64>,
    /// Overhead cycles broken down by [`OverheadKind`], indexed
    /// Fork/Steal/Join/Interrupt.
    pub overhead_by_kind: [u64; 4],
    /// Tasks created (spawn events) — Fig. 15a.
    pub tasks_created: u64,
    /// Promotions performed at serviced heartbeats.
    pub promotions: u64,
    /// Heartbeats delivered to cores — Fig. 10 numerator's denominator.
    pub heartbeats_delivered: u64,
    /// Heartbeats observed at promotion-ready points — Fig. 10.
    pub heartbeats_serviced: u64,
    /// Successful steals.
    pub steals: u64,
    /// Join stashes (first arrivals).
    pub join_stashes: u64,
    /// Join merges (second arrivals).
    pub join_merges: u64,
    /// Joins that carried straight on (no outstanding partner).
    pub join_continues: u64,
}

impl MetricsReport {
    /// Computes the report in one pass over `trace`.
    pub fn from_trace(trace: &Trace) -> MetricsReport {
        let mut r = MetricsReport {
            time_unit: trace.time_unit,
            heartbeat: trace.heartbeat,
            policy: trace.policy.clone(),
            makespan: trace.makespan(),
            per_core: vec![CoreActivity::default(); trace.tracks.len()],
            per_core_steals: vec![0; trace.tracks.len()],
            per_core_promotions: vec![0; trace.tracks.len()],
            overhead_by_kind: [0; 4],
            tasks_created: 0,
            promotions: 0,
            heartbeats_delivered: 0,
            heartbeats_serviced: 0,
            steals: 0,
            join_stashes: 0,
            join_merges: 0,
            join_continues: 0,
        };
        for (core, track) in trace.tracks.iter().enumerate() {
            for e in &track.events {
                match e.kind {
                    EventKind::Work { .. } => r.per_core[core].work += e.dur,
                    EventKind::Overhead { what } => {
                        r.per_core[core].overhead += e.dur;
                        r.overhead_by_kind[what as usize] += e.dur;
                    }
                    EventKind::Idle => r.per_core[core].idle += e.dur,
                    EventKind::TaskSpawn { .. } => r.tasks_created += 1,
                    EventKind::TaskPromote { .. } => {
                        r.promotions += 1;
                        r.per_core_promotions[core] += 1;
                    }
                    EventKind::HeartbeatDelivered => r.heartbeats_delivered += 1,
                    EventKind::HeartbeatServiced => r.heartbeats_serviced += 1,
                    EventKind::Steal { .. } => {
                        r.steals += 1;
                        r.per_core_steals[core] += 1;
                    }
                    EventKind::JoinStash { .. } => r.join_stashes += 1,
                    EventKind::JoinMerge { .. } => r.join_merges += 1,
                    EventKind::JoinContinue { .. } => r.join_continues += 1,
                    EventKind::TaskEnd { .. } => {}
                }
            }
        }
        r
    }

    /// Summed activity across all cores.
    pub fn totals(&self) -> CoreActivity {
        let mut t = CoreActivity::default();
        for c in &self.per_core {
            t.work += c.work;
            t.overhead += c.overhead;
            t.idle += c.idle;
        }
        t
    }

    /// Machine utilization: work cycles over all accounted cycles.
    pub fn utilization(&self) -> f64 {
        self.totals().utilization()
    }

    /// Scheduling overhead as a fraction of work + overhead cycles —
    /// the Fig. 8 overhead axis (idle excluded: it measures load
    /// imbalance, not scheduling cost).
    pub fn overhead_fraction(&self) -> f64 {
        let t = self.totals();
        let busy = t.work + t.overhead;
        if busy == 0 {
            0.0
        } else {
            t.overhead as f64 / busy as f64
        }
    }

    /// Heartbeats delivered per core per ♥ interval of makespan — 1.0
    /// means the nominal delivery rate was achieved (Fig. 10's
    /// delivered axis, normalized).
    pub fn delivered_rate_achieved(&self) -> f64 {
        if self.heartbeat == 0 || self.makespan == 0 || self.per_core.is_empty() {
            return 0.0;
        }
        let expected = (self.makespan as f64 / self.heartbeat as f64) * self.per_core.len() as f64;
        self.heartbeats_delivered as f64 / expected
    }

    /// Serviced heartbeats as a fraction of delivered ones (Fig. 10's
    /// serviced axis; 1.0 when nothing was delivered).
    pub fn service_ratio(&self) -> f64 {
        if self.heartbeats_delivered == 0 {
            1.0
        } else {
            self.heartbeats_serviced as f64 / self.heartbeats_delivered as f64
        }
    }

    /// A plain-text rendering (the `--profile` / bench-report output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let t = self.totals();
        let policy = if self.policy.is_empty() {
            String::new()
        } else {
            format!(", policy {}", self.policy)
        };
        let _ = writeln!(
            s,
            "trace metrics ({} cores, makespan {} {}, heartbeat {}{policy})",
            self.per_core.len(),
            self.makespan,
            self.time_unit,
            self.heartbeat
        );
        let _ = writeln!(
            s,
            "  activity: work {} / overhead {} / idle {}  (utilization {:.1}%, overhead {:.2}%)",
            t.work,
            t.overhead,
            t.idle,
            100.0 * self.utilization(),
            100.0 * self.overhead_fraction()
        );
        let _ = writeln!(
            s,
            "  overhead by kind: fork {} / steal {} / join {} / interrupt {}",
            self.overhead_by_kind[OverheadKind::Fork as usize],
            self.overhead_by_kind[OverheadKind::Steal as usize],
            self.overhead_by_kind[OverheadKind::Join as usize],
            self.overhead_by_kind[OverheadKind::Interrupt as usize],
        );
        let _ = writeln!(
            s,
            "  heartbeats: delivered {} ({:.2}x nominal), serviced {} (ratio {:.2})",
            self.heartbeats_delivered,
            self.delivered_rate_achieved(),
            self.heartbeats_serviced,
            self.service_ratio()
        );
        let _ = writeln!(
            s,
            "  tasks: created {} / promotions {} / steals {} / join stash {} merge {} continue {}",
            self.tasks_created,
            self.promotions,
            self.steals,
            self.join_stashes,
            self.join_merges,
            self.join_continues
        );
        for (i, c) in self.per_core.iter().enumerate() {
            let _ = writeln!(
                s,
                "  core {i}: work {} / overhead {} / idle {}  ({:.1}%)  steals {} promotions {}",
                c.work,
                c.overhead,
                c.idle,
                100.0 * c.utilization(),
                self.per_core_steals[i],
                self.per_core_promotions[i]
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuilder;

    fn sample() -> Trace {
        let mut b = TraceBuilder::new(2, "cycles", 10);
        b.record(0, 0, 30, EventKind::Work { task: 0 });
        b.record(0, 30, 0, EventKind::HeartbeatDelivered);
        b.record(0, 30, 0, EventKind::HeartbeatServiced);
        b.record(0, 30, 0, EventKind::TaskPromote { task: 0 });
        b.record(
            0,
            30,
            0,
            EventKind::TaskSpawn {
                parent: 0,
                child: 1,
            },
        );
        b.record(
            0,
            30,
            4,
            EventKind::Overhead {
                what: OverheadKind::Fork,
            },
        );
        b.record(1, 0, 34, EventKind::Idle);
        b.record(1, 34, 0, EventKind::Steal { victim: 0 });
        b.record(
            1,
            34,
            2,
            EventKind::Overhead {
                what: OverheadKind::Steal,
            },
        );
        b.record(1, 36, 4, EventKind::Work { task: 1 });
        b.record(0, 34, 6, EventKind::Work { task: 0 });
        b.record(0, 40, 0, EventKind::HeartbeatDelivered);
        b.record(0, 40, 0, EventKind::TaskEnd { task: 0 });
        b.finish()
    }

    #[test]
    fn counts_and_activity_fold_correctly() {
        let r = MetricsReport::from_trace(&sample());
        assert_eq!(r.makespan, 40);
        assert_eq!(
            r.per_core[0],
            CoreActivity {
                work: 36,
                overhead: 4,
                idle: 0
            }
        );
        assert_eq!(
            r.per_core[1],
            CoreActivity {
                work: 4,
                overhead: 2,
                idle: 34
            }
        );
        assert_eq!(r.overhead_by_kind, [4, 2, 0, 0]);
        assert_eq!(r.tasks_created, 1);
        assert_eq!(r.promotions, 1);
        assert_eq!(r.heartbeats_delivered, 2);
        assert_eq!(r.heartbeats_serviced, 1);
        assert_eq!(r.steals, 1);
        assert_eq!(r.per_core_steals, vec![0, 1]);
        assert_eq!(r.per_core_promotions, vec![1, 0]);
        assert_eq!(r.per_core_steals.iter().sum::<u64>(), r.steals);
        assert_eq!(r.per_core_promotions.iter().sum::<u64>(), r.promotions);
        assert_eq!(r.totals().total(), 80);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!((r.overhead_fraction() - 6.0 / 46.0).abs() < 1e-12);
        assert!((r.service_ratio() - 0.5).abs() < 1e-12);
        // 2 delivered vs expected 40/10 * 2 cores = 8 -> 0.25.
        assert!((r.delivered_rate_achieved() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_yields_neutral_ratios() {
        let r = MetricsReport::from_trace(&TraceBuilder::new(1, "cycles", 0).finish());
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.overhead_fraction(), 0.0);
        assert_eq!(r.service_ratio(), 1.0);
        assert_eq!(r.delivered_rate_achieved(), 0.0);
    }

    #[test]
    fn render_mentions_key_quantities() {
        let text = MetricsReport::from_trace(&sample()).render();
        assert!(text.contains("utilization 50.0%"));
        assert!(text.contains("serviced 1"));
        assert!(text.contains("core 1:"));
        assert!(!text.contains("policy"), "untagged traces omit the field");
    }

    #[test]
    fn render_attributes_policy_when_tagged() {
        let trace = TraceBuilder::new(1, "cycles", 10)
            .policy("eager/locality")
            .finish();
        let r = MetricsReport::from_trace(&trace);
        assert_eq!(r.policy, "eager/locality");
        assert!(r.render().contains("policy eager/locality"));
    }
}
