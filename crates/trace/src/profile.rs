//! TASKPROF-style work/span profiler.
//!
//! Folds the recorded task DAG (spawn / work / join events, in global
//! causal order) into the classic performance-model quantities: total
//! **work** T₁ (all executed cycles), critical-path **span** T∞, and
//! **available parallelism** T₁/T∞ — the on-the-fly DAG fold of Yoga &
//! Nagarakatte's TASKPROF, applied to a recorded trace instead of live
//! execution.
//!
//! The fold keeps one running span value per live task id:
//!
//! * `Work { task }` adds its duration to the task's span (and to total
//!   work);
//! * `TaskSpawn` starts the child at the parent's current span (fork
//!   costs both branches the prefix);
//! * `JoinStash` parks the first arrival's span on the fork-tree node;
//! * `JoinMerge` resumes the merged task at the *maximum* of both
//!   arrivals — the critical path through a join is the slower branch;
//! * `JoinContinue` carries the span across a record-root join;
//! * `TaskEnd` closes the fold: the halting task's span is the
//!   program's.
//!
//! This mirrors exactly the relative work/span threading the simulator
//! machine does internally (fork prefix capture, join max-merge with
//! τ = 0), so for simulator traces the profile can be cross-checked
//! against the machine's own totals — a differential test this repo
//! runs in `tpal-sim`.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::{EventKind, TaskId, Trace};

/// Work/span totals folded from one trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkSpanProfile {
    /// Total executed cycles across all tasks (T₁).
    pub work: u64,
    /// Critical-path length in cycles (T∞).
    pub span: u64,
    /// Tasks observed (spawns + the initial task).
    pub tasks: u64,
    /// Whether a `TaskEnd` was seen (an unfinished trace reports the
    /// running maximum span instead of the halting task's).
    pub complete: bool,
}

impl WorkSpanProfile {
    /// Available parallelism T₁/T∞ (0 when the span is 0).
    pub fn parallelism(&self) -> f64 {
        if self.span == 0 {
            0.0
        } else {
            self.work as f64 / self.span as f64
        }
    }

    /// Folds the task events of `trace` in causal order.
    pub fn from_trace(trace: &Trace) -> WorkSpanProfile {
        // Running span per live task; task 0 (the initial task) starts
        // implicitly at 0 via the entry API.
        let mut span: HashMap<TaskId, u64> = HashMap::new();
        // First-arrival spans parked on fork-tree nodes.
        let mut stash: HashMap<u32, u64> = HashMap::new();
        let mut p = WorkSpanProfile {
            work: 0,
            span: 0,
            tasks: 1,
            complete: false,
        };
        let mut max_span = 0u64;
        for e in trace.causal_order() {
            match e.kind {
                EventKind::Work { task } => {
                    p.work += e.dur;
                    let s = span.entry(task).or_insert(0);
                    *s += e.dur;
                    max_span = max_span.max(*s);
                }
                EventKind::TaskSpawn { parent, child } => {
                    p.tasks += 1;
                    let s = span.get(&parent).copied().unwrap_or(0);
                    span.insert(child, s);
                }
                EventKind::JoinStash { task, node } => {
                    let s = span.remove(&task).unwrap_or(0);
                    stash.insert(node, s);
                }
                EventKind::JoinMerge { task, node, merged } => {
                    let a = span.remove(&task).unwrap_or(0);
                    let b = stash.remove(&node).unwrap_or(0);
                    let s = a.max(b);
                    span.insert(merged, s);
                    max_span = max_span.max(s);
                }
                EventKind::JoinContinue { task, resumed } => {
                    let s = span.remove(&task).unwrap_or(0);
                    span.insert(resumed, s);
                }
                EventKind::TaskEnd { task } => {
                    p.span = span.remove(&task).unwrap_or(0);
                    p.complete = true;
                }
                EventKind::Overhead { .. }
                | EventKind::Idle
                | EventKind::TaskPromote { .. }
                | EventKind::HeartbeatDelivered
                | EventKind::HeartbeatServiced
                | EventKind::Steal { .. } => {}
            }
        }
        if !p.complete {
            p.span = max_span;
        }
        p
    }

    /// A plain-text rendering (the `--profile` output).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "work/span profile: work {} span {} parallelism {:.2} tasks {}{}",
            self.work,
            self.span,
            self.parallelism(),
            self.tasks,
            if self.complete {
                ""
            } else {
                " (incomplete trace)"
            }
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceBuilder;

    /// A two-way fork/join: task 0 works 10, forks 1, both work (child
    /// 7 on core 1, parent 5 on core 0), child stashes, parent merges
    /// into task 2, which works 3 and halts.
    fn forked() -> Trace {
        let mut b = TraceBuilder::new(2, "cycles", 0);
        b.record(0, 0, 10, EventKind::Work { task: 0 });
        b.record(
            0,
            10,
            0,
            EventKind::TaskSpawn {
                parent: 0,
                child: 1,
            },
        );
        b.record(1, 10, 0, EventKind::Steal { victim: 0 });
        b.record(1, 10, 7, EventKind::Work { task: 1 });
        b.record(0, 10, 5, EventKind::Work { task: 0 });
        b.record(0, 15, 0, EventKind::JoinStash { task: 0, node: 0 });
        b.record(
            1,
            17,
            0,
            EventKind::JoinMerge {
                task: 1,
                node: 0,
                merged: 2,
            },
        );
        b.record(1, 17, 3, EventKind::Work { task: 2 });
        b.record(1, 20, 0, EventKind::TaskEnd { task: 2 });
        b.finish()
    }

    #[test]
    fn fork_join_takes_max_branch() {
        let p = WorkSpanProfile::from_trace(&forked());
        assert_eq!(p.work, 25);
        // 10 prefix + max(5, 7) + 3 tail.
        assert_eq!(p.span, 20);
        assert_eq!(p.tasks, 2);
        assert!(p.complete);
        assert!((p.parallelism() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn serial_trace_has_parallelism_one() {
        let mut b = TraceBuilder::new(1, "cycles", 0);
        b.record(0, 0, 42, EventKind::Work { task: 0 });
        b.record(0, 42, 0, EventKind::TaskEnd { task: 0 });
        let p = WorkSpanProfile::from_trace(&b.finish());
        assert_eq!(p.work, 42);
        assert_eq!(p.span, 42);
        assert_eq!(p.tasks, 1);
        assert!((p.parallelism() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn join_continue_carries_span() {
        let mut b = TraceBuilder::new(1, "cycles", 0);
        b.record(0, 0, 4, EventKind::Work { task: 0 });
        b.record(
            0,
            4,
            0,
            EventKind::JoinContinue {
                task: 0,
                resumed: 1,
            },
        );
        b.record(0, 4, 6, EventKind::Work { task: 1 });
        b.record(0, 10, 0, EventKind::TaskEnd { task: 1 });
        let p = WorkSpanProfile::from_trace(&b.finish());
        assert_eq!(p.span, 10);
        assert!(p.complete);
    }

    #[test]
    fn incomplete_trace_reports_running_span() {
        let mut b = TraceBuilder::new(1, "cycles", 0);
        b.record(0, 0, 9, EventKind::Work { task: 0 });
        let p = WorkSpanProfile::from_trace(&b.finish());
        assert_eq!(p.span, 9);
        assert!(!p.complete);
    }
}
