//! Always-on atomic scheduler counters.
//!
//! These migrated here from `tpal-rt`'s private `stats` module: the
//! cheap cumulative counters a runtime keeps even when event recording
//! is off, snapshot as [`SchedStats`]. The event layer ([`crate::event`])
//! supersedes them for anything time-resolved; the counters remain the
//! zero-configuration path the benches read between trials.
//!
//! Two layouts share the [`SchedStats`] snapshot type: the flat
//! [`SchedCounters`] (one cache line all producers hammer — fine for a
//! single-owner recorder) and the [`ShardedCounters`] the native runtime
//! uses, which gives every worker its own cache-line-aligned
//! [`CounterShard`] so steady-state increments never bounce a shared
//! line between cores; aggregation happens only at snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, read back as [`SchedStats`].
///
/// Heartbeat *delivery* is intentionally not here: delivery is counted
/// per worker (each delivery targets one worker's heartbeat cell), so
/// the owner passes the summed value to [`SchedCounters::snapshot`] —
/// and must reset those per-worker cells alongside [`SchedCounters::reset`],
/// or post-reset Fig.-10 serviced/delivered ratios are computed against
/// a stale cumulative denominator.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Heartbeat events that performed a promotion.
    pub promotions: AtomicU64,
    /// Tasks actually created (promoted latent calls and loop splits).
    pub tasks_created: AtomicU64,
    /// Successful steals between workers.
    pub steals: AtomicU64,
    /// Heartbeat flags observed (serviced) at promotion points.
    pub heartbeats_serviced: AtomicU64,
}

impl SchedCounters {
    /// A coherent-enough snapshot (individual relaxed loads; exact once
    /// the workers are quiescent). `delivered` is the per-worker
    /// delivery total supplied by the owner.
    pub fn snapshot(&self, delivered: u64) -> SchedStats {
        SchedStats {
            promotions: self.promotions.load(Ordering::Relaxed),
            tasks_created: self.tasks_created.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            heartbeats_serviced: self.heartbeats_serviced.load(Ordering::Relaxed),
            heartbeats_delivered: delivered,
        }
    }

    /// Zeroes every counter (between benchmark trials). The owner must
    /// also reset its per-worker delivery counters — see the type-level
    /// note.
    pub fn reset(&self) {
        self.promotions.store(0, Ordering::Relaxed);
        self.tasks_created.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.heartbeats_serviced.store(0, Ordering::Relaxed);
    }
}

/// One worker's private scheduler counters, padded and aligned to a
/// cache line so adjacent shards never false-share. Increments are
/// single-writer in the steady state (each worker touches only its own
/// shard), making them plain relaxed read-modify-writes on an exclusive
/// line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CounterShard {
    /// Heartbeat events that performed a promotion.
    pub promotions: AtomicU64,
    /// Tasks actually created (promoted latent calls and loop splits).
    pub tasks_created: AtomicU64,
    /// Successful steals landed by this worker (thief-side count).
    pub steals: AtomicU64,
    /// Heartbeat flags observed (serviced) at promotion points.
    pub heartbeats_serviced: AtomicU64,
}

impl CounterShard {
    fn snapshot(&self, delivered: u64) -> SchedStats {
        SchedStats {
            promotions: self.promotions.load(Ordering::Relaxed),
            tasks_created: self.tasks_created.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            heartbeats_serviced: self.heartbeats_serviced.load(Ordering::Relaxed),
            heartbeats_delivered: delivered,
        }
    }

    fn reset(&self) {
        self.promotions.store(0, Ordering::Relaxed);
        self.tasks_created.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.heartbeats_serviced.store(0, Ordering::Relaxed);
    }
}

/// Per-worker sharded scheduler counters: writes go to the caller's own
/// [`CounterShard`]; reads aggregate across shards. The delivery count
/// stays per-worker on the heartbeat cells, exactly as for
/// [`SchedCounters`] (see that type's note).
#[derive(Debug)]
pub struct ShardedCounters {
    shards: Box<[CounterShard]>,
}

impl ShardedCounters {
    /// Counters with one shard per worker (at least one).
    pub fn new(workers: usize) -> ShardedCounters {
        ShardedCounters {
            shards: (0..workers.max(1))
                .map(|_| CounterShard::default())
                .collect(),
        }
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Worker `id`'s private shard — the only shard that worker should
    /// ever increment.
    #[inline]
    pub fn shard(&self, id: usize) -> &CounterShard {
        &self.shards[id]
    }

    /// The aggregate snapshot: sums every shard. `delivered` is the
    /// per-worker delivery total supplied by the owner (see
    /// [`SchedCounters::snapshot`]).
    pub fn snapshot(&self, delivered: u64) -> SchedStats {
        let mut total = SchedStats {
            heartbeats_delivered: delivered,
            ..SchedStats::default()
        };
        for s in self.shards.iter() {
            total.promotions += s.promotions.load(Ordering::Relaxed);
            total.tasks_created += s.tasks_created.load(Ordering::Relaxed);
            total.steals += s.steals.load(Ordering::Relaxed);
            total.heartbeats_serviced += s.heartbeats_serviced.load(Ordering::Relaxed);
        }
        total
    }

    /// Per-shard snapshots, indexed by worker. `delivered[i]` supplies
    /// worker `i`'s delivery count (missing entries read as 0).
    pub fn per_worker(&self, delivered: &[u64]) -> Vec<SchedStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.snapshot(delivered.get(i).copied().unwrap_or(0)))
            .collect()
    }

    /// Zeroes every shard (between benchmark trials). As with
    /// [`SchedCounters::reset`], the owner must also reset its
    /// per-worker delivery counters.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.reset();
        }
    }
}

/// A snapshot of a runtime's scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Heartbeat events that performed a promotion.
    pub promotions: u64,
    /// Tasks actually created (promoted latent calls and loop splits) —
    /// the paper's Figure 15a quantity.
    pub tasks_created: u64,
    /// Successful steals between workers.
    pub steals: u64,
    /// Heartbeat flags observed (serviced) at promotion points.
    pub heartbeats_serviced: u64,
    /// Heartbeats delivered by the source (ping signals sent or local
    /// timer expirations) — with `heartbeats_serviced`, the Figure 10
    /// quantities.
    pub heartbeats_delivered: u64,
}

impl SchedStats {
    /// Serviced heartbeats as a fraction of delivered ones (Fig. 10's
    /// service ratio; 1.0 when nothing was delivered).
    pub fn service_ratio(&self) -> f64 {
        if self.heartbeats_delivered == 0 {
            1.0
        } else {
            self.heartbeats_serviced as f64 / self.heartbeats_delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset_round_trip() {
        let c = SchedCounters::default();
        c.promotions.store(3, Ordering::Relaxed);
        c.steals.store(7, Ordering::Relaxed);
        let s = c.snapshot(9);
        assert_eq!(s.promotions, 3);
        assert_eq!(s.steals, 7);
        assert_eq!(s.heartbeats_delivered, 9);
        c.reset();
        assert_eq!(c.snapshot(0), SchedStats::default());
    }

    #[test]
    fn sharded_totals_equal_flat_counters() {
        // The sharded layout must aggregate to exactly what a flat
        // counter set would have recorded for the same increments.
        let flat = SchedCounters::default();
        let sharded = ShardedCounters::new(3);
        for (i, n) in [(0usize, 5u64), (1, 7), (2, 11)] {
            flat.promotions.fetch_add(n, Ordering::Relaxed);
            flat.steals.fetch_add(n * 2, Ordering::Relaxed);
            sharded.shard(i).promotions.fetch_add(n, Ordering::Relaxed);
            sharded.shard(i).steals.fetch_add(n * 2, Ordering::Relaxed);
        }
        assert_eq!(sharded.snapshot(4), flat.snapshot(4));
        let per = sharded.per_worker(&[1, 2, 1]);
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().map(|s| s.promotions).sum::<u64>(), 23);
        assert_eq!(per.iter().map(|s| s.steals).sum::<u64>(), 46);
        assert_eq!(per.iter().map(|s| s.heartbeats_delivered).sum::<u64>(), 4);
        sharded.reset();
        assert_eq!(sharded.snapshot(0), SchedStats::default());
    }

    #[test]
    fn shards_are_cache_line_aligned() {
        assert_eq!(std::mem::align_of::<CounterShard>(), 64);
        assert!(std::mem::size_of::<CounterShard>() >= 64);
        let c = ShardedCounters::new(2);
        let a = c.shard(0) as *const _ as usize;
        let b = c.shard(1) as *const _ as usize;
        assert!(b.abs_diff(a) >= 64, "adjacent shards share a line");
    }

    #[test]
    fn service_ratio_handles_zero_delivery() {
        let s = SchedStats::default();
        assert_eq!(s.service_ratio(), 1.0);
        let s = SchedStats {
            heartbeats_serviced: 3,
            heartbeats_delivered: 4,
            ..SchedStats::default()
        };
        assert!((s.service_ratio() - 0.75).abs() < 1e-12);
    }
}
