//! Always-on atomic scheduler counters.
//!
//! These migrated here from `tpal-rt`'s private `stats` module: the
//! cheap cumulative counters a runtime keeps even when event recording
//! is off, snapshot as [`SchedStats`]. The event layer ([`crate::event`])
//! supersedes them for anything time-resolved; the counters remain the
//! zero-configuration path the benches read between trials.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters, read back as [`SchedStats`].
///
/// Heartbeat *delivery* is intentionally not here: delivery is counted
/// per worker (each delivery targets one worker's heartbeat cell), so
/// the owner passes the summed value to [`SchedCounters::snapshot`] —
/// and must reset those per-worker cells alongside [`SchedCounters::reset`],
/// or post-reset Fig.-10 serviced/delivered ratios are computed against
/// a stale cumulative denominator.
#[derive(Debug, Default)]
pub struct SchedCounters {
    /// Heartbeat events that performed a promotion.
    pub promotions: AtomicU64,
    /// Tasks actually created (promoted latent calls and loop splits).
    pub tasks_created: AtomicU64,
    /// Successful steals between workers.
    pub steals: AtomicU64,
    /// Heartbeat flags observed (serviced) at promotion points.
    pub heartbeats_serviced: AtomicU64,
}

impl SchedCounters {
    /// A coherent-enough snapshot (individual relaxed loads; exact once
    /// the workers are quiescent). `delivered` is the per-worker
    /// delivery total supplied by the owner.
    pub fn snapshot(&self, delivered: u64) -> SchedStats {
        SchedStats {
            promotions: self.promotions.load(Ordering::Relaxed),
            tasks_created: self.tasks_created.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            heartbeats_serviced: self.heartbeats_serviced.load(Ordering::Relaxed),
            heartbeats_delivered: delivered,
        }
    }

    /// Zeroes every counter (between benchmark trials). The owner must
    /// also reset its per-worker delivery counters — see the type-level
    /// note.
    pub fn reset(&self) {
        self.promotions.store(0, Ordering::Relaxed);
        self.tasks_created.store(0, Ordering::Relaxed);
        self.steals.store(0, Ordering::Relaxed);
        self.heartbeats_serviced.store(0, Ordering::Relaxed);
    }
}

/// A snapshot of a runtime's scheduler counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Heartbeat events that performed a promotion.
    pub promotions: u64,
    /// Tasks actually created (promoted latent calls and loop splits) —
    /// the paper's Figure 15a quantity.
    pub tasks_created: u64,
    /// Successful steals between workers.
    pub steals: u64,
    /// Heartbeat flags observed (serviced) at promotion points.
    pub heartbeats_serviced: u64,
    /// Heartbeats delivered by the source (ping signals sent or local
    /// timer expirations) — with `heartbeats_serviced`, the Figure 10
    /// quantities.
    pub heartbeats_delivered: u64,
}

impl SchedStats {
    /// Serviced heartbeats as a fraction of delivered ones (Fig. 10's
    /// service ratio; 1.0 when nothing was delivered).
    pub fn service_ratio(&self) -> f64 {
        if self.heartbeats_delivered == 0 {
            1.0
        } else {
            self.heartbeats_serviced as f64 / self.heartbeats_delivered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_reset_round_trip() {
        let c = SchedCounters::default();
        c.promotions.store(3, Ordering::Relaxed);
        c.steals.store(7, Ordering::Relaxed);
        let s = c.snapshot(9);
        assert_eq!(s.promotions, 3);
        assert_eq!(s.steals, 7);
        assert_eq!(s.heartbeats_delivered, 9);
        c.reset();
        assert_eq!(c.snapshot(0), SchedStats::default());
    }

    #[test]
    fn service_ratio_handles_zero_delivery() {
        let s = SchedStats::default();
        assert_eq!(s.service_ratio(), 1.0);
        let s = SchedStats {
            heartbeats_serviced: 3,
            heartbeats_delivered: 4,
            ..SchedStats::default()
        };
        assert!((s.service_ratio() - 0.75).abs() < 1e-12);
    }
}
