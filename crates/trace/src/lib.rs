//! Unified trace/profiling layer for the TPAL simulator and native
//! runtime.
//!
//! The paper's entire evaluation (§7, Figures 8–15) is read off
//! instrumentation: heartbeat delivery and service rates, task-creation
//! counts, per-core utilization, steady-versus-unsteady promotion. This
//! crate is the one event vocabulary both executors speak, so every
//! figure-analogue is computed from the same recorded stream instead of
//! ad-hoc counters scattered per crate.
//!
//! # Event model
//!
//! A [`Trace`] is a set of per-core (per-worker) [`Track`]s, each a flat
//! vector of [`TraceEvent`]s: *activity spans* (work / overhead / idle,
//! with a duration) and *instants* (task spawn, promotion, steal,
//! heartbeat delivery and service, join transitions, halt). Every event
//! carries a globally monotone sequence number assigned at record time,
//! so the cross-track causal order — which task spawned before which
//! steal observed it — survives even though timestamps tie.
//!
//! Recording is **zero-cost when off**: both executors guard every
//! record site behind one `Option`/`None` check and allocate nothing
//! unless tracing was requested in their configs.
//!
//! # Backends
//!
//! * [`chrome`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev), one
//!   track per core. [`chrome::validate`] re-parses a rendered file and
//!   checks the schema invariants (used by CI on a real traced run).
//! * [`report`] — a [`report::MetricsReport`] reproducing the
//!   paper-figure quantities: polling/overhead fraction (Fig. 8),
//!   delivered-versus-serviced heartbeat rates (Fig. 10), task counts
//!   (Fig. 15a), per-core and total utilization (Fig. 15b).
//! * [`profile`] — a TASKPROF-style fold of the recorded task DAG into
//!   total work, span, and available parallelism (Yoga & Nagarakatte,
//!   "A Fast Causal Profiler for Task Parallel Programs").
//!
//! [`counters`] holds the always-on atomic scheduler counters the native
//! runtime keeps even when event recording is off; they migrated here
//! from `tpal-rt` so snapshot/reset semantics live next to the event
//! layer that supersedes them.

#![warn(missing_docs)]

pub mod chrome;
pub mod counters;
pub mod event;
pub mod json;
pub mod profile;
pub mod report;

pub use counters::{CounterShard, SchedCounters, SchedStats, ShardedCounters};
pub use event::{
    EventKind, OverheadKind, SharedTracer, TaskId, Trace, TraceBuilder, TraceEvent, Track,
};
pub use profile::WorkSpanProfile;
pub use report::MetricsReport;
